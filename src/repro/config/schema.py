"""Integration-time system configuration (Sect. 2.1's "AIR and ARINC 653
configuration files with the assistance of development tools support").

A :class:`SystemConfig` is everything the PMK needs to instantiate a module:
the formal :class:`~repro.core.model.SystemModel` (partitions + PSTs), plus
per-partition runtime wiring (POS flavour, process bodies, initialization
hook, error handler), interpartition channels, Health Monitoring tables,
spatial memory sizing and the policy knobs exposed for the design-decision
ablations of DESIGN.md.

Configurations are validated by :meth:`SystemConfig.validate`, which runs
the full offline verification of :mod:`repro.core.validation` and adds
configuration-level cross-checks (bodies refer to real processes, channels
refer to real partitions...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..comm.messages import ChannelConfig
from ..core.model import Partition, SystemModel
from ..core.validation import Severity, ValidationReport, validate_system
from ..exceptions import ConfigurationError
from ..fdir.policy import FdirConfig
from ..hm.monitor import ApplicationHandler
from ..hm.tables import HmTables
from ..pos.tcb import BodyFactory
from ..types import RecoveryAction, Ticks

__all__ = ["PartitionRuntimeConfig", "SystemConfig",
           "DEFAULT_PARTITION_MEMORY"]

#: Default per-partition memory grant (bytes) for the auto spatial layout.
DEFAULT_PARTITION_MEMORY = 256 * 1024

#: An initialization hook: runs in place of the default init sequence.
#: Receives the partition's APEX interface; must leave the partition in
#: NORMAL mode (or deliberately not, for staged initialization tests).
InitHook = Callable[["object"], None]


@dataclass
class PartitionRuntimeConfig:
    """Runtime wiring of one partition.

    Attributes
    ----------
    pos_kind:
        ``"rtems"`` (priority-preemptive RTOS) or ``"generic"`` (round-robin
        non-real-time guest) — the POS heterogeneity of Sects. 2, 2.5.
    quantum:
        Round-robin quantum for ``generic`` POSs.
    bodies:
        Process-name → body factory.  Processes without a body cannot be
        started.
    auto_start:
        Processes the default initialization sequence STARTs; ``None``
        means every process with a registered body.
    init_hook:
        Custom initialization (create ports/resources, start processes,
        SET_PARTITION_MODE(NORMAL)); replaces the default sequence.
    error_handler:
        Application error handler installed at initialization
        (Sect. 5's recovery decision point).
    memory_size:
        Bytes granted by the automatic spatial layout.
    deadline_store_kind:
        Per-partition override of the module-wide deadline structure
        (``"list"``/``"tree"`` — the E6 ablation); None inherits.
    """

    pos_kind: str = "rtems"
    quantum: Ticks = 5
    bodies: Dict[str, BodyFactory] = field(default_factory=dict)
    auto_start: Optional[Tuple[str, ...]] = None
    init_hook: Optional[InitHook] = None
    error_handler: Optional[ApplicationHandler] = None
    memory_size: int = DEFAULT_PARTITION_MEMORY
    deadline_store_kind: Optional[str] = None

    def __post_init__(self) -> None:
        if self.pos_kind not in ("rtems", "generic"):
            raise ConfigurationError(
                f"unknown pos_kind {self.pos_kind!r}; "
                f"expected 'rtems' or 'generic'")
        if self.quantum <= 0:
            raise ConfigurationError(
                f"quantum must be positive, got {self.quantum}")
        if self.memory_size <= 0:
            raise ConfigurationError(
                f"memory_size must be positive, got {self.memory_size}")
        if self.deadline_store_kind not in (None, "list", "tree"):
            raise ConfigurationError(
                f"deadline_store_kind must be 'list', 'tree' or None, got "
                f"{self.deadline_store_kind!r}")


@dataclass
class SystemConfig:
    """Complete module configuration."""

    model: SystemModel
    runtime: Dict[str, PartitionRuntimeConfig] = field(default_factory=dict)
    channels: Tuple[ChannelConfig, ...] = ()
    hm_tables: HmTables = field(default_factory=HmTables)
    deadline_store_kind: str = "list"
    change_action_policy: str = "first_dispatch"
    trace_capacity: Optional[int] = None
    seed: int = 0
    #: When True, every executed process tick performs one checked read in
    #: the partition's DATA region and one checked write in its STACK
    #: region through the simulated MMU — exercising the Fig. 3 protection
    #: path on the hot loop, not just on faults.  Off by default (2-3x
    #: simulation cost).
    memory_emulation: bool = False
    #: FDIR supervision policy (escalation chains, restart-storm parking,
    #: recovery probation, partition watchdogs); None disables the
    #: supervision layer entirely (the HM tables act alone).
    fdir: Optional[FdirConfig] = None

    def __post_init__(self) -> None:
        if self.deadline_store_kind not in ("list", "tree"):
            raise ConfigurationError(
                f"deadline_store_kind must be 'list' or 'tree', got "
                f"{self.deadline_store_kind!r}")
        if self.change_action_policy not in ("first_dispatch", "mtf_start"):
            raise ConfigurationError(
                f"change_action_policy must be 'first_dispatch' or "
                f"'mtf_start', got {self.change_action_policy!r}")
        for name in self.runtime:
            self.model.partition(name)  # raises for unknown partitions

    def runtime_for(self, partition: str) -> PartitionRuntimeConfig:
        """Runtime config of *partition*, defaulting to a bare RTEMS POS."""
        if partition not in self.runtime:
            self.runtime[partition] = PartitionRuntimeConfig()
        return self.runtime[partition]

    def store_kind_for(self, partition: str) -> str:
        """Effective deadline structure for *partition*."""
        override = self.runtime_for(partition).deadline_store_kind
        return override if override is not None else self.deadline_store_kind

    def validate(self) -> ValidationReport:
        """Model verification (eqs. (20)-(23)) plus configuration checks."""
        report = validate_system(self.model)
        known = set(self.model.partition_names)
        for name, runtime in self.runtime.items():
            partition = self.model.partition(name)
            process_names = set(partition.process_names)
            for process in runtime.bodies:
                if process not in process_names:
                    report.add(Severity.ERROR, "BODY_FOR_UNKNOWN_PROCESS",
                               f"body registered for unknown process "
                               f"{process!r}", partition=name)
            for process in runtime.auto_start or ():
                if process not in process_names:
                    report.add(Severity.ERROR, "AUTOSTART_UNKNOWN_PROCESS",
                               f"auto_start names unknown process "
                               f"{process!r}", partition=name)
                elif process not in runtime.bodies:
                    report.add(Severity.ERROR, "AUTOSTART_WITHOUT_BODY",
                               f"auto_start process {process!r} has no "
                               f"registered body", partition=name)
        for channel in self.channels:
            endpoints = (channel.source, *channel.destinations)
            for endpoint in endpoints:
                if endpoint.partition not in known:
                    report.add(Severity.ERROR, "CHANNEL_UNKNOWN_PARTITION",
                               f"channel {channel.name!r} references unknown "
                               f"partition {endpoint.partition!r}")
        if self.fdir is not None:
            schedules = {s.schedule_id for s in self.model.schedules}
            for index, rule in enumerate(self.fdir.rules):
                if rule.partition is not None and rule.partition not in known:
                    report.add(Severity.ERROR, "FDIR_UNKNOWN_PARTITION",
                               f"escalation rule {index} targets unknown "
                               f"partition {rule.partition!r}")
                for step in rule.chain:
                    if (step.action is RecoveryAction.SWITCH_SCHEDULE
                            and step.schedule not in schedules):
                        report.add(Severity.ERROR, "FDIR_UNKNOWN_SCHEDULE",
                                   f"escalation rule {index} switches to "
                                   f"unknown schedule {step.schedule!r}")
            for partition in self.fdir.watchdogs:
                if partition not in known:
                    report.add(Severity.ERROR, "FDIR_UNKNOWN_PARTITION",
                               f"watchdog configured for unknown partition "
                               f"{partition!r}")
        return report
