"""Configuration (de)serialization: the ARINC 653 XML analogue.

Real AIR/ARINC 653 integration exchanges configuration files between the
integrator's tools and the target build (Sect. 2.1's "AIR and ARINC 653
configuration files with the assistance of development tools support").
This module provides that interchange for the reproduction, using plain
dicts/JSON instead of XML: everything *declarative* round-trips — the
formal model (partitions, processes, schedules, change actions), channels,
HM tables and policy knobs.  Process *bodies* and hooks are code, not
configuration; they are re-attached after loading via
:meth:`~repro.config.schema.SystemConfig.runtime_for`.

`dump_*` functions emit JSON-compatible dicts; `load_*` rebuild validated
model objects (construction re-runs the eager well-formedness checks).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from ..comm.messages import ChannelConfig, PortSpec, TransferMode
from ..core.model import (
    Partition,
    PartitionRequirement,
    ProcessModel,
    ScheduleTable,
    SystemModel,
    TimeWindow,
)
from ..exceptions import ConfigurationError
from ..fdir.policy import fdir_config_from_dict, fdir_config_to_dict
from ..hm.tables import HmTables
from ..types import (
    ErrorCode,
    ErrorLevel,
    PartitionMode,
    RecoveryAction,
    ScheduleChangeAction,
)
from .schema import PartitionRuntimeConfig, SystemConfig

__all__ = [
    "dump_model", "load_model",
    "dump_config", "load_config",
    "save_config", "read_config",
]


# ------------------------------------------------------------------ #
# model <-> dict
# ------------------------------------------------------------------ #


def _dump_process(process: ProcessModel) -> Dict[str, Any]:
    return {"name": process.name, "period": process.period,
            "deadline": process.deadline, "priority": process.priority,
            "wcet": process.wcet, "periodic": process.periodic}


def _load_process(data: Mapping[str, Any]) -> ProcessModel:
    return ProcessModel(name=data["name"],
                        period=data.get("period", -1),
                        deadline=data.get("deadline", -1),
                        priority=data.get("priority", 0),
                        wcet=data.get("wcet", -1),
                        periodic=data.get("periodic", True))


def _dump_partition(partition: Partition) -> Dict[str, Any]:
    return {"name": partition.name,
            "processes": [_dump_process(p) for p in partition.processes],
            "system_partition": partition.system_partition,
            "initial_mode": partition.initial_mode.value,
            "criticality": partition.criticality}


def _load_partition(data: Mapping[str, Any]) -> Partition:
    return Partition(
        name=data["name"],
        processes=tuple(_load_process(p) for p in data.get("processes", [])),
        system_partition=data.get("system_partition", False),
        initial_mode=PartitionMode(data.get("initial_mode", "coldStart")),
        criticality=data.get("criticality", "C"))


def _dump_schedule(schedule: ScheduleTable) -> Dict[str, Any]:
    return {
        "schedule_id": schedule.schedule_id,
        "major_time_frame": schedule.major_time_frame,
        "requirements": [
            {"partition": r.partition, "cycle": r.cycle,
             "duration": r.duration} for r in schedule.requirements],
        "windows": [
            {"partition": w.partition, "offset": w.offset,
             "duration": w.duration} for w in schedule.windows],
        "change_actions": {partition: action.value
                           for partition, action
                           in schedule.change_actions.items()},
    }


def _load_schedule(data: Mapping[str, Any]) -> ScheduleTable:
    return ScheduleTable(
        schedule_id=data["schedule_id"],
        major_time_frame=data["major_time_frame"],
        requirements=tuple(
            PartitionRequirement(r["partition"], r["cycle"], r["duration"])
            for r in data["requirements"]),
        windows=tuple(
            TimeWindow(w["partition"], w["offset"], w["duration"])
            for w in data["windows"]),
        change_actions={partition: ScheduleChangeAction(value)
                        for partition, value
                        in data.get("change_actions", {}).items()})


def dump_model(model: SystemModel) -> Dict[str, Any]:
    """Serialize a :class:`SystemModel` to a JSON-compatible dict."""
    return {"partitions": [_dump_partition(p) for p in model.partitions],
            "schedules": [_dump_schedule(s) for s in model.schedules],
            "initial_schedule": model.initial_schedule}


def load_model(data: Mapping[str, Any]) -> SystemModel:
    """Rebuild a :class:`SystemModel` from :func:`dump_model` output."""
    try:
        return SystemModel(
            partitions=tuple(_load_partition(p) for p in data["partitions"]),
            schedules=tuple(_load_schedule(s) for s in data["schedules"]),
            initial_schedule=data["initial_schedule"])
    except KeyError as missing:
        raise ConfigurationError(
            f"model document missing required key {missing}") from None


# ------------------------------------------------------------------ #
# channels and HM tables
# ------------------------------------------------------------------ #


def _dump_channel(channel: ChannelConfig) -> Dict[str, Any]:
    return {"name": channel.name, "mode": channel.mode.value,
            "source": {"partition": channel.source.partition,
                       "port": channel.source.port},
            "destinations": [{"partition": d.partition, "port": d.port}
                             for d in channel.destinations],
            "max_message_size": channel.max_message_size,
            "max_nb_messages": channel.max_nb_messages,
            "refresh_period": channel.refresh_period,
            "latency": channel.latency}


def _load_channel(data: Mapping[str, Any]) -> ChannelConfig:
    return ChannelConfig(
        name=data["name"], mode=TransferMode(data["mode"]),
        source=PortSpec(data["source"]["partition"], data["source"]["port"]),
        destinations=tuple(PortSpec(d["partition"], d["port"])
                           for d in data["destinations"]),
        max_message_size=data.get("max_message_size", 256),
        max_nb_messages=data.get("max_nb_messages", 16),
        refresh_period=data.get("refresh_period", 0),
        latency=data.get("latency", 0))


def _dump_hm_tables(tables: HmTables) -> Dict[str, Any]:
    return {
        "levels": {code.value: level.value
                   for code, level in tables.levels.items()},
        "partition_actions": {
            partition: {code.value: action.value
                        for code, action in overrides.items()}
            for partition, overrides in tables.partition_actions.items()},
        "module_actions": {code.value: action.value
                           for code, action in tables.module_actions.items()},
        "log_threshold": tables.log_threshold,
        "log_fallback_action": tables.log_fallback_action.value,
    }


def _load_hm_tables(data: Mapping[str, Any]) -> HmTables:
    return HmTables(
        levels={ErrorCode(code): ErrorLevel(level)
                for code, level in data.get("levels", {}).items()},
        partition_actions={
            partition: {ErrorCode(code): RecoveryAction(action)
                        for code, action in overrides.items()}
            for partition, overrides
            in data.get("partition_actions", {}).items()},
        module_actions={ErrorCode(code): RecoveryAction(action)
                        for code, action
                        in data.get("module_actions", {}).items()},
        log_threshold=data.get("log_threshold", 3),
        log_fallback_action=RecoveryAction(
            data.get("log_fallback_action", "stopProcess")))


# ------------------------------------------------------------------ #
# whole configuration
# ------------------------------------------------------------------ #


def dump_config(config: SystemConfig) -> Dict[str, Any]:
    """Serialize the declarative part of a :class:`SystemConfig`.

    Runtime wiring that *is* data (POS kind, quantum, memory size,
    deadline-store override, auto_start) round-trips; bodies, init hooks
    and error handlers do not (they are code) and must be re-attached
    after :func:`load_config`.
    """
    return {
        "model": dump_model(config.model),
        "runtime": {
            name: {"pos_kind": runtime.pos_kind,
                   "quantum": runtime.quantum,
                   "memory_size": runtime.memory_size,
                   "deadline_store_kind": runtime.deadline_store_kind,
                   "auto_start": (list(runtime.auto_start)
                                  if runtime.auto_start is not None
                                  else None)}
            for name, runtime in config.runtime.items()},
        "channels": [_dump_channel(c) for c in config.channels],
        "hm_tables": _dump_hm_tables(config.hm_tables),
        "deadline_store_kind": config.deadline_store_kind,
        "change_action_policy": config.change_action_policy,
        "trace_capacity": config.trace_capacity,
        "seed": config.seed,
        "memory_emulation": config.memory_emulation,
        "fdir": (fdir_config_to_dict(config.fdir)
                 if config.fdir is not None else None),
    }


def load_config(data: Mapping[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`dump_config` output."""
    runtime = {}
    for name, entry in data.get("runtime", {}).items():
        auto_start = entry.get("auto_start")
        runtime[name] = PartitionRuntimeConfig(
            pos_kind=entry.get("pos_kind", "rtems"),
            quantum=entry.get("quantum", 5),
            memory_size=entry.get("memory_size", 256 * 1024),
            deadline_store_kind=entry.get("deadline_store_kind"),
            auto_start=tuple(auto_start) if auto_start is not None else None)
    return SystemConfig(
        model=load_model(data["model"]),
        runtime=runtime,
        channels=tuple(_load_channel(c) for c in data.get("channels", [])),
        hm_tables=_load_hm_tables(data.get("hm_tables", {})),
        deadline_store_kind=data.get("deadline_store_kind", "list"),
        change_action_policy=data.get("change_action_policy",
                                      "first_dispatch"),
        trace_capacity=data.get("trace_capacity"),
        seed=data.get("seed", 0),
        memory_emulation=data.get("memory_emulation", False),
        fdir=(fdir_config_from_dict(data["fdir"])
              if data.get("fdir") is not None else None))


def save_config(config: SystemConfig, path: str) -> None:
    """Write the configuration document as JSON to *path*."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(dump_config(config), stream, indent=2, sort_keys=True)


def read_config(path: str) -> SystemConfig:
    """Read a JSON configuration document from *path*."""
    with open(path, encoding="utf-8") as stream:
        return load_config(json.load(stream))
