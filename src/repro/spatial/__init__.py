"""Spatial partitioning: descriptors, simulated 3-level MMU, memory bus
(Sect. 2.1, Fig. 3)."""

from .descriptors import (
    MemoryDescriptor,
    MemorySection,
    ModuleMemoryLayout,
    PartitionMemoryMap,
)
from .mmu import Mmu, MmuContext, PAGE_SIZE, PageTable, PageTableEntry
from .memory import MemoryBus, PhysicalMemory

__all__ = [
    "MemoryDescriptor", "MemorySection", "ModuleMemoryLayout",
    "PartitionMemoryMap", "Mmu", "MmuContext", "PAGE_SIZE", "PageTable",
    "PageTableEntry", "MemoryBus", "PhysicalMemory",
]
