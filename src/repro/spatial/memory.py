"""Simulated physical memory accessed through the MMU.

:class:`MemoryBus` is the only way simulated code touches memory: every
read/write names the access kind and privilege level and is checked by the
:class:`~repro.spatial.mmu.Mmu` *before* any byte moves — a denied access
leaves memory untouched (zero silent corruption, the containment property
experiment E8 asserts).

It also provides :meth:`pmk_copy`, the PMK-mediated memory-to-memory copy
used for local interpartition communication (Sect. 2.1): the copy checks
*read* rights in the source partition's context and *write* rights in the
destination's, at PMK privilege, "not violating spatial separation
requirements".
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import ConfigurationError
from ..types import AccessKind, PrivilegeLevel
from .mmu import Mmu

__all__ = ["PhysicalMemory", "MemoryBus"]


class PhysicalMemory:
    """Flat byte-addressable memory of a configurable size."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigurationError(f"memory size must be positive, got {size}")
        self.size = size
        self._bytes = bytearray(size)

    def raw_read(self, address: int, length: int) -> bytes:
        """Unchecked read (PMK internals and tests only)."""
        self._bounds(address, length)
        return bytes(self._bytes[address:address + length])

    def raw_write(self, address: int, data: bytes) -> None:
        """Unchecked write (PMK internals and tests only)."""
        self._bounds(address, len(data))
        self._bytes[address:address + len(data)] = data

    def _bounds(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.size:
            raise ConfigurationError(
                f"physical access [{address:#x},{address + length:#x}) "
                f"outside memory of size {self.size:#x}")


class MemoryBus:
    """MMU-checked access path to physical memory."""

    def __init__(self, memory: PhysicalMemory, mmu: Mmu) -> None:
        self.memory = memory
        self.mmu = mmu

    def read(self, address: int, length: int = 1, *,
             level: PrivilegeLevel = PrivilegeLevel.APPLICATION,
             partition: Optional[str] = None) -> bytes:
        """Checked read in the active (or named) partition context."""
        self.mmu.check(address, AccessKind.READ, level,
                       partition=partition, length=length)
        return self.memory.raw_read(address, length)

    def write(self, address: int, data: bytes, *,
              level: PrivilegeLevel = PrivilegeLevel.APPLICATION,
              partition: Optional[str] = None) -> None:
        """Checked write in the active (or named) partition context."""
        self.mmu.check(address, AccessKind.WRITE, level,
                       partition=partition, length=len(data))
        self.memory.raw_write(address, data)

    def execute(self, address: int, *,
                level: PrivilegeLevel = PrivilegeLevel.APPLICATION,
                partition: Optional[str] = None) -> None:
        """Checked instruction fetch (no data transfer in the simulation)."""
        self.mmu.check(address, AccessKind.EXECUTE, level,
                       partition=partition, length=1)

    def pmk_copy(self, *, source_partition: str, source_address: int,
                 destination_partition: str, destination_address: int,
                 length: int) -> None:
        """Interpartition memory-to-memory copy mediated by the PMK.

        Source bytes must be readable in the source partition's context and
        the destination range writable in the destination's, both at PMK
        privilege; only then does the copy proceed (Sect. 2.1).
        """
        self.mmu.check(source_address, AccessKind.READ, PrivilegeLevel.PMK,
                       partition=source_partition, length=length)
        self.mmu.check(destination_address, AccessKind.WRITE,
                       PrivilegeLevel.PMK,
                       partition=destination_partition, length=length)
        data = self.memory.raw_read(source_address, length)
        self.memory.raw_write(destination_address, data)
