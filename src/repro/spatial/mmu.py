"""Simulated three-level page-based MMU (Sect. 2.1, Fig. 3).

"The high-level abstract spatial partitioning description needs to be mapped
in runtime to the specific processor memory protection mechanisms, exploiting
the availability of a hardware Memory Management Unit (MMU) ... An example of
such mapping is the Gaisler SPARC V8 LEON3 three-level page-based MMU core."

This module performs exactly that mapping, in software: each partition's
:class:`~repro.spatial.descriptors.PartitionMemoryMap` is compiled into a
three-level page table (SPARC V8 reference MMU geometry: 256/64/64 entries
per level over 4 KiB pages, 32-bit virtual addresses), and every access
walks the table of the *current* context.  Addresses are identity-mapped —
protection, not relocation, is what TSP needs — so a translation fault is
precisely a spatial partitioning violation, delivered to the registered
fault handler (the PMK routes it to Health Monitoring) and raised as
:class:`~repro.exceptions.SpatialViolationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..exceptions import ConfigurationError, SpatialViolationError
from ..types import AccessKind, PrivilegeLevel
from .descriptors import MemoryDescriptor, PartitionMemoryMap

__all__ = ["PAGE_SIZE", "PageTableEntry", "PageTable", "MmuContext", "Mmu"]

#: SPARC V8 reference MMU page size.
PAGE_SIZE = 4096

#: Entries per table at each level (SPARC V8 reference MMU: 256/64/64).
_LEVEL_FANOUT = (256, 64, 64)

#: Bits of the virtual address consumed by each level (8 + 6 + 6 + 12 = 32).
_LEVEL_BITS = (8, 6, 6)


def _level_indices(address: int) -> Tuple[int, int, int]:
    """Split a 32-bit virtual address into the three level indices."""
    page = address // PAGE_SIZE
    index3 = page % _LEVEL_FANOUT[2]
    page //= _LEVEL_FANOUT[2]
    index2 = page % _LEVEL_FANOUT[1]
    page //= _LEVEL_FANOUT[1]
    index1 = page % _LEVEL_FANOUT[0]
    return index1, index2, index3


@dataclass
class PageTableEntry:
    """Leaf PTE: permissions and privilege for one 4 KiB page."""

    permissions: FrozenSet[AccessKind]
    level: PrivilegeLevel

    def allows(self, access: AccessKind, level: PrivilegeLevel) -> bool:
        """Permission and privilege check for one access."""
        return access in self.permissions and level <= self.level


class PageTable:
    """Sparse three-level page table for one partition context."""

    def __init__(self) -> None:
        # level-1 table: index1 -> {index2 -> {index3 -> PageTableEntry}}
        self._root: Dict[int, Dict[int, Dict[int, PageTableEntry]]] = {}
        self.mapped_pages = 0

    def map_page(self, address: int, entry: PageTableEntry) -> None:
        """Install *entry* for the page containing *address*."""
        index1, index2, index3 = _level_indices(address)
        level2 = self._root.setdefault(index1, {})
        level3 = level2.setdefault(index2, {})
        if index3 not in level3:
            self.mapped_pages += 1
        level3[index3] = entry

    def lookup(self, address: int) -> Optional[PageTableEntry]:
        """Walk the three levels; None on any missing table (page fault)."""
        index1, index2, index3 = _level_indices(address)
        level2 = self._root.get(index1)
        if level2 is None:
            return None
        level3 = level2.get(index2)
        if level3 is None:
            return None
        return level3.get(index3)

    def walk_depth(self, address: int) -> int:
        """How many levels a walk of *address* traverses (instrumentation)."""
        index1, index2, index3 = _level_indices(address)
        level2 = self._root.get(index1)
        if level2 is None:
            return 1
        level3 = level2.get(index2)
        if level3 is None:
            return 2
        return 3


class MmuContext:
    """One partition's compiled address space."""

    def __init__(self, memory_map: PartitionMemoryMap) -> None:
        self.partition = memory_map.partition
        self.table = PageTable()
        self._descriptors = memory_map.descriptors
        for descriptor in memory_map.descriptors:
            self._compile(descriptor)

    def _compile(self, descriptor: MemoryDescriptor) -> None:
        """Fill PTEs for every page the descriptor touches.

        Descriptors need not be page-aligned; protection granularity is
        the page, so a partial page inherits the descriptor's rights —
        integration tooling should align regions, and the layout-level
        disjointness check runs on byte ranges, so no *other* partition's
        data can share the partial page.
        """
        first_page = descriptor.base // PAGE_SIZE
        last_page = (descriptor.end - 1) // PAGE_SIZE
        entry = PageTableEntry(permissions=descriptor.permissions,
                               level=descriptor.level)
        for page in range(first_page, last_page + 1):
            self.table.map_page(page * PAGE_SIZE, entry)

    def descriptor_for(self, address: int) -> Optional[MemoryDescriptor]:
        """The source descriptor covering *address* (diagnostics)."""
        for descriptor in self._descriptors:
            if descriptor.covers(address):
                return descriptor
        return None


#: Fault hook: (partition, address, access kind, detail).
FaultHandler = Callable[[str, int, AccessKind, str], None]


class Mmu:
    """The module's MMU: per-partition contexts plus the active context.

    The PMK dispatcher switches the active context on every partition
    context switch; all accesses are checked against the active context
    (or an explicitly named one, for PMK-mediated copies).
    """

    def __init__(self, *, fault_handler: Optional[FaultHandler] = None) -> None:
        self._contexts: Dict[str, MmuContext] = {}
        self._active: Optional[str] = None
        self._fault_handler = fault_handler
        self.access_count = 0
        self.fault_count = 0

    def add_context(self, memory_map: PartitionMemoryMap) -> MmuContext:
        """Compile and register *memory_map*'s context."""
        if memory_map.partition in self._contexts:
            raise ConfigurationError(
                f"MMU context for {memory_map.partition!r} already exists")
        context = MmuContext(memory_map)
        self._contexts[memory_map.partition] = context
        return context

    def set_fault_handler(self, handler: FaultHandler) -> None:
        """Install the fault hook (the PMK routes faults to HM)."""
        self._fault_handler = handler

    def switch_context(self, partition: Optional[str]) -> None:
        """Make *partition*'s address space active (None = no partition)."""
        if partition is not None and partition not in self._contexts:
            raise ConfigurationError(
                f"no MMU context for partition {partition!r}")
        self._active = partition

    @property
    def active_context(self) -> Optional[str]:
        """Partition whose address space is active."""
        return self._active

    def context_of(self, partition: str) -> MmuContext:
        """The compiled context of *partition*."""
        try:
            return self._contexts[partition]
        except KeyError:
            raise ConfigurationError(
                f"no MMU context for partition {partition!r}") from None

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture the active context and counters as pure data.

        Page tables are structural — compiled from the configuration's
        memory maps at construction — and are not captured.
        """
        return {"active": self._active,
                "access_count": self.access_count,
                "fault_count": self.fault_count}

    def restore(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture onto this MMU."""
        self._active = state["active"]
        self.access_count = state["access_count"]
        self.fault_count = state["fault_count"]

    # -------------------------------------------------------------- #
    # access checking
    # -------------------------------------------------------------- #

    def check(self, address: int, access: AccessKind,
              level: PrivilegeLevel = PrivilegeLevel.APPLICATION, *,
              partition: Optional[str] = None, length: int = 1) -> None:
        """Verify an access of *length* bytes at *address*; fault if denied.

        Checks the active context unless *partition* names another one
        (PMK-mediated operations).  Raises
        :class:`~repro.exceptions.SpatialViolationError` after notifying
        the fault handler — mirroring a hardware trap that the PMK fields
        before anything is read or written.
        """
        owner = partition if partition is not None else self._active
        self.access_count += 1
        if owner is None:
            self._fault("<none>", address, access,
                        "memory access with no active partition context")
            return
        context = self._contexts.get(owner)
        if context is None:
            self._fault(owner, address, access,
                        f"partition {owner!r} has no MMU context")
            return
        last = address + max(length, 1) - 1
        for probe in {address, last} | set(
                range((address // PAGE_SIZE + 1) * PAGE_SIZE, last + 1,
                      PAGE_SIZE)):
            entry = context.table.lookup(probe)
            if entry is None:
                self._fault(owner, probe, access,
                            "page not mapped in the partition's context")
                return
            if not entry.allows(access, level):
                self._fault(owner, probe, access,
                            f"{access.value} denied at privilege "
                            f"{level.name} (page allows "
                            f"{sorted(k.value for k in entry.permissions)} "
                            f"at level <= {entry.level.name})")
                return

    def _fault(self, partition: str, address: int, access: AccessKind,
               detail: str) -> None:
        self.fault_count += 1
        if self._fault_handler is not None:
            self._fault_handler(partition, address, access, detail)
        raise SpatialViolationError(
            f"spatial partitioning violation by {partition!r}: "
            f"{access.value} at {address:#x} — {detail}",
            partition=partition, address=address, access=access.value)
