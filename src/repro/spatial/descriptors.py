"""Spatial partitioning descriptors (Sect. 2.1, Fig. 3).

Spatial partitioning requirements are "described in runtime through a
high-level processor-independent abstraction layer": a set of descriptors
per partition, "primarily corresponding to the several levels of execution
(e.g. application, operating system and AIR PMK) and to its different
memory sections (e.g. code, data and stack)".

:class:`MemoryDescriptor` is that abstraction; :class:`PartitionMemoryMap`
groups a partition's descriptors; :class:`ModuleMemoryLayout` assembles all
partitions' maps and verifies the cross-partition disjointness that spatial
partitioning requires (explicitly shared regions — e.g. interpartition
message areas owned by the PMK — are opt-in).

The processor-specific mapping of these descriptors onto a hardware MMU
(Fig. 3's lowest layer; e.g. the LEON3 SPARC V8 three-level page-based MMU)
is done by :mod:`repro.spatial.mmu`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..exceptions import ConfigurationError
from ..types import AccessKind, PrivilegeLevel

__all__ = ["MemorySection", "MemoryDescriptor", "PartitionMemoryMap",
           "ModuleMemoryLayout"]


class MemorySection(enum.Enum):
    """Memory section kinds a descriptor may cover (Fig. 3)."""

    CODE = "code"
    DATA = "data"
    STACK = "stack"
    IO = "io"
    SHARED = "shared"


#: Conventional permissions per section kind.
_DEFAULT_PERMISSIONS: Dict[MemorySection, FrozenSet[AccessKind]] = {
    MemorySection.CODE: frozenset({AccessKind.READ, AccessKind.EXECUTE}),
    MemorySection.DATA: frozenset({AccessKind.READ, AccessKind.WRITE}),
    MemorySection.STACK: frozenset({AccessKind.READ, AccessKind.WRITE}),
    MemorySection.IO: frozenset({AccessKind.READ, AccessKind.WRITE}),
    MemorySection.SHARED: frozenset({AccessKind.READ}),
}


@dataclass(frozen=True)
class MemoryDescriptor:
    """One contiguous region a partition may touch.

    Attributes
    ----------
    partition:
        Owning partition.
    level:
        Most permissive execution level allowed to use the descriptor
        (Fig. 3's levels: application / operating system / AIR PMK).
        An access at a *less* privileged level than required is refused —
        e.g. application code cannot touch a POS-level region.
    section:
        Section kind; selects default permissions.
    base / size:
        Region bounds (bytes).
    permissions:
        Allowed access kinds; defaults by section kind.
    shared:
        True for regions deliberately visible to several partitions
        (interpartition communication areas).  Only shared regions may
        overlap another partition's descriptors.
    """

    partition: str
    level: PrivilegeLevel
    section: MemorySection
    base: int
    size: int
    permissions: FrozenSet[AccessKind] = frozenset()
    shared: bool = False

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ConfigurationError(
                f"descriptor {self.partition}/{self.section.value}: invalid "
                f"bounds base={self.base}, size={self.size}")
        if not self.permissions:
            object.__setattr__(self, "permissions",
                               _DEFAULT_PERMISSIONS[self.section])

    @property
    def end(self) -> int:
        """First byte after the region."""
        return self.base + self.size

    def covers(self, address: int) -> bool:
        """True if *address* lies inside the region."""
        return self.base <= address < self.end

    def covers_range(self, address: int, length: int) -> bool:
        """True if ``[address, address+length)`` lies wholly inside."""
        return self.base <= address and address + length <= self.end

    def overlaps(self, other: "MemoryDescriptor") -> bool:
        """True if the two regions intersect."""
        return self.base < other.end and other.base < self.end

    def allows(self, access: AccessKind, level: PrivilegeLevel) -> bool:
        """Permission check: right kind *and* sufficient privilege.

        ``level`` is the privilege of the executing code; it must be at
        least as privileged (numerically <=) as the descriptor's level.
        """
        return access in self.permissions and level <= self.level


class PartitionMemoryMap:
    """All descriptors of one partition."""

    def __init__(self, partition: str,
                 descriptors: Iterable[MemoryDescriptor] = ()) -> None:
        self.partition = partition
        self._descriptors: List[MemoryDescriptor] = []
        for descriptor in descriptors:
            self.add(descriptor)

    def add(self, descriptor: MemoryDescriptor) -> None:
        """Add *descriptor*, verifying ownership and intra-map disjointness."""
        if descriptor.partition != self.partition:
            raise ConfigurationError(
                f"descriptor for {descriptor.partition!r} added to the map of "
                f"{self.partition!r}")
        for existing in self._descriptors:
            if descriptor.overlaps(existing):
                raise ConfigurationError(
                    f"partition {self.partition!r}: descriptor "
                    f"[{descriptor.base:#x},{descriptor.end:#x}) overlaps "
                    f"[{existing.base:#x},{existing.end:#x})")
        self._descriptors.append(descriptor)

    @property
    def descriptors(self) -> Tuple[MemoryDescriptor, ...]:
        """All descriptors, in insertion order."""
        return tuple(self._descriptors)

    def find(self, address: int) -> Optional[MemoryDescriptor]:
        """The descriptor covering *address*, if any."""
        for descriptor in self._descriptors:
            if descriptor.covers(address):
                return descriptor
        return None

    def section(self, section: MemorySection) -> Tuple[MemoryDescriptor, ...]:
        """Descriptors of the given section kind."""
        return tuple(d for d in self._descriptors if d.section is section)

    def total_size(self) -> int:
        """Total bytes granted to the partition."""
        return sum(d.size for d in self._descriptors)


class ModuleMemoryLayout:
    """Every partition's memory map, with cross-partition disjointness.

    Non-shared regions of different partitions must not overlap — that *is*
    spatial partitioning ("applications running in one partition cannot
    access addressing spaces outside those belonging to that partition",
    Sect. 2.1).  Violations are integration-time errors, caught here rather
    than at run time.
    """

    def __init__(self) -> None:
        self._maps: Dict[str, PartitionMemoryMap] = {}

    def add_partition(self, memory_map: PartitionMemoryMap) -> None:
        """Register *memory_map*, verifying disjointness with all others."""
        if memory_map.partition in self._maps:
            raise ConfigurationError(
                f"memory map for {memory_map.partition!r} already registered")
        for other in self._maps.values():
            for mine in memory_map.descriptors:
                for theirs in other.descriptors:
                    if mine.overlaps(theirs) and not (mine.shared
                                                      and theirs.shared):
                        raise ConfigurationError(
                            f"spatial violation at integration: "
                            f"{memory_map.partition!r} "
                            f"[{mine.base:#x},{mine.end:#x}) overlaps "
                            f"{other.partition!r} "
                            f"[{theirs.base:#x},{theirs.end:#x}) and they "
                            f"are not both shared")
        self._maps[memory_map.partition] = memory_map

    def map_of(self, partition: str) -> PartitionMemoryMap:
        """The memory map of *partition*."""
        try:
            return self._maps[partition]
        except KeyError:
            raise ConfigurationError(
                f"no memory map registered for partition {partition!r}"
            ) from None

    @property
    def partitions(self) -> Tuple[str, ...]:
        """Partitions with registered maps."""
        return tuple(self._maps)
