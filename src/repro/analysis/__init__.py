"""Schedulability analysis, supply functions, baselines and PST synthesis
(Sects. 1, 3, 7)."""

from .supply import (
    SupplyCurve,
    linear_supply_bound,
    supplied_in,
    supply_bound_function,
)
from .schedulability import (
    PartitionAnalysis,
    ProcessVerdict,
    analyze_partition,
    analyze_system,
    higher_priority_demand,
    response_time,
)
from .baselines import (
    GlobalVerdict,
    analyze_partition_reservation,
    analyze_partition_single_window,
    analyze_single_level,
    periodic_resource_supply,
    single_window_applicable,
    single_window_supply,
)
from .generator import corrupt_schedule, generate_pst, random_requirements
from .multicore import (
    MulticoreSchedule,
    generate_multicore_pst,
    validate_multicore,
)
from .report import ModuleReport, ScheduleReport, SupplySummary, build_report
from .timeline import occupancy_from_trace, render_schedule, render_timeline

__all__ = [
    "SupplyCurve", "linear_supply_bound", "supplied_in",
    "supply_bound_function", "PartitionAnalysis", "ProcessVerdict",
    "analyze_partition", "analyze_system", "higher_priority_demand",
    "response_time", "GlobalVerdict", "analyze_partition_reservation",
    "analyze_partition_single_window", "analyze_single_level",
    "periodic_resource_supply", "single_window_applicable",
    "single_window_supply", "corrupt_schedule", "generate_pst",
    "random_requirements", "MulticoreSchedule", "generate_multicore_pst",
    "validate_multicore", "ModuleReport", "ScheduleReport",
    "SupplySummary", "build_report", "occupancy_from_trace",
    "render_schedule", "render_timeline",
]
