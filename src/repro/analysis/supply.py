"""Partition supply functions derived from partition scheduling tables.

The paper's system model "lays the ground for schedulability analysis"
(Sect. 1); this module provides the quantitative bridge: how much CPU a
partition's time windows supply over any interval.  The *supply bound
function* ``sbf(delta)`` — the minimum supply over every placement of an
interval of length ``delta`` against the cyclic schedule — is the standard
compositional-analysis abstraction (cf. [12] Easwaran et al., [20] Mok &
Feng) and feeds the process-level response-time analysis of
:mod:`repro.analysis.schedulability`.

Unlike the single-window abstractions the paper criticizes (Sect. 7), these
functions are computed from the *actual* window layout, fragmented or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.model import ScheduleTable, TimeWindow
from ..types import Ticks

__all__ = ["supplied_in", "supply_bound_function", "SupplyCurve",
           "linear_supply_bound"]


def _windows_of(schedule: ScheduleTable, partition: str
                ) -> Tuple[TimeWindow, ...]:
    windows = schedule.windows_for(partition)
    if not windows:
        raise ValueError(
            f"partition {partition!r} has no windows in schedule "
            f"{schedule.schedule_id!r}")
    return windows


def supplied_in(schedule: ScheduleTable, partition: str, start: Ticks,
                length: Ticks) -> Ticks:
    """CPU ticks supplied to *partition* in absolute ``[start, start+length)``.

    The schedule is taken as phase-aligned at tick 0 and repeating every
    MTF (exactly the run-time behaviour of Algorithm 1 between switches).
    """
    if length <= 0:
        return 0
    mtf = schedule.major_time_frame
    windows = _windows_of(schedule, partition)
    end = start + length
    first_frame = start // mtf
    last_frame = (end - 1) // mtf
    supplied = 0
    for frame in range(first_frame, last_frame + 1):
        base = frame * mtf
        for window in windows:
            w_start = base + window.offset
            w_end = base + window.end
            overlap = min(end, w_end) - max(start, w_start)
            if overlap > 0:
                supplied += overlap
    return supplied


def supply_bound_function(schedule: ScheduleTable, partition: str,
                          delta: Ticks) -> Ticks:
    """``sbf(delta)``: minimum supply over all placements of the interval.

    For a cyclic schedule, the worst placement starts at a window *end*
    (maximizing the leading starvation), so the minimum over those finitely
    many phases — one per window, within one MTF — is exact.
    """
    if delta <= 0:
        return 0
    windows = _windows_of(schedule, partition)
    phases = {window.end % schedule.major_time_frame for window in windows}
    phases.add(0)
    return min(supplied_in(schedule, partition, phase, delta)
               for phase in phases)


def linear_supply_bound(schedule: ScheduleTable, partition: str
                        ) -> Tuple[float, Ticks]:
    """The ``(alpha, Delta)`` linear lower bound: ``sbf(t) >= alpha*(t-Delta)``.

    ``alpha`` is the partition's long-run supply rate; ``Delta`` the
    smallest service delay making the bound valid over one hyperperiod
    (checked exhaustively) — the bounded-delay resource abstraction of
    Mok & Feng [20].
    """
    mtf = schedule.major_time_frame
    allocated = schedule.allocated_time(partition)
    alpha = allocated / mtf
    delay = 0
    for delta in range(1, 2 * mtf + 1):
        sbf = supply_bound_function(schedule, partition, delta)
        # smallest Delta such that alpha * (delta - Delta) <= sbf for all delta
        needed = delta - sbf / alpha
        if needed > delay:
            delay = needed
    return alpha, int(delay + 0.9999)


@dataclass
class SupplyCurve:
    """Memoized ``sbf`` for one (schedule, partition) pair.

    Response-time analysis probes ``sbf`` repeatedly at increasing
    arguments; the memo makes the per-tick scan affordable.
    """

    schedule: ScheduleTable
    partition: str

    def __post_init__(self) -> None:
        self._cache: dict = {}

    def __call__(self, delta: Ticks) -> Ticks:
        if delta not in self._cache:
            self._cache[delta] = supply_bound_function(
                self.schedule, self.partition, delta)
        return self._cache[delta]
