"""Multicore extension of the system model (Sect. 8, future work item iv).

The paper lists "parallelism between partition time windows on a multicore
platform" as a planned model extension.  This module provides it at the
model/validation level (the simulator itself remains single-core, as the
prototype was):

* :class:`MulticoreSchedule` — one PST per core, sharing a module-wide MTF;
* :func:`validate_multicore` — per-core eqs. (20)-(23) plus the two
  genuinely multicore conditions:

  - **no self-parallelism**: a partition must not hold two cores at the
    same instant unless it is declared ``parallel_capable`` (most
    partition operating systems in this class are uniprocessor kernels);
  - **aggregate duration**: a partition's requirement ``d`` per cycle may
    be satisfied by the *union* of its windows across cores (the
    multicore generalization of eq. (23)).

* :func:`generate_multicore_pst` — first-fit synthesis across cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..core.model import (
    PartitionRequirement,
    ScheduleTable,
    TimeWindow,
    lcm_of_cycles,
)
from ..core.validation import Severity, ValidationReport, validate_schedule
from ..exceptions import ConfigurationError
from ..types import Ticks
from .generator import generate_pst

__all__ = ["MulticoreSchedule", "validate_multicore",
           "generate_multicore_pst"]


@dataclass(frozen=True)
class MulticoreSchedule:
    """A module-wide schedule over several cores.

    ``cores`` maps a core name to its PST; every PST must share the module
    MTF.  ``requirements`` are module-level (a partition's duty may be
    split across cores); per-core tables carry core-local requirement
    splits.  ``parallel_capable`` names partitions allowed to hold several
    cores at once.
    """

    schedule_id: str
    major_time_frame: Ticks
    requirements: Tuple[PartitionRequirement, ...]
    cores: Mapping[str, ScheduleTable]
    parallel_capable: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.cores:
            raise ConfigurationError(
                f"multicore schedule {self.schedule_id!r} needs >= 1 core")
        for core, table in self.cores.items():
            if table.major_time_frame != self.major_time_frame:
                raise ConfigurationError(
                    f"core {core!r}: MTF {table.major_time_frame} differs "
                    f"from the module MTF {self.major_time_frame}")
        names = [r.partition for r in self.requirements]
        if len(names) != len(set(names)):
            raise ConfigurationError(
                f"multicore schedule {self.schedule_id!r}: duplicate "
                f"requirements {names}")

    @property
    def core_names(self) -> Tuple[str, ...]:
        """Names of the platform's cores."""
        return tuple(self.cores)

    def windows_of(self, partition: str) -> List[Tuple[str, TimeWindow]]:
        """All (core, window) pairs assigned to *partition*."""
        out: List[Tuple[str, TimeWindow]] = []
        for core, table in self.cores.items():
            for window in table.windows:
                if window.partition == partition:
                    out.append((core, window))
        return out

    def requirement_for(self, partition: str) -> PartitionRequirement:
        """Module-level requirement of *partition*."""
        for requirement in self.requirements:
            if requirement.partition == partition:
                return requirement
        raise ConfigurationError(
            f"multicore schedule {self.schedule_id!r}: no requirement for "
            f"{partition!r}")


def _overlapping(first: TimeWindow, second: TimeWindow) -> bool:
    return first.offset < second.end and second.offset < first.end


def validate_multicore(schedule: MulticoreSchedule) -> ValidationReport:
    """Check per-core tables, self-parallelism, and aggregate duration."""
    report = ValidationReport()

    # 1. every core's table is well-formed on its own (eqs. (20)-(22);
    #    per-core eq. (23) is deliberately NOT required — the aggregate
    #    check below replaces it).
    for core, table in schedule.cores.items():
        core_report = validate_schedule(table)
        for finding in core_report:
            if finding.code in ("EQ23_VIOLATED", "EQ8_TOTAL_DURATION"):
                continue  # superseded by the aggregate condition
            report.add(finding.severity, f"CORE_{finding.code}",
                       f"[core {core}] {finding.message}",
                       schedule=schedule.schedule_id,
                       partition=finding.partition)

    # 2. no self-parallelism for uniprocessor partitions.
    partitions = {window.partition
                  for table in schedule.cores.values()
                  for window in table.windows}
    cores = list(schedule.cores.items())
    for partition in sorted(partitions):
        if partition in schedule.parallel_capable:
            continue
        placements = schedule.windows_of(partition)
        for index, (core_a, window_a) in enumerate(placements):
            for core_b, window_b in placements[index + 1:]:
                if core_a != core_b and _overlapping(window_a, window_b):
                    report.add(
                        Severity.ERROR, "SELF_PARALLELISM",
                        f"partition {partition!r} holds cores {core_a!r} "
                        f"and {core_b!r} simultaneously "
                        f"([{window_a.offset},{window_a.end}) vs "
                        f"[{window_b.offset},{window_b.end})) but is not "
                        f"parallel-capable",
                        schedule=schedule.schedule_id, partition=partition)

    # 3. aggregate per-cycle duration across cores (multicore eq. (23)).
    for requirement in schedule.requirements:
        if schedule.major_time_frame % requirement.cycle != 0:
            report.add(Severity.ERROR, "CYCLE_NOT_DIVIDING_MTF",
                       f"cycle {requirement.cycle} of "
                       f"{requirement.partition!r} does not divide the "
                       f"module MTF {schedule.major_time_frame}",
                       schedule=schedule.schedule_id,
                       partition=requirement.partition)
            continue
        cycles = schedule.major_time_frame // requirement.cycle
        placements = schedule.windows_of(requirement.partition)
        for k in range(cycles):
            lo = k * requirement.cycle
            hi = lo + requirement.cycle
            supplied = sum(window.duration
                           for _, window in placements
                           if lo <= window.offset < hi)
            if supplied < requirement.duration:
                report.add(Severity.ERROR, "EQ23_MULTICORE",
                           f"partition {requirement.partition!r}, cycle "
                           f"k={k}: windows across all cores supply "
                           f"{supplied} < required {requirement.duration}",
                           schedule=schedule.schedule_id,
                           partition=requirement.partition)
    return report


def generate_multicore_pst(
        requirements: Sequence[PartitionRequirement], *, cores: int,
        schedule_id: str = "generated-mc",
        parallel_capable: FrozenSet[str] = frozenset(),
) -> Optional[MulticoreSchedule]:
    """First-fit synthesis of a multicore schedule.

    Partitions are spread across cores by descending utilization (a
    longest-processing-time-style heuristic), then each core's table is
    synthesized independently with :func:`~repro.analysis.generator
    .generate_pst`; non-parallel partitions live on exactly one core, so
    the self-parallelism condition holds by construction.  Returns None if
    any core's synthesis fails.
    """
    if cores < 1:
        raise ConfigurationError(f"need >= 1 core, got {cores}")
    mtf = lcm_of_cycles(requirement.cycle for requirement in requirements)
    buckets: List[List[PartitionRequirement]] = [[] for _ in range(cores)]
    loads = [0.0] * cores
    for requirement in sorted(requirements,
                              key=lambda r: r.utilization(), reverse=True):
        target = loads.index(min(loads))
        buckets[target].append(requirement)
        loads[target] += requirement.utilization()

    tables: Dict[str, ScheduleTable] = {}
    for index, bucket in enumerate(buckets):
        core = f"core{index}"
        if not bucket:
            # An idle core gets a trivial placeholder-free empty schedule:
            # model tables need >= 1 window, so give the least-loaded
            # partition a bonus window there if one exists; otherwise skip.
            continue
        table = generate_pst(bucket, schedule_id=f"{schedule_id}-{core}",
                             mtf=mtf)
        if table is None:
            return None
        tables[core] = table
    if not tables:
        return None
    return MulticoreSchedule(schedule_id=schedule_id, major_time_frame=mtf,
                             requirements=tuple(requirements), cores=tables,
                             parallel_capable=parallel_capable)
