"""Baseline scheduling analyses the paper positions itself against (Sect. 7).

Three comparators, each implemented as a supply abstraction (or a different
architecture) pluggable into the response-time machinery of
:mod:`repro.analysis.schedulability`:

* **Single-window theorem** (Lee et al. [18]) — assumes each partition gets
  "a single continuous execution time window within each iteration of its
  cycle", which the paper calls "much of a simplification of the scheduling
  mechanisms for TSP systems".  :func:`single_window_supply` is that
  abstraction; :func:`single_window_applicable` reports whether a real PST
  even satisfies the assumption (fragmented schedules do not).
* **Single-level priority preemptive scheduling** (Audsley & Wellings [4])
  — the Sect. 7 proposal of "abandoning two-level scheduling": all
  processes of all partitions in one global fixed-priority scheduler.
  Classic RTA, no partition windows — and no temporal partitioning.
* **Reservation-based scheduling** (Grigg & Audsley [14], via the periodic
  resource model of Mok & Feng [20] / Shin & Lee) — each partition becomes
  a periodic reservation ``(budget d, period eta)`` with no fixed table;
  :func:`periodic_resource_supply` is the standard worst-case sbf.

Benchmark E11 sweeps synthetic systems through all of them against AIR's
exact window-based analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.model import (
    Partition,
    PartitionRequirement,
    ProcessModel,
    ScheduleTable,
    SystemModel,
)
from ..types import Ticks, is_infinite
from .schedulability import (
    PartitionAnalysis,
    ProcessVerdict,
    SupplyFn,
    analyze_partition,
    higher_priority_demand,
    response_time,
)

__all__ = [
    "single_window_applicable",
    "single_window_supply",
    "periodic_resource_supply",
    "analyze_partition_single_window",
    "analyze_partition_reservation",
    "analyze_single_level",
    "GlobalVerdict",
]


# ------------------------------------------------------------------ #
# single-window theorem [18]
# ------------------------------------------------------------------ #


def single_window_applicable(schedule: ScheduleTable, partition: str) -> bool:
    """True if *partition* has exactly one window in each of its cycles —
    the [18] theorem's applicability condition."""
    requirement = schedule.requirement_for(partition)
    cycles = schedule.major_time_frame // requirement.cycle
    windows = schedule.windows_for(partition)
    if len(windows) != cycles:
        return False
    for k, window in enumerate(sorted(windows, key=lambda w: w.offset)):
        if not (k * requirement.cycle <= window.offset
                and window.end <= (k + 1) * requirement.cycle):
            return False
    return True


def single_window_supply(cycle: Ticks, duration: Ticks) -> SupplyFn:
    """Worst-case supply of one *duration*-long window every *cycle* ticks.

    Worst phasing starts immediately after a window closes: a blackout of
    ``cycle - duration``, then ``duration`` supplied per cycle.
    """
    blackout = cycle - duration

    def supply(delta: Ticks) -> Ticks:
        if delta <= 0:
            return 0
        full_cycles = delta // cycle
        remainder = delta - full_cycles * cycle
        partial = min(duration, max(0, remainder - blackout))
        return full_cycles * duration + partial

    return supply


def analyze_partition_single_window(
        partition: Partition, schedule: ScheduleTable
) -> Optional[PartitionAnalysis]:
    """[18]-style analysis; None when the schedule violates its assumption.

    Returning None for fragmented schedules is the point of experiment
    E11: AIR's window-exact analysis still applies where the single-window
    simplification cannot.
    """
    if not single_window_applicable(schedule, partition.name):
        return None
    requirement = schedule.requirement_for(partition.name)
    supply = single_window_supply(requirement.cycle, requirement.duration)
    return analyze_partition(partition, schedule, supply=supply)


# ------------------------------------------------------------------ #
# reservation-based scheduling [14] via the periodic resource model
# ------------------------------------------------------------------ #


def periodic_resource_supply(period: Ticks, budget: Ticks) -> SupplyFn:
    """Shin & Lee supply bound of the periodic resource ``Gamma(period,
    budget)`` — the reservation abstraction of [14]/[20].

    ``sbf(t) = k*budget + max(0, t - (k+1)(period-budget) - k*budget)``
    with ``k = floor((t - (period - budget)) / period)``, 0 for small t.
    """
    gap = period - budget

    def supply_exact(delta: Ticks) -> Ticks:
        if delta <= gap:
            return 0
        shifted = delta - gap
        k = shifted // period
        rem = shifted - k * period
        return k * budget + min(budget, max(0, rem - gap))

    return supply_exact


def analyze_partition_reservation(partition: Partition,
                                  requirement: PartitionRequirement,
                                  schedule: ScheduleTable
                                  ) -> PartitionAnalysis:
    """Reservation-based analysis: the partition's supply is the worst-case
    periodic resource, regardless of the actual (more informative) table."""
    supply = periodic_resource_supply(requirement.cycle, requirement.duration)
    return analyze_partition(partition, schedule, supply=supply)


# ------------------------------------------------------------------ #
# single-level priority preemptive scheduling [4]
# ------------------------------------------------------------------ #


@dataclass(frozen=True)
class GlobalVerdict:
    """Outcome of the single-level analysis for one process."""

    partition: str
    process: str
    response_time: Optional[Ticks]
    schedulable: bool


def analyze_single_level(system: SystemModel, *,
                         horizon: Optional[Ticks] = None
                         ) -> List[GlobalVerdict]:
    """Flatten every partition's processes into one fixed-priority set.

    Priorities collide across partitions (each partition numbers its own);
    ties are interference-conservative (see
    :func:`~repro.analysis.schedulability.higher_priority_demand`).  The
    supply is the full processor (``supply(t) = t``) — this is what
    "abandoning two-level scheduling" [4] buys analytically, at the price
    of abandoning temporal partitioning entirely.
    """
    flat: List[Tuple[str, ProcessModel]] = [
        (partition.name, process)
        for partition, process in system.processes()
        if (process.has_deadline and not is_infinite(process.wcet)
            and not is_infinite(process.period))]
    taskset = [process for _, process in flat]
    if horizon is None:
        horizon = 4 * max((schedule.major_time_frame
                           for schedule in system.schedules), default=1000)
    verdicts: List[GlobalVerdict] = []
    for index, (partition_name, process) in enumerate(flat):
        response = response_time(taskset, index, lambda t: t,
                                 horizon=horizon)
        verdicts.append(GlobalVerdict(
            partition=partition_name, process=process.name,
            response_time=response,
            schedulable=(response is not None
                         and response <= process.deadline)))
    return verdicts
