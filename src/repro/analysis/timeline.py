"""Text timelines (Gantt-style) from execution traces.

Turns a simulation trace into the kind of picture Fig. 8's bottom half
draws: one lane per partition, one character per time quantum, showing who
held the processor when — plus markers for deadline misses and schedule
switches.  Useful in examples, documentation and debugging.

Example output::

    t=0                                                        t=1300
    P1 ████░░░░░░░░░░░░░░░░░░░░░░
    P2 ░░░░██░░░░░░░░░░░░░░██░░░░
    ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.model import ScheduleTable
from ..kernel.simulator import Simulator
from ..kernel.trace import DeadlineMissed, PartitionDispatched, ScheduleSwitched, Trace
from ..types import Ticks

__all__ = ["occupancy_from_trace", "render_timeline", "render_schedule"]

#: Characters used by the renderer.
_BUSY = "#"
_IDLE = "."
_MISS = "!"
_SWITCH = "|"


def occupancy_from_trace(trace: Trace, *, start: Ticks, end: Ticks
                         ) -> List[Optional[str]]:
    """Reconstruct per-tick processor ownership from dispatch events.

    Requires the trace to cover the interval (no ring-buffer eviction of
    the relevant ``PartitionDispatched`` events, including the last one at
    or before *start*).
    """
    if end <= start:
        raise ValueError(f"empty interval [{start}, {end})")
    dispatches = [(e.tick, e.heir)
                  for e in trace.of_type(PartitionDispatched)]
    owner: Optional[str] = None
    timeline: List[Optional[str]] = []
    index = 0
    for tick in range(start, end):
        while index < len(dispatches) and dispatches[index][0] <= tick:
            owner = dispatches[index][1]
            index += 1
        timeline.append(owner)
    return timeline


def render_timeline(simulator: Simulator, *, start: Ticks, end: Ticks,
                    resolution: Ticks = 10) -> str:
    """Render the trace interval as one text lane per partition.

    Each character covers *resolution* ticks: ``#`` when the partition held
    the majority of that quantum, ``.`` otherwise; a trailing marker line
    shows deadline misses (``!``) and schedule switches (``|``).
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    occupancy = occupancy_from_trace(simulator.trace, start=start, end=end)
    names = simulator.config.model.partition_names
    width = (end - start + resolution - 1) // resolution

    lanes: Dict[str, List[str]] = {name: [] for name in names}
    for cell in range(width):
        lo = cell * resolution
        hi = min(lo + resolution, end - start)
        counts: Dict[Optional[str], int] = {}
        for owner in occupancy[lo:hi]:
            counts[owner] = counts.get(owner, 0) + 1
        majority = max(counts, key=lambda key: counts[key])
        for name in names:
            lanes[name].append(_BUSY if majority == name else _IDLE)

    markers = [" "] * width
    for event in simulator.trace.of_type(DeadlineMissed):
        if start <= event.tick < end:
            markers[(event.tick - start) // resolution] = _MISS
    for event in simulator.trace.of_type(ScheduleSwitched):
        if start <= event.tick < end:
            markers[(event.tick - start) // resolution] = _SWITCH

    label_width = max(len(name) for name in names)
    lines = [f"t={start}  ({resolution} ticks/char)  t={end}"]
    for name in names:
        lines.append(f"{name.ljust(label_width)} {''.join(lanes[name])}")
    if any(marker != " " for marker in markers):
        lines.append(f"{''.ljust(label_width)} {''.join(markers)}  "
                     f"({_MISS}=deadline miss, {_SWITCH}=schedule switch)")
    return "\n".join(lines)


def render_schedule(schedule: ScheduleTable, *, resolution: Ticks = 10
                    ) -> str:
    """Render a PST statically (no trace needed) — the Fig. 8 picture."""
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    names = schedule.partitions
    width = (schedule.major_time_frame + resolution - 1) // resolution
    label_width = max(len(name) for name in names)
    lines = [f"{schedule.schedule_id}: MTF={schedule.major_time_frame} "
             f"({resolution} ticks/char)"]
    for name in names:
        lane = []
        for cell in range(width):
            midpoint = min(cell * resolution + resolution // 2,
                           schedule.major_time_frame - 1)
            lane.append(_BUSY if schedule.active_partition_at(midpoint) == name
                        else _IDLE)
        lines.append(f"{name.ljust(label_width)} {''.join(lane)}")
    return "\n".join(lines)
