"""Automated aids to the definition of system parameters (Sect. 1).

The paper's model "lays the ground for ... automated aids to the definition
of system parameters"; this module is that tooling:

* :func:`generate_pst` — synthesize a partition scheduling table satisfying
  eqs. (20)-(23) from bare timing requirements ``{(partition, eta, d)}``,
  by earliest-cycle first-fit over a free timeline;
* :func:`random_requirements` — random synthetic systems for the E11/E12
  sweeps (target utilization, cycle menu);
* :func:`corrupt_schedule` — derive *invalid* variants of a valid PST
  (shrunk windows, boundary shifts) so the validator's detection rate can
  be measured (E12).

All randomness flows through a :class:`~repro.kernel.rng.SeededRng`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..core.model import (
    PartitionRequirement,
    ScheduleTable,
    TimeWindow,
    lcm_of_cycles,
)
from ..exceptions import ConfigurationError
from ..kernel.rng import SeededRng
from ..types import Ticks

__all__ = ["generate_pst", "random_requirements", "corrupt_schedule"]


class _Timeline:
    """Free-interval bookkeeping over one MTF."""

    def __init__(self, mtf: Ticks) -> None:
        self._free: List[Tuple[Ticks, Ticks]] = [(0, mtf)]

    def allocate(self, lo: Ticks, hi: Ticks, amount: Ticks
                 ) -> Optional[List[Tuple[Ticks, Ticks]]]:
        """Claim *amount* ticks inside ``[lo, hi)``, possibly fragmented.

        First-fit over free intervals; returns the claimed spans or None
        if the range cannot supply the amount.
        """
        claims: List[Tuple[Ticks, Ticks]] = []
        remaining = amount
        updated: List[Tuple[Ticks, Ticks]] = []
        for start, end in self._free:
            if remaining > 0:
                usable_start = max(start, lo)
                usable_end = min(end, hi)
                usable = usable_end - usable_start
                if usable > 0:
                    take = min(usable, remaining)
                    claims.append((usable_start, usable_start + take))
                    remaining -= take
                    if start < usable_start:
                        updated.append((start, usable_start))
                    if usable_start + take < end:
                        updated.append((usable_start + take, end))
                    continue
            updated.append((start, end))
        if remaining > 0:
            return None  # allocation failed; leave the timeline untouched
        self._free = updated
        return claims


def generate_pst(requirements: Sequence[PartitionRequirement], *,
                 schedule_id: str = "generated",
                 mtf: Optional[Ticks] = None) -> Optional[ScheduleTable]:
    """Synthesize a PST meeting eq. (23) for *requirements*, or None.

    The MTF defaults to the lcm of the cycles (the minimal eq. (22)
    choice).  Partitions are placed shortest-cycle first (rate-monotonic
    order); each activation cycle gets its full duration inside its own
    ``[k*eta, (k+1)*eta)`` range, fragmented if necessary — precisely what
    the single-window abstraction of [18] cannot represent.
    """
    if not requirements:
        raise ConfigurationError("generate_pst needs at least one requirement")
    if mtf is None:
        mtf = lcm_of_cycles(req.cycle for req in requirements)
    elif mtf % lcm_of_cycles(req.cycle for req in requirements) != 0:
        raise ConfigurationError(
            f"requested MTF {mtf} is not a multiple of the lcm of cycles")
    timeline = _Timeline(mtf)
    windows: List[TimeWindow] = []
    for requirement in sorted(requirements, key=lambda r: (r.cycle,
                                                           r.partition)):
        if requirement.duration == 0:
            # Non-real-time partition: give it one best-effort window in the
            # first free slot so it appears in omega (Sect. 3.2 assumption).
            claims = timeline.allocate(0, mtf, 1)
            if claims is None:
                return None
            windows.extend(TimeWindow(requirement.partition, lo, hi - lo)
                           for lo, hi in claims)
            continue
        cycles = mtf // requirement.cycle
        for k in range(cycles):
            claims = timeline.allocate(k * requirement.cycle,
                                       (k + 1) * requirement.cycle,
                                       requirement.duration)
            if claims is None:
                return None
            windows.extend(TimeWindow(requirement.partition, lo, hi - lo)
                           for lo, hi in claims)
    return ScheduleTable(schedule_id=schedule_id, major_time_frame=mtf,
                         requirements=tuple(requirements),
                         windows=tuple(windows))


def random_requirements(rng: SeededRng, *, partitions: int,
                        utilization: float,
                        cycle_menu: Sequence[Ticks] = (100, 200, 400, 800)
                        ) -> List[PartitionRequirement]:
    """Random per-partition timing requirements with total supply
    ``sum(d/eta)`` approximately *utilization* (UUniFast-style split)."""
    if not 0 < utilization <= 1.0:
        raise ConfigurationError(
            f"utilization must be in (0, 1], got {utilization}")
    shares: List[float] = []
    remaining = utilization
    for index in range(partitions - 1):
        # UUniFast: keep the remaining utilization uniformly distributable.
        next_remaining = remaining * rng.uniform(0.0, 1.0) ** (
            1.0 / (partitions - index - 1))
        shares.append(remaining - next_remaining)
        remaining = next_remaining
    shares.append(remaining)
    requirements = []
    for index, share in enumerate(shares):
        cycle = rng.choice(list(cycle_menu))
        duration = max(1, int(round(share * cycle)))
        duration = min(duration, cycle)
        requirements.append(PartitionRequirement(
            partition=f"P{index + 1}", cycle=cycle, duration=duration))
    return requirements


def corrupt_schedule(schedule: ScheduleTable, rng: SeededRng
                     ) -> Tuple[str, ScheduleTable]:
    """Derive an *invalid* variant of a valid PST (for validator testing).

    Returns ``(corruption_kind, corrupted_schedule)``.  The corruption is
    chosen among: shrinking one window below the required duration
    (violates eq. (23)) and shifting one window out of its activation
    cycle (violates eq. (23) placement).  Both keep eq. (21) intact so the
    defect is semantic, not syntactic.
    """
    windows = list(schedule.windows)
    for _ in range(64):
        kind = rng.choice(["shrink", "shift"])
        index = rng.randint(0, len(windows) - 1)
        window = windows[index]
        mutated = None
        if kind == "shrink" and window.duration > 1:
            mutated = TimeWindow(window.partition, window.offset,
                                 window.duration - 1)
        elif kind == "shift":
            requirement = schedule.requirement_for(window.partition)
            shifted = window.offset + requirement.cycle
            limit = schedule.major_time_frame - window.duration
            if shifted <= limit:
                neighbours_ok = all(
                    other is window or not TimeWindow(
                        window.partition, shifted,
                        window.duration).overlaps(other)
                    for other in windows)
                if neighbours_ok:
                    mutated = TimeWindow(window.partition, shifted,
                                         window.duration)
        if mutated is None:
            continue
        candidate_windows = list(windows)
        candidate_windows[index] = mutated
        try:
            candidate = ScheduleTable(
                schedule_id=f"{schedule.schedule_id}-{kind}",
                major_time_frame=schedule.major_time_frame,
                requirements=schedule.requirements,
                windows=tuple(candidate_windows),
                change_actions=dict(schedule.change_actions))
        except ConfigurationError:
            continue  # mutation broke well-formedness; try again
        from ..core.validation import validate_schedule

        if not validate_schedule(candidate).ok:
            return kind, candidate
    raise ConfigurationError(
        f"could not derive an invalid variant of {schedule.schedule_id!r} "
        f"in 64 attempts")
