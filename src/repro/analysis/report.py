"""Integrated module analysis report (the integrator's one-stop output).

Combines, for a :class:`~repro.core.model.SystemModel` (or full
:class:`~repro.config.schema.SystemConfig`):

* the offline verification findings (eqs. (20)-(23) + config checks);
* per-schedule utilization/idle metrics;
* per-partition supply characterization (rate, worst service delay);
* per-process response-time verdicts.

The output is both a structured :class:`ModuleReport` (for tooling) and a
rendered text document (for humans) — the "automated aids to the definition
of system parameters" the paper's model is meant to enable (Sect. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..config.schema import SystemConfig
from ..core.model import SystemModel
from ..core.validation import ValidationReport, validate_system
from .schedulability import PartitionAnalysis, analyze_partition
from .supply import linear_supply_bound

__all__ = ["SupplySummary", "ScheduleReport", "ModuleReport",
           "build_report"]


@dataclass(frozen=True)
class SupplySummary:
    """Linear supply characterization of one partition under one schedule."""

    partition: str
    allocated_per_mtf: int
    rate: float
    service_delay: int


@dataclass(frozen=True)
class ScheduleReport:
    """Everything known about one PST."""

    schedule_id: str
    major_time_frame: int
    utilization: float
    idle_ticks: int
    supplies: Tuple[SupplySummary, ...]
    analyses: Tuple[PartitionAnalysis, ...]

    @property
    def schedulable(self) -> bool:
        """True if every analyzable process in every partition passes."""
        return all(analysis.schedulable for analysis in self.analyses)


@dataclass(frozen=True)
class ModuleReport:
    """The full integration report."""

    validation: ValidationReport
    schedules: Tuple[ScheduleReport, ...]

    @property
    def ok(self) -> bool:
        """True if validation has no errors and everything is schedulable."""
        return self.validation.ok and all(s.schedulable
                                          for s in self.schedules)

    def schedule(self, schedule_id: str) -> ScheduleReport:
        """The report for *schedule_id*."""
        for report in self.schedules:
            if report.schedule_id == schedule_id:
                return report
        raise KeyError(f"no schedule report for {schedule_id!r}")

    def render(self) -> str:
        """Multi-line human-readable document."""
        lines: List[str] = ["MODULE ANALYSIS REPORT",
                            "=" * 40, "",
                            "offline verification:",
                            self.validation.render(), ""]
        for report in self.schedules:
            lines.append(f"schedule {report.schedule_id!r}: "
                         f"MTF={report.major_time_frame}, "
                         f"utilization={report.utilization:.1%}, "
                         f"idle={report.idle_ticks}")
            for supply in report.supplies:
                lines.append(f"  supply {supply.partition}: "
                             f"{supply.allocated_per_mtf}/MTF "
                             f"(rate {supply.rate:.3f}, "
                             f"delay<={supply.service_delay})")
            for analysis in report.analyses:
                for verdict in analysis.verdicts:
                    flag = "OK  " if verdict.schedulable else "MISS"
                    lines.append(
                        f"  {flag} {analysis.partition}/{verdict.process}: "
                        f"R={verdict.response_time} D={verdict.deadline}"
                        + (f" ({verdict.reason})" if verdict.reason else ""))
            lines.append("")
        lines.append(f"overall: {'ACCEPTABLE' if self.ok else 'REJECTED'}")
        return "\n".join(lines)


def build_report(target: Union[SystemModel, SystemConfig]) -> ModuleReport:
    """Produce the full report for a model or configuration."""
    if isinstance(target, SystemConfig):
        validation = target.validate()
        model = target.model
    else:
        validation = validate_system(target)
        model = target

    schedules: List[ScheduleReport] = []
    for schedule in model.schedules:
        supplies: List[SupplySummary] = []
        analyses: List[PartitionAnalysis] = []
        for requirement in schedule.requirements:
            partition = model.partition(requirement.partition)
            rate, delay = linear_supply_bound(schedule, requirement.partition)
            supplies.append(SupplySummary(
                partition=requirement.partition,
                allocated_per_mtf=schedule.allocated_time(
                    requirement.partition),
                rate=rate, service_delay=delay))
            analyses.append(analyze_partition(partition, schedule))
        schedules.append(ScheduleReport(
            schedule_id=schedule.schedule_id,
            major_time_frame=schedule.major_time_frame,
            utilization=schedule.utilization(),
            idle_ticks=schedule.idle_time(),
            supplies=tuple(supplies),
            analyses=tuple(analyses)))
    return ModuleReport(validation=validation, schedules=tuple(schedules))
