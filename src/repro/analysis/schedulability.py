"""Process-level schedulability analysis under partition supply (Sects. 1, 8).

The paper lists "necessary conditions for process scheduling and deadline
fulfilment" as the first item of its future-work model consolidation; this
module provides that analysis for the reproduction:

* the demand of a process set under preemptive fixed-priority scheduling
  (the ARINC 653-mandated policy, eq. (14));
* response-time computation against an arbitrary supply function
  (the partition's :func:`~repro.analysis.supply.supply_bound_function`,
  or any baseline abstraction from :mod:`repro.analysis.baselines`);
* a per-partition :func:`analyze_partition` report and a module-wide
  :func:`analyze_system` sweep.

The analysis is sufficient (conservative): processes it accepts meet their
deadlines under the model assumptions (periodic releases, WCET bounds,
independent processes); processes it rejects *may* still behave at run
time — which is exactly why the architecture pairs offline analysis with
run-time deadline violation monitoring (Sect. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.model import Partition, ProcessModel, ScheduleTable, SystemModel
from ..types import Ticks, is_infinite
from .supply import SupplyCurve

__all__ = ["SupplyFn", "ProcessVerdict", "PartitionAnalysis",
           "higher_priority_demand", "response_time", "analyze_partition",
           "analyze_system"]

#: A supply function: interval length -> guaranteed CPU ticks.
SupplyFn = Callable[[Ticks], Ticks]


@dataclass(frozen=True)
class ProcessVerdict:
    """Analysis outcome for one process."""

    process: str
    wcet: Ticks
    deadline: Ticks
    response_time: Optional[Ticks]
    schedulable: bool
    reason: str = ""


@dataclass(frozen=True)
class PartitionAnalysis:
    """Analysis outcome for one partition under one schedule."""

    partition: str
    schedule: str
    verdicts: Tuple[ProcessVerdict, ...]

    @property
    def schedulable(self) -> bool:
        """True if every analyzable process meets its deadline."""
        return all(v.schedulable for v in self.verdicts)

    def verdict_for(self, process: str) -> ProcessVerdict:
        """The verdict of *process*."""
        for verdict in self.verdicts:
            if verdict.process == process:
                return verdict
        raise KeyError(f"no verdict for process {process!r}")


def _analyzable(process: ProcessModel) -> bool:
    return (process.has_deadline and not is_infinite(process.wcet)
            and not is_infinite(process.period))


def higher_priority_demand(taskset: Sequence[ProcessModel], index: int,
                           interval: Ticks) -> Ticks:
    """Worst-case demand of process *index* plus its interference in
    ``[0, interval)``.

    Interference comes from processes with numerically smaller (greater)
    priority; equal priorities also interfere (FIFO tie-break means an
    equal-priority process released earlier runs first — conservatively,
    all of them).
    """
    target = taskset[index]
    demand = target.wcet
    for position, other in enumerate(taskset):
        if position == index or not _analyzable(other):
            continue
        if other.priority <= target.priority:
            demand += math.ceil(interval / other.period) * other.wcet
    return demand


def response_time(taskset: Sequence[ProcessModel], index: int,
                  supply: SupplyFn, *, horizon: Ticks) -> Optional[Ticks]:
    """Smallest ``R`` with ``supply(R) >= demand(R)``, or None past *horizon*.

    Fixed-point iteration on the interval length: start at the process's
    own WCET, recompute demand at the current candidate, and advance to the
    smallest interval whose supply covers it.
    """
    target = taskset[index]
    candidate: Ticks = max(target.wcet, 1)
    for _ in range(10_000):
        needed = higher_priority_demand(taskset, index, candidate)
        # advance candidate until the supply covers the demand at `candidate`
        probe = candidate
        while probe <= horizon and supply(probe) < needed:
            probe += 1
        if probe > horizon:
            return None
        if probe == candidate:
            return candidate
        candidate = probe
    return None


def analyze_partition(partition: Partition, schedule: ScheduleTable, *,
                      supply: Optional[SupplyFn] = None,
                      horizon: Optional[Ticks] = None) -> PartitionAnalysis:
    """Run response-time analysis for every analyzable process of
    *partition* under *schedule* (or an explicit *supply* function)."""
    if supply is None:
        supply = SupplyCurve(schedule, partition.name)
    if horizon is None:
        horizon = 4 * schedule.major_time_frame
    taskset = list(partition.processes)
    verdicts: List[ProcessVerdict] = []
    for index, process in enumerate(taskset):
        if not _analyzable(process):
            verdicts.append(ProcessVerdict(
                process=process.name, wcet=process.wcet,
                deadline=process.deadline, response_time=None,
                schedulable=True,
                reason="not analyzable (no deadline, WCET or period); "
                       "monitored at run time instead"))
            continue
        response = response_time(taskset, index, supply, horizon=horizon)
        if response is None:
            verdicts.append(ProcessVerdict(
                process=process.name, wcet=process.wcet,
                deadline=process.deadline, response_time=None,
                schedulable=False,
                reason=f"no fixed point within horizon {horizon}"))
            continue
        verdicts.append(ProcessVerdict(
            process=process.name, wcet=process.wcet,
            deadline=process.deadline, response_time=response,
            schedulable=response <= process.deadline,
            reason="" if response <= process.deadline else
            f"R={response} > D={process.deadline}"))
    return PartitionAnalysis(partition=partition.name,
                             schedule=schedule.schedule_id,
                             verdicts=tuple(verdicts))


def analyze_system(system: SystemModel) -> Dict[str, List[PartitionAnalysis]]:
    """Analyze every partition under every schedule it appears in.

    Returns ``{schedule_id: [PartitionAnalysis, ...]}``.
    """
    results: Dict[str, List[PartitionAnalysis]] = {}
    for schedule in system.schedules:
        analyses: List[PartitionAnalysis] = []
        for requirement in schedule.requirements:
            partition = system.partition(requirement.partition)
            analyses.append(analyze_partition(partition, schedule))
        results[schedule.schedule_id] = analyses
    return results
