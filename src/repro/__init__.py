"""repro — reproduction of "Architecting Robustness and Timeliness in a New
Generation of Aerospace Systems" (Rufino, Craveiro & Verissimo, DSN 2009).

A production-quality Python library implementing the AIR (ARINC 653 In
Space RTOS) architecture for robust temporal and spatial partitioning
(TSP), including:

* the formal system model and offline verification tools (Sect. 3-4);
* the AIR PMK two-level hierarchical scheduler with mode-based partition
  schedules (Algorithms 1-2);
* process deadline violation monitoring (Algorithm 3);
* a full APEX (ARINC 653) service layer, POS adaptation layer, health
  monitoring, spatial partitioning over a simulated 3-level MMU, and
  interpartition communication;
* a deterministic tick-driven simulator substituting for the paper's
  RTEMS/QEMU prototype substrate (see DESIGN.md for substitutions).

Quickstart::

    from repro import SystemBuilder, Simulator, Compute, Call

    builder = SystemBuilder()
    part = builder.partition("P1")
    part.process("task", period=100, deadline=100, priority=1, wcet=10)

    def task_body(ctx):
        while True:
            yield Compute(10)
            ctx.log("job done")
            yield Call(ctx.apex.periodic_wait)

    part.body("task", task_body)
    builder.schedule("main", mtf=100) \
        .require("P1", cycle=100, duration=50) \
        .window("P1", offset=0, duration=50)
    sim = Simulator(builder.build())
    sim.run_mtf(10)
"""

from .types import (
    INFINITE_TIME,
    AccessKind,
    ErrorCode,
    ErrorLevel,
    PartitionMode,
    PortDirection,
    PrivilegeLevel,
    ProcessState,
    QueuingDiscipline,
    RecoveryAction,
    ScheduleChangeAction,
    Ticks,
)
from .exceptions import (
    AirError,
    AuthorizationError,
    ClockTamperingError,
    ConfigurationError,
    SchedulingError,
    SimulationError,
    SpatialViolationError,
    UnknownPartitionError,
    UnknownProcessError,
    UnknownScheduleError,
    ValidationError,
)
from .core.model import (
    Partition,
    PartitionRequirement,
    ProcessModel,
    ScheduleTable,
    SystemModel,
    TimeWindow,
    single_schedule_system,
)
from .core.validation import ValidationReport, validate_schedule, validate_system
from .core.scheduler import PartitionScheduler
from .core.dispatcher import PartitionDispatcher
from .core.pmk import Pmk
from .pos.effects import Call, Compute
from .apex.types import ReturnCode, ServiceResult
from .apex.interface import ApexInterface, ProcessContext
from .config.schema import PartitionRuntimeConfig, SystemConfig
from .config.builder import SystemBuilder
from .kernel.simulator import Simulator
from .kernel.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "INFINITE_TIME", "AccessKind", "ErrorCode", "ErrorLevel",
    "PartitionMode", "PortDirection", "PrivilegeLevel", "ProcessState",
    "QueuingDiscipline", "RecoveryAction", "ScheduleChangeAction", "Ticks",
    "AirError", "AuthorizationError", "ClockTamperingError",
    "ConfigurationError", "SchedulingError", "SimulationError",
    "SpatialViolationError", "UnknownPartitionError", "UnknownProcessError",
    "UnknownScheduleError", "ValidationError",
    "Partition", "PartitionRequirement", "ProcessModel", "ScheduleTable",
    "SystemModel", "TimeWindow", "single_schedule_system",
    "ValidationReport", "validate_schedule", "validate_system",
    "PartitionScheduler", "PartitionDispatcher", "Pmk",
    "Call", "Compute", "ReturnCode", "ServiceResult", "ApexInterface",
    "ProcessContext", "PartitionRuntimeConfig", "SystemConfig",
    "SystemBuilder", "Simulator", "Trace",
    "__version__",
]
