"""Effects yielded by application process bodies.

Application code in this reproduction is written as Python generator
functions ("process bodies") that *yield effects* to their partition
operating system — the simulated analogue of executing instructions and
invoking APEX services.  Two effects exist:

* :class:`Compute` — burn CPU for a number of ticks (the process's useful
  work, charged against its execution time window);
* :class:`Call` — invoke a service (typically a bound APEX method).  The
  call itself is instantaneous in simulated time, but may *block* the
  process (eq. (13) ``waiting`` state); the value sent back into the
  generator is the service's return value, delivered when the process next
  runs.

Example body::

    def body(ctx):
        while True:
            yield Compute(30)                          # do work
            result = yield Call(ctx.apex.periodic_wait)  # wait next period
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from ..types import Ticks

__all__ = ["Compute", "Call", "Effect"]


@dataclass(frozen=True, slots=True)
class Compute:
    """Consume *ticks* of CPU time before the body resumes."""

    ticks: Ticks

    def __post_init__(self) -> None:
        if self.ticks <= 0:
            raise ValueError(f"Compute requires a positive tick count, "
                             f"got {self.ticks}")


@dataclass(frozen=True, slots=True)
class Call:
    """Invoke ``service(*args, **kwargs)`` on behalf of the process.

    The service runs synchronously inside the simulation step; if it leaves
    the calling process in the ``waiting`` state, the process is descheduled
    and the service's return value is delivered when it resumes.
    """

    service: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def invoke(self) -> Any:
        """Execute the wrapped service call."""
        return self.service(*self.args, **self.kwargs)


#: Union of everything a process body may yield.
Effect = object
