"""AIR POS Adaptation Layer (PAL) — Sects. 2.2, 5.2, 5.3.

The PAL wraps each partition's operating system, hiding its particularities
from the AIR architecture components.  Concretely it:

* owns the partition's deadline bookkeeping (the paper places the deadline
  control structures at the PAL "from the engineering, integrity and
  spatial separation points of view" — Sect. 5.2) and provides the private
  register/unregister interfaces the APEX primitives call (Fig. 6);
* implements the *surrogate clock tick announcement routine* (Fig. 7):
  announce the elapsed ticks to the native POS, then run the Algorithm 3
  deadline verification and report violations to Health Monitoring;
* forwards POS events (dispatches, state changes, releases, completions,
  faults) to the trace and to Health Monitoring.

The PAL deliberately knows nothing about *which* POS flavour it wraps —
only the :class:`~repro.pos.base.PartitionOs` interface — which is exactly
the homogeneity argument of Sect. 2.2.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..deadline.monitor import DeadlineMonitor, Violation
from ..kernel.trace import (
    DeadlineMissed,
    DeadlineRegistered,
    DeadlineUnregistered,
    ProcessCompleted,
    ProcessDispatched,
    ProcessStateChanged,
    Trace,
)
from ..types import ProcessState, Ticks
from .base import PartitionOs
from .tcb import Tcb

__all__ = ["PosAdaptationLayer"]

#: Signature of the Health Monitoring hook for deadline violations.
ViolationSink = Callable[[Violation], None]

#: Signature of the Health Monitoring hook for application faults.
FaultSink = Callable[[Tcb, BaseException], None]


class PosAdaptationLayer:
    """Wraps one :class:`~repro.pos.base.PartitionOs` instance.

    Parameters
    ----------
    pos:
        The partition operating system to adapt.
    clock:
        Zero-argument callable returning current time
        (``PAL_GETCURRENTTIME`` in Algorithm 3).
    trace:
        Event sink.
    store_kind:
        Deadline structure: ``"list"`` (paper) or ``"tree"`` (ablation).
    on_violation / on_fault:
        Health Monitoring hooks (``HM_DEADLINEVIOLATED`` and the
        application-error path of Sect. 2.4).
    """

    def __init__(self, pos: PartitionOs, *, clock: Callable[[], Ticks],
                 trace: Trace, store_kind: str = "list",
                 on_violation: Optional[ViolationSink] = None,
                 on_fault: Optional[FaultSink] = None) -> None:
        self.pos = pos
        self._clock = clock
        self._trace = trace
        # The partition name is read on every traced state change — the
        # clock-ISR hot path — so it is cached here instead of going
        # through two property hops per event.
        self._partition_name = pos.name
        self.on_violation = on_violation
        self.on_fault = on_fault
        self.monitor = DeadlineMonitor(pos.name, store_kind=store_kind,
                                       on_violation=self._report_violation)
        pos.callbacks.on_state_change = self._trace_state_change
        pos.callbacks.on_dispatch = self._trace_dispatch
        pos.callbacks.on_release = self._register_release_deadline
        pos.callbacks.on_completion = self._handle_completion
        pos.callbacks.on_fault = self._handle_fault

    @property
    def partition(self) -> str:
        """Name of the wrapped partition."""
        return self._partition_name

    def now(self) -> Ticks:
        """PAL_GETCURRENTTIME — the PMK's clock, read-only."""
        return self._clock()

    # -------------------------------------------------------------- #
    # surrogate clock tick announcement (Fig. 7)
    # -------------------------------------------------------------- #

    def announce_ticks(self, elapsed: Ticks) -> List[Violation]:
        """The modified announcement routine of Fig. 7b.

        First the native POS announcement runs for the elapsed span (timer
        wake-ups, periodic releases — Fig. 7a invokes it ``#elapsedTicks``
        times; our POS takes the span in one call with identical effect),
        then the Algorithm 3 deadline verification loop.  Returns the
        violations detected by this announcement.
        """
        now = self._clock()
        self.pos.announce_ticks(now, elapsed)
        return self.monitor.verify(now)

    def announce_ticks_fast(self, now: Ticks, elapsed: Ticks) -> List[Violation]:
        """:meth:`announce_ticks` with *now* supplied by the caller.

        The fast execution backend already holds the current tick in the
        driving loop, so the ``PAL_GETCURRENTTIME`` read is redundant.
        The Algorithm 3 verification still runs on every announcement —
        its check/comparison counters are deterministic state captured by
        snapshots, so skipping a verify would break bit-identity.
        """
        self.pos.announce_ticks(now, elapsed)
        return self.monitor.verify(now)

    def announce_span(self, elapsed: Ticks) -> None:
        """Batch form of :meth:`announce_ticks` for a provably quiet span.

        The event-driven core calls this when it has proven (via
        :meth:`next_event_tick`) that neither the native POS announcement
        nor the Algorithm 3 verification can observe anything inside the
        span; only elapsed-time and instrumentation bookkeeping remain,
        bit-identical to *elapsed* single-tick announcements.
        """
        self.pos.announce_span(elapsed)
        self.monitor.batch_account(elapsed)

    def next_event_tick(self, now: Ticks) -> Optional[Ticks]:
        """First tick at which this partition's announcement could act.

        The PAL horizon is the earliest of its layers' horizons: the POS
        timer wheel (delay expiries, periodic releases, resource
        timeouts), the POS scheduling policy (e.g. a round-robin quantum
        expiry), and the Algorithm 3 deadline store.  None when all three
        are unbounded.
        """
        pos = self.pos
        event = pos.next_timer_tick()
        if pos.has_quantum_horizon:
            quantum = pos.next_quantum_tick(now)
            if quantum is not None and (event is None or quantum < event):
                event = quantum
        violation = self.monitor.next_violation_tick()
        if violation is not None and (event is None or violation < event):
            event = violation
        return event

    # -------------------------------------------------------------- #
    # deadline register/unregister interfaces (Sect. 5.2, Fig. 6)
    # -------------------------------------------------------------- #

    def register_deadline(self, process: str, deadline_time: Ticks) -> None:
        """Insert or move *process*'s absolute deadline (START/REPLENISH)."""
        self.monitor.register(process, deadline_time)
        self.pos.tcb(process).deadline_time = deadline_time
        self._trace.record(DeadlineRegistered(
            tick=self._clock(), partition=self._partition_name, process=process,
            deadline_time=deadline_time))

    def unregister_deadline(self, process: str) -> None:
        """Drop *process*'s deadline (STOP, completion)."""
        if self.monitor.unregister(process):
            self._trace.record(DeadlineUnregistered(
                tick=self._clock(), partition=self._partition_name, process=process))
        self.pos.tcb(process).deadline_time = None

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture the PAL's only mutable state: the deadline monitor."""
        return {"monitor": self.monitor.snapshot()}

    def restore(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture (callbacks are structural)."""
        self.monitor.restore(state["monitor"])

    # -------------------------------------------------------------- #
    # POS callback handlers
    # -------------------------------------------------------------- #

    def _report_violation(self, violation: Violation) -> None:
        self._trace.record(DeadlineMissed(
            tick=violation.detected_at, partition=self._partition_name,
            process=violation.process, deadline_time=violation.deadline_time,
            detection_latency=violation.detection_latency))
        if self.on_violation is not None:
            self.on_violation(violation)

    def _register_release_deadline(self, tcb: Tcb, release_tick: Ticks) -> None:
        """On a periodic release point, the new job's deadline is
        ``release + time capacity`` (ARINC 653 semantics, Fig. 6)."""
        if tcb.has_deadline:
            self.register_deadline(tcb.name, release_tick + tcb.model.deadline)

    def _handle_completion(self, tcb: Tcb) -> None:
        self.unregister_deadline(tcb.name)
        self._trace.record(ProcessCompleted(
            tick=self._clock(), partition=self._partition_name, process=tcb.name))

    def _handle_fault(self, tcb: Tcb, exc: BaseException) -> None:
        self.unregister_deadline(tcb.name)
        if self.on_fault is not None:
            self.on_fault(tcb, exc)

    def _trace_state_change(self, tcb: Tcb, previous: ProcessState,
                            reason: str) -> None:
        # ``_value_`` is the plain instance attribute behind ``Enum.value``
        # — the descriptor hop is measurable at this call rate.
        self._trace.record(ProcessStateChanged(
            tick=self._clock(), partition=self._partition_name,
            process=tcb.model.name, previous_state=previous._value_,
            new_state=tcb.state._value_, reason=reason))

    def _trace_dispatch(self, now: Ticks, previous: Optional[str],
                        heir: Optional[str]) -> None:
        self._trace.record(ProcessDispatched(
            tick=now, partition=self._partition_name, previous=previous,
            heir=heir))
