"""Partition Operating System (POS) base machinery.

AIR foresees a different operating system per partition (Sect. 2): real-time
kernels (RTEMS-like, :mod:`repro.pos.rtems`) and generic non-real-time ones
(Linux-like, :mod:`repro.pos.generic`).  This module implements everything
they share — task control block management, the timer bookkeeping driven by
the PAL's tick announcements, process execution of generator bodies — and
leaves the *scheduling policy* (selection of ``heir_m(t)``) abstract.

Time accounting model
---------------------
Simulated CPU time is only consumed by ``Compute`` effects; service calls
(``Call`` effects) are instantaneous but may block the caller.  A guard
bounds the number of zero-time steps per tick so a body that never computes
cannot livelock the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.model import Partition, ProcessModel
from ..exceptions import (
    ProcessFaultError,
    SimulationError,
    UnknownProcessError,
)
from ..types import ProcessState, Ticks
from .effects import Call, Compute
from .tcb import Tcb, WaitCondition, WaitReason

__all__ = ["PartitionOs", "PosCallbacks"]

#: Upper bound on zero-simulated-time body steps within one tick.
_MAX_ZERO_TIME_STEPS = 1024


@dataclass
class PosCallbacks:
    """Hooks the PAL installs to observe and extend POS behaviour.

    * ``on_state_change(tcb, previous, reason)`` — every eq. (13) transition;
    * ``on_dispatch(now, previous_name, heir_name)`` — heir process changes;
    * ``on_release(tcb, release_tick)`` — a periodic process hit a release
      point; the PAL uses this to (re)register the new absolute deadline
      (Fig. 6);
    * ``on_completion(tcb)`` — a body ran to completion; the PAL unregisters
      its deadline;
    * ``on_fault(tcb, exc)`` — a body raised; routed to Health Monitoring.
    """

    on_state_change: Optional[Callable[[Tcb, ProcessState, str], None]] = None
    on_dispatch: Optional[Callable[[Ticks, Optional[str], Optional[str]], None]] = None
    on_release: Optional[Callable[[Tcb, Ticks], None]] = None
    on_completion: Optional[Callable[[Tcb], None]] = None
    on_fault: Optional[Callable[[Tcb, BaseException], None]] = None


class PartitionOs:
    """Base class for partition operating systems.

    Subclasses implement :meth:`choose_heir` — the policy selecting the heir
    process among the schedulable set ``Ready_m(t)`` (eq. (15)).

    Parameters
    ----------
    partition:
        The static partition model whose processes this POS manages.
    name:
        Kernel flavour label (e.g. ``"rtems"``, ``"generic"``), used in
        traces and VITRAL output.
    """

    #: Flavour label overridden by subclasses.
    kernel_name = "abstract"

    #: True when :meth:`next_quantum_tick` can ever return a bound.  The
    #: PAL horizon consults this flag to skip the call entirely for
    #: policies with no quantum concept (it is on the span-boundary hot
    #: path of the event-driven core).
    has_quantum_horizon = False

    def __init__(self, partition: Partition) -> None:
        self.partition = partition
        self.callbacks = PosCallbacks()
        self._tcbs: Dict[str, Tcb] = {}
        self._ready_sequence = 0
        self._running: Optional[Tcb] = None
        self._preemption_lock = 0
        self._announced_ticks: Ticks = 0
        # Scheduling-state generation counter.  Every eq. (13) transition
        # funnels through Tcb.set_state -> _forward_state_change, so the
        # counter advances whenever the ready set, a wait condition or a
        # priority can have changed; horizon and dispatch memos key on it.
        self._generation = 0
        self._timer_memo: Tuple[int, Optional[Ticks]] = (-1, None)
        self._dispatch_generation = -1
        #: Optional ``(partition, process, send_value, effect)`` observer
        #: fired after every successful generator resume — the cycle
        #: cache's recording tap (:mod:`repro.kernel.cycle_cache`).
        self._cycle_probe: Optional[Callable[[str, str, Any, Any],
                                             None]] = None
        for model in partition.processes:
            self._tcbs[model.name] = Tcb(model=model, partition=partition.name)
        for tcb in self._tcbs.values():
            tcb.on_state_change = self._forward_state_change

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def name(self) -> str:
        """Partition this POS instance serves."""
        return self.partition.name

    @property
    def running(self) -> Optional[Tcb]:
        """The currently running process, if any."""
        return self._running

    @property
    def announced_ticks(self) -> Ticks:
        """Total ticks announced to this POS (its local notion of elapsed time)."""
        return self._announced_ticks

    def tcb(self, process_name: str) -> Tcb:
        """The TCB of *process_name*, or raise :class:`UnknownProcessError`."""
        try:
            return self._tcbs[process_name]
        except KeyError:
            raise UnknownProcessError(
                f"partition {self.name!r} has no process {process_name!r}"
            ) from None

    def tcbs(self) -> Tuple[Tcb, ...]:
        """All TCBs in declaration order."""
        return tuple(self._tcbs[m.name] for m in self.partition.processes)

    def add_process(self, model: ProcessModel) -> Tcb:
        """Dynamically create a process (APEX CREATE_PROCESS).

        ARINC 653 creates processes during partition initialization; the
        simulator also allows pre-declared models via the partition, so this
        is only needed for processes not in the static model.
        """
        if model.name in self._tcbs:
            raise SimulationError(
                f"partition {self.name!r}: process {model.name!r} already exists")
        tcb = Tcb(model=model, partition=self.name)
        tcb.on_state_change = self._forward_state_change
        self._tcbs[model.name] = tcb
        self._generation += 1
        return tcb

    def touch(self) -> None:
        """Invalidate scheduling memos after an out-of-band TCB mutation.

        For the rare services that change policy-relevant TCB fields
        *without* an eq. (13) state transition (APEX SET_PRIORITY).
        """
        self._generation += 1

    def ready_set(self) -> List[Tcb]:
        """``Ready_m(t)`` — eq. (15): processes in ready or running state."""
        return [tcb for tcb in self._tcbs.values() if tcb.is_schedulable]

    def has_schedulable(self) -> bool:
        """True when ``Ready_m(t)`` is non-empty (cheaper than building it).

        On the event-core horizon path; the unrolled state test avoids the
        per-TCB enum-property cost of :attr:`Tcb.is_schedulable`.
        """
        for tcb in self._tcbs.values():
            state = tcb.state
            if state is ProcessState.READY or state is ProcessState.RUNNING:
                return True
        return False

    # -------------------------------------------------------------- #
    # state transition services used by APEX and resources
    # -------------------------------------------------------------- #

    def next_ready_stamp(self) -> int:
        """Fresh antiquity sequence number for a transition into ``ready``."""
        self._ready_sequence += 1
        return self._ready_sequence

    def make_ready(self, tcb: Tcb, *, reason: str,
                   preserve_antiquity: bool = False) -> None:
        """Move *tcb* to ``ready``.

        ``preserve_antiquity`` keeps the previous :attr:`Tcb.ready_since`
        stamp — used when a *preempted* process returns to ready, so it
        keeps its seniority (the eq. (14) convention that processes are
        sorted by antiquity in the ready state).
        """
        stamp = tcb.ready_since if preserve_antiquity else self.next_ready_stamp()
        tcb.set_state(ProcessState.READY, reason=reason, ready_sequence=stamp)
        if self._running is tcb:
            self._running = None

    def block_running(self, condition: WaitCondition, *, reason: str) -> Tcb:
        """Block the currently running process under *condition*."""
        if self._running is None:
            raise SimulationError(
                f"partition {self.name!r}: no running process to block")
        tcb = self._running
        tcb.block(condition, reason=reason)
        self._running = None
        return tcb

    def stop_process(self, tcb: Tcb, *, reason: str) -> None:
        """Force *tcb* to ``dormant`` (APEX STOP / HM recovery action)."""
        if tcb.wait is not None and tcb.wait.resource is not None:
            cancel = getattr(tcb.wait.resource, "cancel_wait", None)
            if cancel is not None:
                cancel(tcb)
        tcb.set_state(ProcessState.DORMANT, reason=reason)
        tcb.reset_runtime()
        if self._running is tcb:
            self._running = None

    def wake(self, tcb: Tcb, *, result: Any = None, reason: str = "") -> None:
        """Wake a waiting process, delivering *result* to its next resume."""
        if tcb.state is not ProcessState.WAITING:
            raise SimulationError(
                f"process {self.name}/{tcb.name} is not waiting "
                f"(state={tcb.state.value})")
        tcb.pending_result = result
        tcb.has_pending_result = True
        self.make_ready(tcb, reason=reason or "woken")

    # -------------------------------------------------------------- #
    # preemption locking (APEX LOCK_PREEMPTION/UNLOCK_PREEMPTION)
    # -------------------------------------------------------------- #

    @property
    def preemption_locked(self) -> bool:
        """True while a process holds the preemption lock."""
        return self._preemption_lock > 0

    def lock_preemption(self) -> int:
        """Increase the preemption lock level; returns the new level."""
        self._preemption_lock += 1
        return self._preemption_lock

    def unlock_preemption(self) -> int:
        """Decrease the preemption lock level; returns the new level."""
        if self._preemption_lock == 0:
            raise SimulationError(
                f"partition {self.name!r}: preemption lock underflow")
        self._preemption_lock -= 1
        return self._preemption_lock

    # -------------------------------------------------------------- #
    # timer bookkeeping (driven by PAL tick announcements — Fig. 7)
    # -------------------------------------------------------------- #

    def announce_ticks(self, now: Ticks, elapsed: Ticks) -> None:
        """Process the passage of *elapsed* ticks ending at *now*.

        Invoked by the PAL's surrogate clock tick announcement routine
        (Fig. 7a: the native announcement is invoked ``#elapsedTicks``
        times).  Wakes timed waits whose expiry fell within the announced
        span and releases periodic processes.

        The scan is guarded by the memoized timer horizon: when no timed
        wait can have expired (the common case on a busy tick), the
        announcement is pure elapsed-time bookkeeping.  The guard cannot
        change behaviour — the scan below wakes exactly the waits with
        ``wake_at <= now``, and the horizon is their minimum.
        """
        self._announced_ticks += elapsed
        wake = self.next_timer_tick()
        if wake is None or wake > now:
            return
        self._wake_expired(now)

    def _wake_expired(self, now: Ticks) -> None:
        """Wake every timed wait whose expiry tick has been reached."""
        for tcb in self._tcbs.values():
            if tcb.state is not ProcessState.WAITING or tcb.wait is None:
                continue
            wait = tcb.wait
            if wait.wake_at is None or wait.wake_at > now:
                continue
            if wait.reason is WaitReason.DELAY:
                tcb.pending_result = None
                tcb.has_pending_result = True
                self.make_ready(tcb, reason="delay expired")
            elif wait.reason is WaitReason.PERIOD:
                self._release_periodic(tcb, wait.wake_at)
            elif wait.reason is WaitReason.RESOURCE:
                wait.timed_out = True
                resource = wait.resource
                if resource is not None:
                    on_timeout = getattr(resource, "on_wait_timeout", None)
                    if on_timeout is not None:
                        on_timeout(tcb)
                self.make_ready(tcb, reason="resource wait timed out")
            # SUSPENDED has wake_at only for SUSPEND with timeout:
            elif wait.reason is WaitReason.SUSPENDED:
                tcb.pending_result = None
                tcb.has_pending_result = True
                self.make_ready(tcb, reason="suspension timed out")

    def next_timer_tick(self) -> Optional[Ticks]:
        """Earliest pending timed wake-up among this POS's processes.

        The POS timer horizon for the event-driven core: no delay expiry,
        periodic release, resource timeout or timed-suspension wake can
        happen strictly before the returned tick, so
        :meth:`announce_ticks` is pure bookkeeping until then.  None when
        every wait is purely event-driven.  O(n) over the (small) TCB set,
        but memoized on the scheduling-state generation: wait conditions
        only change through :meth:`Tcb.set_state` transitions (wake-at
        values are fixed at :class:`WaitCondition` construction), so the
        scan is repaid only after a transition.
        """
        generation = self._generation
        memo_generation, memo_tick = self._timer_memo
        if memo_generation == generation:
            return memo_tick
        earliest: Optional[Ticks] = None
        for tcb in self._tcbs.values():
            if tcb.state is not ProcessState.WAITING or tcb.wait is None:
                continue
            wake_at = tcb.wait.wake_at
            if wake_at is not None and (earliest is None or wake_at < earliest):
                earliest = wake_at
        self._timer_memo = (generation, earliest)
        return earliest

    def announce_span(self, elapsed: Ticks) -> None:
        """Batch form of :meth:`announce_ticks` for a provably quiet span.

        The caller (the event-driven core) guarantees no timed wake-up
        falls inside the span (its end is bounded by
        :meth:`next_timer_tick`), so only the elapsed-time bookkeeping
        remains.
        """
        self._announced_ticks += elapsed

    def _release_periodic(self, tcb: Tcb, release_tick: Ticks) -> None:
        """Release a periodic process at *release_tick* (its release point)."""
        tcb.release_count += 1
        tcb.next_release = release_tick + tcb.model.period
        tcb.pending_result = None
        tcb.has_pending_result = True
        self.make_ready(tcb, reason="release point")
        if self.callbacks.on_release is not None:
            self.callbacks.on_release(tcb, release_tick)

    # -------------------------------------------------------------- #
    # scheduling and execution
    # -------------------------------------------------------------- #

    def choose_heir(self, now: Ticks) -> Optional[Tcb]:
        """Select ``heir_m(t)`` among :meth:`ready_set` — policy hook.

        May be invoked several times per tick (once per zero-time body
        step), so implementations must be side-effect free with respect to
        time accounting; use :meth:`on_tick_consumed` for per-tick state.
        """
        raise NotImplementedError

    def on_tick_consumed(self, tcb: Tcb) -> None:
        """Hook: *tcb* consumed one tick of CPU (quantum accounting).

        Subclasses overriding this must override :meth:`on_span_consumed`
        with the equivalent batch update, or batched execution diverges
        from per-tick execution.
        """

    def on_span_consumed(self, tcb: Tcb, ticks: Ticks) -> None:
        """Batch form of :meth:`on_tick_consumed`: *ticks* consumed at once."""

    def next_quantum_tick(self, now: Ticks) -> Optional[Ticks]:
        """First tick at which the policy could preempt the running process.

        The POS scheduling-policy horizon for the event-driven core.  The
        base policy hooks never preempt a computing process between
        preemption-relevant events, so there is no bound; quantum-driven
        policies (:class:`~repro.pos.generic.GenericPos`) override this
        with their round-robin expiry.
        """
        return None

    def dispatch(self, now: Ticks) -> Optional[Tcb]:
        """Apply the policy and effect the process-level context switch.

        Honours the preemption lock: while locked, the running process is
        kept if still schedulable.  Returns the (possibly unchanged) heir.
        """
        current = self._running
        if (self.preemption_locked and current is not None
                and current.is_schedulable):
            return current
        heir = self.choose_heir(now)
        if heir is current:
            return heir
        previous_name = current.name if current is not None else None
        if current is not None and current.state is ProcessState.RUNNING:
            # Preempted: back to ready, seniority preserved (eq. (14)).
            self.make_ready(current, reason="preempted", preserve_antiquity=True)
        if heir is not None:
            heir.set_state(ProcessState.RUNNING, reason="dispatched")
        self._running = heir
        if self.callbacks.on_dispatch is not None:
            self.callbacks.on_dispatch(now, previous_name,
                                       heir.name if heir else None)
        return heir

    def dispatch_fast(self, now: Ticks) -> Optional[Tcb]:
        """Memoized :meth:`dispatch` for the fast execution backend.

        When no scheduling-relevant state changed since the last dispatch
        (same generation), :meth:`dispatch` provably selects the same heir
        and performs no transition or callback, so the memo returns the
        running process directly.  The memo is never consulted or stored
        while the preemption lock is held: the lock makes the heir depend
        on the lock level, which has no generation of its own.

        Policies whose heir choice carries per-call state (round-robin
        rotation in :class:`~repro.pos.generic.GenericPos`) must override
        this back to plain :meth:`dispatch`.
        """
        if self._dispatch_generation == self._generation \
                and not self._preemption_lock:
            return self._running
        heir = self.dispatch(now)
        if not self._preemption_lock:
            self._dispatch_generation = self._generation
        return heir

    def execute_tick(self, now: Ticks) -> Optional[str]:
        """Run the partition's processes for one tick of window time.

        Returns the name of the process that consumed the tick, or ``None``
        if the partition idled (no schedulable process).
        """
        for _ in range(_MAX_ZERO_TIME_STEPS):
            heir = self.dispatch(now)
            if heir is None:
                return None
            if heir.compute_remaining > 0:
                heir.compute_remaining -= 1
                self.on_tick_consumed(heir)
                return heir.name
            self._advance_body(heir, now)
        raise SimulationError(
            f"partition {self.name!r}: livelock — more than "
            f"{_MAX_ZERO_TIME_STEPS} zero-time steps at tick {now}")

    def execute_tick_fast(self, now: Ticks) -> Optional[str]:
        """:meth:`execute_tick` through :meth:`dispatch_fast` (fast backend)."""
        for _ in range(_MAX_ZERO_TIME_STEPS):
            heir = self.dispatch_fast(now)
            if heir is None:
                return None
            if heir.compute_remaining > 0:
                heir.compute_remaining -= 1
                self.on_tick_consumed(heir)
                return heir.name
            self._advance_body(heir, now)
        raise SimulationError(
            f"partition {self.name!r}: livelock — more than "
            f"{_MAX_ZERO_TIME_STEPS} zero-time steps at tick {now}")

    def execute_span(self, ticks: Ticks) -> Optional[str]:
        """Charge *ticks* window ticks as one batch — the event-core form
        of *ticks* consecutive :meth:`execute_tick` calls over a uniform
        span.

        The caller guarantees uniformity: the running process (if any) has
        at least *ticks* of ``Compute`` budget left and no wake-up,
        release, deadline event, policy preemption or partition preemption
        point falls inside the span — so each per-tick dispatch would have
        returned the same heir and each tick would only have decremented
        its budget.  With no running process the ready set is empty and
        the partition idles in-window.  Returns the name of the process
        charged, or None.
        """
        running = self._running
        if running is None:
            return None
        running.compute_remaining -= ticks
        self.on_span_consumed(running, ticks)
        return running.name

    def _advance_body(self, tcb: Tcb, now: Ticks) -> None:
        """Drive *tcb*'s generator until it computes, blocks or completes."""
        if tcb.generator is None:
            raise SimulationError(
                f"process {self.name}/{tcb.name} is running with no body "
                f"(was START invoked?)")
        send_value = None
        if tcb.has_pending_result:
            send_value = tcb.pending_result
            tcb.pending_result = None
            tcb.has_pending_result = False
        if not tcb.body_started:
            # A just-started generator can only receive None; a result
            # delivered before the body's first yield (e.g. a sporadic
            # activation) has no consumer and is dropped.
            send_value = None
            tcb.body_started = True
        for _ in range(_MAX_ZERO_TIME_STEPS):
            # The resume log records every value fed to the generator so a
            # simulator snapshot can rebuild it later by replaying the
            # same send sequence into a fresh instance of the body.
            tcb.resume_log.append(send_value)
            try:
                effect = tcb.generator.send(send_value)
            except StopIteration:
                self._complete(tcb)
                return
            except Exception as exc:  # application fault containment
                self._fault(tcb, exc)
                return
            if self._cycle_probe is not None:
                self._cycle_probe(self.name, tcb.name, send_value, effect)
            send_value = None
            if isinstance(effect, Compute):
                tcb.compute_remaining = effect.ticks
                return
            if isinstance(effect, Call):
                try:
                    result = effect.invoke()
                except Exception as exc:
                    self._fault(tcb, exc)
                    return
                if tcb.state is ProcessState.RUNNING:
                    send_value = result
                    continue
                # The service blocked or stopped the caller; deliver the
                # result (often refined by the waker) at resume time.
                if not tcb.has_pending_result:
                    tcb.pending_result = result
                    tcb.has_pending_result = True
                return
            self._fault(tcb, SimulationError(
                f"process body yielded unknown effect {effect!r}"))
            return
        raise SimulationError(
            f"process {self.name}/{tcb.name}: body issued more than "
            f"{_MAX_ZERO_TIME_STEPS} service calls without computing")

    def _complete(self, tcb: Tcb) -> None:
        """Body returned: the process terminates into ``dormant``."""
        tcb.completed = True
        tcb.set_state(ProcessState.DORMANT, reason="completed")
        tcb.generator = None
        if self._running is tcb:
            self._running = None
        if self.callbacks.on_completion is not None:
            self.callbacks.on_completion(tcb)

    def _fault(self, tcb: Tcb, exc: BaseException) -> None:
        """Body raised: contain the fault and report it (Sect. 2.4)."""
        tcb.set_state(ProcessState.DORMANT, reason=f"fault: {exc}")
        tcb.generator = None
        if self._running is tcb:
            self._running = None
        if self.callbacks.on_fault is not None:
            self.callbacks.on_fault(tcb, exc)
        else:
            raise ProcessFaultError(
                f"unhandled fault in {self.name}/{tcb.name}: {exc}",
                partition=self.name, process=tcb.name, cause=exc)

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self, resource_ref: Callable[[object], Any]) -> dict:
        """Capture all POS scheduling state as pure data.

        *resource_ref* symbolically encodes the resource objects inside
        TCB wait conditions (see :meth:`Tcb.snapshot`).
        """
        return {
            "tcbs": {name: tcb.snapshot(resource_ref)
                     for name, tcb in self._tcbs.items()},
            "ready_sequence": self._ready_sequence,
            "running": self._running.name if self._running else None,
            "preemption_lock": self._preemption_lock,
            "announced_ticks": self._announced_ticks,
        }

    def restore(self, state: dict, *,
                resolve_resource: Callable[[Any], object],
                rebuild_body: Callable[[Tcb, List[Any]], None]) -> None:
        """Overlay a :meth:`snapshot` capture onto this POS.

        *rebuild_body* reconstructs a TCB's generator by re-instantiating
        its body and replaying the given resume log (supplied by the
        snapshot orchestrator, which owns the APEX context wiring); it runs
        before the TCB field overlay so the overlay always wins.
        """
        for name, tcb_state in state["tcbs"].items():
            tcb = self._tcbs.get(name)
            if tcb is None:
                tcb = self.add_process(tcb_state["model"])
            if tcb_state["has_generator"]:
                rebuild_body(tcb, list(tcb_state["resume_log"]))
            else:
                tcb.generator = None
            tcb.restore(tcb_state, resolve_resource)
        self._ready_sequence = state["ready_sequence"]
        running = state["running"]
        self._running = self._tcbs[running] if running is not None else None
        self._preemption_lock = state["preemption_lock"]
        self._announced_ticks = state["announced_ticks"]
        # Tcb.restore writes states directly (bypassing set_state), so the
        # memos must be invalidated explicitly.
        self._generation += 1

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #

    def _forward_state_change(self, tcb: Tcb, previous: ProcessState,
                              reason: str) -> None:
        self._generation += 1
        if self.callbacks.on_state_change is not None:
            self.callbacks.on_state_change(tcb, previous, reason)
