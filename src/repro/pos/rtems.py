"""RTEMS-like real-time partition operating system.

The AIR prototype runs RTEMS in every partition (Sect. 6); its process
scheduler is the preemptive priority-driven policy the paper formalizes in
eq. (14): the heir is the highest-priority schedulable process (lower
numerical value = greater priority, Sect. 3.3), with ties broken by
antiquity in the ready state (the *oldest* ready process wins).
"""

from __future__ import annotations

from typing import Optional

from ..core.model import Partition
from ..types import ProcessState, Ticks
from .base import PartitionOs
from .tcb import Tcb

__all__ = ["RtemsPos"]


class RtemsPos(PartitionOs):
    """Preemptive priority-based scheduler implementing eq. (14)."""

    kernel_name = "rtems"

    def choose_heir(self, now: Ticks) -> Optional[Tcb]:
        """``heir_m(t)`` — eq. (14).

        Selects, among ``Ready_m(t)``, the process minimizing
        ``(p'(t), antiquity)``: strictly higher priority wins; equal
        priorities go to the process that entered the ready state first
        (the paper's ``h < q`` index tie-break generalized to arrival
        order, which is how RTEMS FIFO-orders equal-priority tasks).

        Implemented as a single pass over the TCB table — this runs on
        every dispatch, and building the ready list plus a keyed ``min``
        dominated the dispatch cost.  The strict ``<`` on the
        (priority, antiquity) key keeps ``min``'s first-of-ties pick
        over the insertion-ordered table.
        """
        ready = ProcessState.READY
        running = ProcessState.RUNNING
        best: Optional[Tcb] = None
        best_priority = 0
        best_since = 0
        for tcb in self._tcbs.values():
            state = tcb.state
            if state is not ready and state is not running:
                continue
            priority = tcb.current_priority
            if (best is None or priority < best_priority
                    or (priority == best_priority
                        and tcb.ready_since < best_since)):
                best = tcb
                best_priority = priority
                best_since = tcb.ready_since
        return best
