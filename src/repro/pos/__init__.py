"""Partition Operating Systems and the AIR POS Adaptation Layer (Sect. 2.2)."""

from .effects import Call, Compute
from .tcb import BodyFactory, Tcb, WaitCondition, WaitReason
from .base import PartitionOs, PosCallbacks
from .rtems import RtemsPos
from .generic import GenericPos
from .pal import PosAdaptationLayer

__all__ = [
    "Call", "Compute", "BodyFactory", "Tcb", "WaitCondition", "WaitReason",
    "PartitionOs", "PosCallbacks", "RtemsPos", "GenericPos",
    "PosAdaptationLayer",
]
