"""Generic non-real-time partition operating system (Sect. 2.5).

AIR extends POS heterogeneity to generic systems such as embedded Linux,
which bring functions RTOSs lack (scripting interpreters, rich libraries)
at the price of no timeliness guarantees.  This POS models that guest:

* scheduling is a fair round-robin with a time quantum, *ignoring* process
  priorities — the partition offers no real-time guarantees internally
  (its model-level requirement is typically ``d = 0``, Sect. 3.1);
* the guest believes it owns the hardware clock; the
  :meth:`attempt_clock_takeover` method performs the privileged clock
  operations an unmodified kernel would execute at boot.  Under AIR these
  are paravirtualized: the PMK traps them (``ClockTamperingError``) so a
  non-real-time kernel "cannot undermine the overall time guarantees of
  the system by disabling or diverting system clock interrupts".
"""

from __future__ import annotations

from typing import List, Optional

from ..core.model import Partition
from ..exceptions import ClockTamperingError
from ..kernel.time import GuestClock
from ..types import Ticks
from .base import PartitionOs
from .tcb import Tcb

__all__ = ["GenericPos"]

#: Default round-robin quantum, in ticks.
DEFAULT_QUANTUM: Ticks = 5


class GenericPos(PartitionOs):
    """Round-robin, priority-blind scheduler modelling a non-RT guest."""

    kernel_name = "generic"
    has_quantum_horizon = True

    def __init__(self, partition: Partition,
                 quantum: Ticks = DEFAULT_QUANTUM) -> None:
        super().__init__(partition)
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        self._ticks_on_current: Ticks = 0
        self._guest_clock: Optional[GuestClock] = None
        self._takeover_attempts = 0

    # -------------------------------------------------------------- #
    # scheduling policy
    # -------------------------------------------------------------- #

    def choose_heir(self, now: Ticks) -> Optional[Tcb]:
        """Round-robin among schedulable processes, rotating each quantum.

        Time accounting lives in :meth:`on_tick_consumed` (the policy hook
        may run several times per tick); here we only *read* it.
        """
        ready = self.ready_set()
        if not ready:
            self._ticks_on_current = 0
            return None
        ready.sort(key=lambda tcb: tcb.name)  # stable deterministic ring
        current = self.running
        if current is not None and current.is_schedulable:
            if self._ticks_on_current < self.quantum:
                return current
            # Quantum exhausted: rotate past the current process.
            self._ticks_on_current = 0
            names = [tcb.name for tcb in ready]
            try:
                index = names.index(current.name)
            except ValueError:
                index = -1
            return ready[(index + 1) % len(ready)]
        self._ticks_on_current = 0
        return ready[0]

    def dispatch(self, now: Ticks) -> Optional[Tcb]:
        previous = self.running
        heir = super().dispatch(now)
        if heir is not previous:
            self._ticks_on_current = 0
        return heir

    def dispatch_fast(self, now: Ticks) -> Optional[Tcb]:
        """Round-robin dispatch cannot be memoized: :meth:`choose_heir`
        reads (and rotates on) the quantum counter, which advances without
        a state-generation bump — every call must run the real policy."""
        return self.dispatch(now)

    def on_tick_consumed(self, tcb: Tcb) -> None:
        """Charge the consumed tick against the running quantum."""
        self._ticks_on_current += 1

    def on_span_consumed(self, tcb: Tcb, ticks: Ticks) -> None:
        """Charge a batched span against the running quantum."""
        self._ticks_on_current += ticks

    def next_quantum_tick(self, now: Ticks) -> Optional[Ticks]:
        """First tick at which :meth:`choose_heir` would rotate the ring.

        With a process running, the round-robin check fires once the
        quantum is exhausted; ticks strictly before that keep the current
        process and only advance the counter (batched by
        :meth:`on_span_consumed`).  Under a preemption lock the counter
        can already exceed the quantum — the clamp then returns *now*,
        degrading that (rare) stretch to per-tick execution rather than
        risking a missed rotation at unlock.
        """
        if self.running is None:
            return None
        return now + max(self.quantum - self._ticks_on_current, 0)

    # -------------------------------------------------------------- #
    # snapshot / restore
    # -------------------------------------------------------------- #

    def snapshot(self, resource_ref) -> dict:
        state = super().snapshot(resource_ref)
        state["ticks_on_current"] = self._ticks_on_current
        state["takeover_attempts"] = self._takeover_attempts
        return state

    def restore(self, state: dict, **kwargs) -> None:
        super().restore(state, **kwargs)
        self._ticks_on_current = state["ticks_on_current"]
        self._takeover_attempts = state["takeover_attempts"]

    # -------------------------------------------------------------- #
    # paravirtualized clock surface (Sect. 2.5)
    # -------------------------------------------------------------- #

    def attach_guest_clock(self, clock: GuestClock) -> None:
        """Give the guest its (read-only) clock handle."""
        self._guest_clock = clock

    @property
    def takeover_attempts(self) -> int:
        """Number of trapped clock takeover attempts by this guest."""
        return self._takeover_attempts

    def attempt_clock_takeover(self) -> List[str]:
        """Execute the privileged clock operations a bare-metal kernel would.

        Every operation is trapped by the PMK paravirtualization layer;
        none takes effect.  Returns the list of trapped operation names so
        experiments can assert full coverage.
        """
        if self._guest_clock is None:
            raise RuntimeError(
                f"partition {self.name!r} has no guest clock attached")
        trapped: List[str] = []
        for operation in (self._guest_clock.disable_interrupts,
                          lambda: self._guest_clock.set_timer_frequency(1000),
                          lambda: self._guest_clock.divert_clock_vector(
                              lambda: None)):
            try:
                operation()
            except ClockTamperingError as exc:
                trapped.append(exc.operation)
                self._takeover_attempts += 1
        return trapped
