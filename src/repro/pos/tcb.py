"""Task control blocks: the runtime status of processes — eqs. (12)-(13).

A :class:`Tcb` joins a static :class:`~repro.core.model.ProcessModel`
(``tau_m,q`` — eq. (11)) with its runtime status ``S_m,q(t)`` (eq. (12)):
absolute deadline time ``D'(t)``, current priority ``p'(t)`` and state
``St(t)``.  It also carries the simulation-specific execution machinery
(the generator body, remaining compute budget, wait condition).

State transitions go through :meth:`Tcb.set_state` so every change can be
traced and the eq. (13) state machine is enforced in one place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional

from ..core.model import ProcessModel
from ..exceptions import SimulationError
from ..types import INFINITE_TIME, ProcessState, Ticks, is_infinite

__all__ = ["WaitReason", "WaitCondition", "Tcb", "ProcessBody", "BodyFactory"]

#: A process body: generator yielding :mod:`repro.pos.effects` objects.
ProcessBody = Generator[Any, Any, None]

#: Factory invoked at START to (re)create a process body.
BodyFactory = Callable[..., ProcessBody]


class WaitReason(enum.Enum):
    """Why a ``waiting`` process is blocked (the events listed under eq. (13))."""

    DELAY = "delay"                # TIMED_WAIT or delayed start
    PERIOD = "period"              # PERIODIC_WAIT until next release point
    SUSPENDED = "suspended"        # explicit SUSPEND, awaiting RESUME
    RESOURCE = "resource"          # semaphore/buffer/blackboard/event
    SPORADIC = "sporadic"          # sporadic process awaiting activation


@dataclass(slots=True)
class WaitCondition:
    """What will wake a waiting process.

    ``wake_at`` is the absolute tick of a timed wake-up (delay expiry,
    release point, or resource timeout); ``None`` means the wait is purely
    event-driven.  ``resource`` identifies the object being waited on, if
    any, so it can cancel the wait on signal.  ``timed_out`` is set by the
    POS when the wake was due to the timer, letting resource code
    distinguish timeout from satisfaction.
    """

    reason: WaitReason
    wake_at: Optional[Ticks] = None
    resource: Optional[object] = None
    timed_out: bool = False


@dataclass(slots=True)
class Tcb:
    """Runtime control block of one process.

    Attributes mirroring the formal model:

    * :attr:`state` — ``St_m,q(t)``, eq. (13);
    * :attr:`current_priority` — ``p'_m,q(t)``;
    * :attr:`deadline_time` — ``D'_m,q(t)`` (None when no deadline is
      pending, e.g. dormant or deadline-free processes).

    Simulation machinery:

    * :attr:`body_factory` recreates the generator on every START;
    * :attr:`compute_remaining` — ticks left on the current ``Compute``;
    * :attr:`pending_result` — value to send into the generator at resume;
    * :attr:`wait` — the active :class:`WaitCondition` when waiting;
    * :attr:`ready_since` — monotonic sequence number stamped on every
      entry to ``ready``; implements the eq. (14) antiquity tie-break.
    """

    model: ProcessModel
    partition: str
    body_factory: BodyFactory = None  # type: ignore[assignment]
    state: ProcessState = ProcessState.DORMANT
    current_priority: int = 0
    deadline_time: Optional[Ticks] = None
    generator: Optional[ProcessBody] = None
    compute_remaining: Ticks = 0
    pending_result: Any = None
    has_pending_result: bool = False
    wait: Optional[WaitCondition] = None
    ready_since: int = 0
    release_count: int = 0
    next_release: Optional[Ticks] = None
    activation_count: int = 0
    overload_rejections: int = 0
    body_started: bool = False
    started_at: Optional[Ticks] = None
    completed: bool = False
    on_state_change: Optional[Callable[["Tcb", ProcessState, str], None]] = None
    #: Every value sent into :attr:`generator` since the last
    #: :meth:`instantiate_body` — the replay script simulator snapshots use
    #: to reconstruct the (unpicklable) generator: re-instantiate the body
    #: and feed it the same send sequence, discarding the yielded effects.
    resume_log: List[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.current_priority = self.model.priority

    # -------------------------------------------------------------- #
    # identity / model accessors
    # -------------------------------------------------------------- #

    @property
    def name(self) -> str:
        """Process name (unique within its partition)."""
        return self.model.name

    @property
    def has_deadline(self) -> bool:
        """True if the process participates in deadline monitoring (eq. (24))."""
        return self.model.has_deadline

    @property
    def is_schedulable(self) -> bool:
        """Membership in ``Ready_m(t)`` — eq. (15)."""
        return self.state.is_schedulable

    # -------------------------------------------------------------- #
    # state machine
    # -------------------------------------------------------------- #

    # Keyed by the state's ``_value_`` string with tuple values: enum
    # members hash through a Python-level ``Enum.__hash__``, which showed
    # up in the tick-loop profile at two hashes per transition.  String
    # keys hash in C (and cache), and tuple membership tests by identity.
    _ALLOWED = {
        "dormant": (ProcessState.READY, ProcessState.WAITING),
        "ready": (ProcessState.RUNNING, ProcessState.DORMANT,
                  ProcessState.WAITING),
        "running": (ProcessState.READY, ProcessState.WAITING,
                    ProcessState.DORMANT),
        "waiting": (ProcessState.READY, ProcessState.DORMANT),
    }

    def set_state(self, new_state: ProcessState, *, reason: str = "",
                  ready_sequence: Optional[int] = None) -> None:
        """Transition to *new_state*, enforcing the eq. (13) state machine.

        ``ready_sequence`` must be supplied on every transition *into*
        ``ready`` — it stamps :attr:`ready_since` for the antiquity
        tie-break of eq. (14).
        """
        if new_state is self.state:
            return
        if new_state not in self._ALLOWED[self.state._value_]:
            raise SimulationError(
                f"process {self.partition}/{self.name}: illegal state "
                f"transition {self.state.value} -> {new_state.value} "
                f"({reason or 'no reason given'})")
        if new_state is ProcessState.READY:
            if ready_sequence is None:
                raise SimulationError(
                    f"process {self.partition}/{self.name}: transition to "
                    f"ready requires a ready_sequence stamp")
            self.ready_since = ready_sequence
        previous = self.state
        self.state = new_state
        if new_state is not ProcessState.WAITING:
            self.wait = None
        if self.on_state_change is not None:
            self.on_state_change(self, previous, reason)

    def block(self, condition: WaitCondition, *, reason: str = "") -> None:
        """Enter the ``waiting`` state under *condition*."""
        self.wait = condition
        self.set_state(ProcessState.WAITING, reason=reason)
        # set_state clears .wait only for non-waiting targets; re-assert.
        self.wait = condition

    # -------------------------------------------------------------- #
    # execution machinery
    # -------------------------------------------------------------- #

    def instantiate_body(self, *args: Any) -> None:
        """(Re)create the generator from the factory — done at START.

        Restarting from the entry address (a Sect. 5 recovery action) is
        exactly this: throw away the old generator, build a fresh one.
        """
        if self.body_factory is None:
            raise SimulationError(
                f"process {self.partition}/{self.name} has no body factory")
        self.generator = self.body_factory(*args)
        self.compute_remaining = 0
        self.pending_result = None
        self.has_pending_result = False
        self.body_started = False
        self.completed = False
        self.resume_log = []

    def reset_runtime(self) -> None:
        """Clear all runtime fields back to the dormant baseline."""
        self.state = ProcessState.DORMANT
        self.current_priority = self.model.priority
        self.deadline_time = None
        self.generator = None
        self.compute_remaining = 0
        self.pending_result = None
        self.has_pending_result = False
        self.body_started = False
        self.wait = None
        self.release_count = 0
        self.next_release = None
        self.activation_count = 0
        self.overload_rejections = 0
        self.started_at = None
        self.completed = False
        self.resume_log = []

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self, resource_ref: Callable[[object], Any]) -> dict:
        """Capture runtime state as pure data (no generator, no callbacks).

        The generator itself cannot be serialized; :attr:`resume_log`
        stands in for it (see :class:`SimulatorSnapshot`).  *resource_ref*
        encodes a live resource object (semaphore, buffer, queuing port…)
        as a symbolic reference the restoring side can resolve.
        """
        wait = None
        if self.wait is not None:
            wait = {
                "reason": self.wait.reason.value,
                "wake_at": self.wait.wake_at,
                "resource": (None if self.wait.resource is None
                             else resource_ref(self.wait.resource)),
                "timed_out": self.wait.timed_out,
            }
        return {
            "model": self.model,
            "state": self.state.value,
            "current_priority": self.current_priority,
            "deadline_time": self.deadline_time,
            "has_generator": self.generator is not None,
            "resume_log": list(self.resume_log),
            "compute_remaining": self.compute_remaining,
            "pending_result": self.pending_result,
            "has_pending_result": self.has_pending_result,
            "wait": wait,
            "ready_since": self.ready_since,
            "release_count": self.release_count,
            "next_release": self.next_release,
            "activation_count": self.activation_count,
            "overload_rejections": self.overload_rejections,
            "body_started": self.body_started,
            "started_at": self.started_at,
            "completed": self.completed,
        }

    def restore(self, state: dict,
                resolve_resource: Callable[[Any], object]) -> None:
        """Overlay a :meth:`snapshot` capture onto this TCB.

        The caller must already have reconstructed :attr:`generator` (via
        body replay) when ``state["has_generator"]`` is set; this method
        only restores the plain fields, bypassing the state machine (the
        captured state was legal when captured).
        """
        self.state = ProcessState(state["state"])
        self.current_priority = state["current_priority"]
        self.deadline_time = state["deadline_time"]
        self.resume_log = list(state["resume_log"])
        self.compute_remaining = state["compute_remaining"]
        self.pending_result = state["pending_result"]
        self.has_pending_result = state["has_pending_result"]
        wait = state["wait"]
        if wait is None:
            self.wait = None
        else:
            self.wait = WaitCondition(
                reason=WaitReason(wait["reason"]),
                wake_at=wait["wake_at"],
                resource=(None if wait["resource"] is None
                          else resolve_resource(wait["resource"])),
                timed_out=wait["timed_out"])
        self.ready_since = state["ready_since"]
        self.release_count = state["release_count"]
        self.next_release = state["next_release"]
        self.activation_count = state["activation_count"]
        self.overload_rejections = state["overload_rejections"]
        self.body_started = state["body_started"]
        self.started_at = state["started_at"]
        self.completed = state["completed"]

    def describe(self) -> str:
        """One-line human-readable status (used by VITRAL windows)."""
        deadline = ("-" if self.deadline_time is None
                    else str(self.deadline_time))
        return (f"{self.name:16s} {self.state.value:8s} "
                f"p'={self.current_priority:<3d} D'={deadline}")
