"""Fault models injectable into a running simulation (Sect. 6).

The paper's prototype demonstrates robustness by *injecting* faults ("we
have the possibility to inject a faulty process on P1") and observing the
containment machinery respond.  Each class here is one executable fault;
:class:`~repro.fault.injector.FaultInjector` schedules them at simulated
times.

All faults implement :meth:`Fault.apply`, returning a human-readable status
string (surfaced in VITRAL and injector logs).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from ..exceptions import ClockTamperingError, ConfigurationError, \
    SimulationError, SpatialViolationError
from ..kernel.simulator import Simulator
from ..pos.generic import GenericPos
from ..types import AccessKind, ErrorCode, PartitionMode, PrivilegeLevel

__all__ = [
    "Fault",
    "FAULT_KINDS",
    "register_fault",
    "StartProcessFault",
    "MemoryViolationFault",
    "ClockTamperFault",
    "PartitionCrashFault",
    "MessageFloodFault",
    "ProcessKillFault",
    "ScheduleSwitchFault",
    "SimulatedCrashFault",
    "fault_to_dict",
    "fault_from_dict",
]

#: kind label -> fault class, for campaign-spec reconstruction.  Populated
#: by :func:`register_fault`; every entry automatically gains dict
#: round-trip serialization coverage (``tests/fault/test_registry.py``),
#: so a new fault class registered here without serializable fields fails
#: CI rather than production.
FAULT_KINDS: Dict[str, type] = {}


def register_fault(cls: type) -> type:
    """Class decorator: enter *cls* into :data:`FAULT_KINDS` by name."""
    if cls.__name__ in FAULT_KINDS:
        raise ConfigurationError(
            f"fault kind already registered: {cls.__name__!r}")
    FAULT_KINDS[cls.__name__] = cls
    return cls


class Fault:
    """One injectable fault."""

    def apply(self, simulator: Simulator) -> str:
        """Inject into *simulator*; returns a status line."""
        raise NotImplementedError


@register_fault
@dataclass(frozen=True)
class StartProcessFault(Fault):
    """Activate a (faulty) dormant process — the Sect. 6 injection.

    The process itself embodies the fault (e.g. a WCET-overrunning body,
    :func:`repro.apps.base.overrunning_worker`)."""

    partition: str
    process: str

    def apply(self, simulator: Simulator) -> str:
        result = simulator.apex(self.partition).start(self.process)
        return (f"started {self.partition}/{self.process}: "
                f"{result.code.value}")


@register_fault
@dataclass(frozen=True)
class MemoryViolationFault(Fault):
    """Attempt a cross-boundary memory access from a partition's context.

    The simulated MMU must refuse it (Fig. 3); the refusal reaches Health
    Monitoring as a partition-level MEMORY_VIOLATION error.  ``address``
    defaults to another partition's first mapped byte, making the fault a
    genuine spatial-partitioning attack.
    """

    partition: str
    address: Optional[int] = None
    access: AccessKind = AccessKind.WRITE

    def apply(self, simulator: Simulator) -> str:
        pmk = simulator.pmk
        address = self.address
        if address is None:
            victim = next(name for name in pmk.layout.partitions
                          if name != self.partition)
            address = pmk.layout.map_of(victim).descriptors[0].base
        try:
            pmk.bus.write(address, b"\xde\xad",
                          level=PrivilegeLevel.APPLICATION,
                          partition=self.partition)
        except SpatialViolationError:
            return (f"{self.partition}: {self.access.value}@{address:#x} "
                    f"trapped by MMU")
        return (f"{self.partition}: {self.access.value}@{address:#x} "
                f"WAS NOT TRAPPED (containment breach!)")


@register_fault
@dataclass(frozen=True)
class ClockTamperFault(Fault):
    """A generic (non-real-time) POS tries to take over the system clock.

    Exercises the Sect. 2.5 paravirtualization: every privileged clock
    operation must be trapped.  Requires the partition to run a
    :class:`~repro.pos.generic.GenericPos`.
    """

    partition: str

    def apply(self, simulator: Simulator) -> str:
        pos = simulator.runtime(self.partition).pos
        if not isinstance(pos, GenericPos):
            return (f"{self.partition}: not a generic POS; "
                    f"clock tampering not applicable")
        trapped = pos.attempt_clock_takeover()
        for operation in trapped:
            simulator.pmk.health_monitor.report(
                ErrorCode.CLOCK_TAMPERING,
                partition=self.partition, detail=operation)
        return f"{self.partition}: {len(trapped)} clock operations trapped"


@register_fault
@dataclass(frozen=True)
class PartitionCrashFault(Fault):
    """Force a partition restart (models an unrecoverable internal crash)."""

    partition: str
    cold: bool = False

    def apply(self, simulator: Simulator) -> str:
        mode = (PartitionMode.COLD_START if self.cold
                else PartitionMode.WARM_START)
        simulator.runtime(self.partition).request_restart(mode)
        return f"{self.partition}: crashed, restarting {mode.value}"


@register_fault
@dataclass(frozen=True)
class MessageFloodFault(Fault):
    """Babbling idiot: flood a queuing channel from its source port.

    The destination's bounded queue must absorb up to its depth and count
    overflows — the flood must not propagate outside the channel.
    """

    partition: str
    port: str
    count: int = 64
    payload: bytes = b"BABBLE"

    def apply(self, simulator: Simulator) -> str:
        apex = simulator.apex(self.partition)
        sent = 0
        for _ in range(self.count):
            if apex.queuing_port(self.port).send(self.payload).is_ok:
                sent += 1
        return f"{self.partition}:{self.port}: flooded {sent}/{self.count}"


@register_fault
@dataclass(frozen=True)
class ProcessKillFault(Fault):
    """Stop a process outright (models a detected unrecoverable fault)."""

    partition: str
    process: str

    def apply(self, simulator: Simulator) -> str:
        result = simulator.apex(self.partition).stop(self.process)
        return (f"stopped {self.partition}/{self.process}: "
                f"{result.code.value}")


@register_fault
@dataclass(frozen=True)
class ScheduleSwitchFault(Fault):
    """Request a module schedule switch (SET_MODULE_SCHEDULE, Sect. 4.2).

    Not a fault in the containment sense — it is the campaign engine's
    picklable stand-in for the paper demo's TTC telecommand, so scenario
    specs can express "switch to chi2 at tick T" through the same
    time-ordered injection queue as real faults.  The switch takes effect
    at the next MTF boundary, exactly like the APEX service.
    """

    schedule_id: str
    requested_by: str = "campaign"

    def apply(self, simulator: Simulator) -> str:
        simulator.pmk.set_module_schedule(self.schedule_id,
                                          requested_by=self.requested_by)
        return f"schedule switch to {self.schedule_id!r} requested"


@register_fault
@dataclass(frozen=True)
class SimulatedCrashFault(Fault):
    """Deterministically crash the *scenario* (not a partition).

    Raises from ``apply``, which the campaign runner records as a
    ``crashed`` result — the reproducible failure the flight-recorder
    pipeline and its CI smoke job exercise.  Unlike every other fault it
    models a defect in the simulation harness itself (an escaped
    exception), so nothing about containment is asserted; the injection
    never reaches the log (``inject_now`` appends only after ``apply``
    returns), and the raised message carries the detail instead.
    """

    detail: str = "simulated crash"

    def apply(self, simulator: Simulator) -> str:
        raise SimulationError(
            f"SimulatedCrashFault at tick {simulator.now}: {self.detail}")


# ------------------------------------------------------------------ #
# (de)serialization — campaign specs carry faults as JSON documents
# ------------------------------------------------------------------ #

def fault_to_dict(fault: Fault) -> Dict[str, Any]:
    """Encode *fault* as a JSON-compatible dict (``kind`` + fields)."""
    record: Dict[str, Any] = {"kind": type(fault).__name__}
    for field in dataclasses.fields(fault):
        value = getattr(fault, field.name)
        if isinstance(value, bytes):
            value = value.decode("latin-1")
        elif isinstance(value, AccessKind):
            value = value.value
        record[field.name] = value
    return record


def fault_from_dict(data: Mapping[str, Any]) -> Fault:
    """Rebuild a fault from :func:`fault_to_dict` output."""
    fields = dict(data)
    kind = fields.pop("kind", None)
    if kind not in FAULT_KINDS:
        raise ConfigurationError(f"unknown fault kind {kind!r}")
    fault_type = FAULT_KINDS[kind]
    names = {field.name for field in dataclasses.fields(fault_type)}
    unknown = set(fields) - names
    if unknown:
        raise ConfigurationError(
            f"{kind}: unknown fault fields {sorted(unknown)}")
    if "payload" in fields and isinstance(fields["payload"], str):
        fields["payload"] = fields["payload"].encode("latin-1")
    if "access" in fields and isinstance(fields["access"], str):
        fields["access"] = AccessKind(fields["access"])
    # JSON has no tuples: list-valued fields (cross-node fault node
    # groups) come back as lists and are coerced to the tuple the frozen
    # dataclasses declare.
    for name, value in fields.items():
        if isinstance(value, list):
            fields[name] = tuple(value)
    return fault_type(**fields)
