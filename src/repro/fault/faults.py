"""Fault models injectable into a running simulation (Sect. 6).

The paper's prototype demonstrates robustness by *injecting* faults ("we
have the possibility to inject a faulty process on P1") and observing the
containment machinery respond.  Each class here is one executable fault;
:class:`~repro.fault.injector.FaultInjector` schedules them at simulated
times.

All faults implement :meth:`Fault.apply`, returning a human-readable status
string (surfaced in VITRAL and injector logs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import ClockTamperingError, SpatialViolationError
from ..kernel.simulator import Simulator
from ..pos.generic import GenericPos
from ..types import AccessKind, ErrorCode, PartitionMode, PrivilegeLevel

__all__ = [
    "Fault",
    "StartProcessFault",
    "MemoryViolationFault",
    "ClockTamperFault",
    "PartitionCrashFault",
    "MessageFloodFault",
    "ProcessKillFault",
]


class Fault:
    """One injectable fault."""

    def apply(self, simulator: Simulator) -> str:
        """Inject into *simulator*; returns a status line."""
        raise NotImplementedError


@dataclass(frozen=True)
class StartProcessFault(Fault):
    """Activate a (faulty) dormant process — the Sect. 6 injection.

    The process itself embodies the fault (e.g. a WCET-overrunning body,
    :func:`repro.apps.base.overrunning_worker`)."""

    partition: str
    process: str

    def apply(self, simulator: Simulator) -> str:
        result = simulator.apex(self.partition).start(self.process)
        return (f"started {self.partition}/{self.process}: "
                f"{result.code.value}")


@dataclass(frozen=True)
class MemoryViolationFault(Fault):
    """Attempt a cross-boundary memory access from a partition's context.

    The simulated MMU must refuse it (Fig. 3); the refusal reaches Health
    Monitoring as a partition-level MEMORY_VIOLATION error.  ``address``
    defaults to another partition's first mapped byte, making the fault a
    genuine spatial-partitioning attack.
    """

    partition: str
    address: Optional[int] = None
    access: AccessKind = AccessKind.WRITE

    def apply(self, simulator: Simulator) -> str:
        pmk = simulator.pmk
        address = self.address
        if address is None:
            victim = next(name for name in pmk.layout.partitions
                          if name != self.partition)
            address = pmk.layout.map_of(victim).descriptors[0].base
        try:
            pmk.bus.write(address, b"\xde\xad",
                          level=PrivilegeLevel.APPLICATION,
                          partition=self.partition)
        except SpatialViolationError:
            return (f"{self.partition}: {self.access.value}@{address:#x} "
                    f"trapped by MMU")
        return (f"{self.partition}: {self.access.value}@{address:#x} "
                f"WAS NOT TRAPPED (containment breach!)")


@dataclass(frozen=True)
class ClockTamperFault(Fault):
    """A generic (non-real-time) POS tries to take over the system clock.

    Exercises the Sect. 2.5 paravirtualization: every privileged clock
    operation must be trapped.  Requires the partition to run a
    :class:`~repro.pos.generic.GenericPos`.
    """

    partition: str

    def apply(self, simulator: Simulator) -> str:
        pos = simulator.runtime(self.partition).pos
        if not isinstance(pos, GenericPos):
            return (f"{self.partition}: not a generic POS; "
                    f"clock tampering not applicable")
        trapped = pos.attempt_clock_takeover()
        for operation in trapped:
            simulator.pmk.health_monitor.report(
                ErrorCode.CLOCK_TAMPERING,
                partition=self.partition, detail=operation)
        return f"{self.partition}: {len(trapped)} clock operations trapped"


@dataclass(frozen=True)
class PartitionCrashFault(Fault):
    """Force a partition restart (models an unrecoverable internal crash)."""

    partition: str
    cold: bool = False

    def apply(self, simulator: Simulator) -> str:
        mode = (PartitionMode.COLD_START if self.cold
                else PartitionMode.WARM_START)
        simulator.runtime(self.partition).request_restart(mode)
        return f"{self.partition}: crashed, restarting {mode.value}"


@dataclass(frozen=True)
class MessageFloodFault(Fault):
    """Babbling idiot: flood a queuing channel from its source port.

    The destination's bounded queue must absorb up to its depth and count
    overflows — the flood must not propagate outside the channel.
    """

    partition: str
    port: str
    count: int = 64
    payload: bytes = b"BABBLE"

    def apply(self, simulator: Simulator) -> str:
        apex = simulator.apex(self.partition)
        sent = 0
        for _ in range(self.count):
            if apex.queuing_port(self.port).send(self.payload).is_ok:
                sent += 1
        return f"{self.partition}:{self.port}: flooded {sent}/{self.count}"


@dataclass(frozen=True)
class ProcessKillFault(Fault):
    """Stop a process outright (models a detected unrecoverable fault)."""

    partition: str
    process: str

    def apply(self, simulator: Simulator) -> str:
        result = simulator.apex(self.partition).stop(self.process)
        return (f"stopped {self.partition}/{self.process}: "
                f"{result.code.value}")
