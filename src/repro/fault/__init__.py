"""Fault injection framework (Sect. 6's demonstration methodology)."""

from .faults import (
    ClockTamperFault,
    Fault,
    MemoryViolationFault,
    MessageFloodFault,
    PartitionCrashFault,
    ProcessKillFault,
    ScheduleSwitchFault,
    StartProcessFault,
    fault_from_dict,
    fault_to_dict,
)
from .injector import FaultInjector, InjectionRecord

__all__ = [
    "ClockTamperFault", "Fault", "MemoryViolationFault", "MessageFloodFault",
    "PartitionCrashFault", "ProcessKillFault", "ScheduleSwitchFault",
    "StartProcessFault", "fault_from_dict", "fault_to_dict",
    "FaultInjector", "InjectionRecord",
]
