"""Fault injection framework (Sect. 6's demonstration methodology)."""

from .faults import (
    ClockTamperFault,
    Fault,
    MemoryViolationFault,
    MessageFloodFault,
    PartitionCrashFault,
    ProcessKillFault,
    StartProcessFault,
)
from .injector import FaultInjector, InjectionRecord

__all__ = [
    "ClockTamperFault", "Fault", "MemoryViolationFault", "MessageFloodFault",
    "PartitionCrashFault", "ProcessKillFault", "StartProcessFault",
    "FaultInjector", "InjectionRecord",
]
