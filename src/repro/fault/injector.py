"""Fault injection scheduling over a running simulation (Sect. 6).

A :class:`FaultInjector` wraps a :class:`~repro.kernel.simulator.Simulator`
and applies :class:`~repro.fault.faults.Fault` instances at scheduled
simulated times.  Faults are applied *before* the tick they are scheduled
at executes, so a fault "at tick T" is visible to the clock ISR of tick T.

The injector keeps a log of ``(tick, fault, status)`` records so
experiments can correlate injections with trace events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..exceptions import SimulationError
from ..kernel.simulator import Simulator
from ..types import Ticks
from .faults import Fault, fault_from_dict, fault_to_dict

__all__ = ["InjectionRecord", "FaultInjector"]


@dataclass(frozen=True)
class InjectionRecord:
    """One applied fault and its reported status."""

    tick: Ticks
    fault: Fault
    status: str


class FaultInjector:
    """Time-ordered fault application over a simulator."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self._pending: List[Tuple[Ticks, int, Fault]] = []
        self._sequence = 0
        self._log: List[InjectionRecord] = []

    def schedule(self, tick: Ticks, fault: Fault) -> None:
        """Apply *fault* just before simulated tick *tick* executes.

        Scheduling strictly in the past raises :class:`SimulationError`
        rather than silently never firing — a campaign spec with a stale
        injection tick must fail loudly, not drop the fault.  ``tick ==
        now`` is accepted: the fault fires before the current tick's ISR
        on the next ``run``/``run_fast`` call.
        """
        if tick < self.simulator.now:
            raise SimulationError(
                f"cannot schedule a fault in the past "
                f"(now={self.simulator.now}, requested={tick})")
        self._sequence += 1
        heapq.heappush(self._pending, (tick, self._sequence, fault))

    def inject_now(self, fault: Fault) -> InjectionRecord:
        """Apply *fault* immediately."""
        status = fault.apply(self.simulator)
        record = InjectionRecord(tick=self.simulator.now, fault=fault,
                                 status=status)
        self._log.append(record)
        return record

    @property
    def log(self) -> Tuple[InjectionRecord, ...]:
        """Every applied fault, in application order."""
        return tuple(self._log)

    @property
    def pending_count(self) -> int:
        """Faults scheduled but not yet applied."""
        return len(self._pending)

    def state_dict(self) -> Dict[str, Any]:
        """The applied-fault log as pure data (for snapshot transport).

        Lets a simulator checkpoint taken *after* faults were applied
        carry its injection history: a forked continuation seeds a fresh
        injector with this state and schedules only the not-yet-applied
        remainder of its timeline, so the final log is bit-identical to an
        uninterrupted run's.  Pending (scheduled but unapplied) faults are
        deliberately not captured — snapshots are taken at points where
        everything scheduled has fired; capturing with live pending faults
        would silently drop them, so it fails loudly instead.
        """
        if self._pending:
            raise SimulationError(
                f"cannot capture injector state with {len(self._pending)} "
                f"pending fault(s) — run past them or don't schedule them "
                f"before capture")
        return {"log": [(record.tick, fault_to_dict(record.fault),
                         record.status) for record in self._log]}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Overlay a captured applied-fault log (inverse of state_dict).

        Replaces the current log wholesale; faults are rebuilt from their
        dict forms, so the restored records are value-equal (same kind,
        fields, tick and status) to the captured ones.
        """
        self._log = [
            InjectionRecord(tick=tick, fault=fault_from_dict(dict(fields)),
                            status=status)
            for tick, fields, status in state["log"]]

    def run(self, ticks: Ticks) -> None:
        """Advance the simulation by *ticks*, applying due faults."""
        target = self.simulator.now + ticks
        while self.simulator.now < target and not self.simulator.stopped:
            self._apply_due()
            self.simulator.step()
        self._apply_due()  # faults scheduled exactly at the target tick

    def run_fast(self, ticks: Ticks, *,
                 should_abort: Optional[Callable[[], bool]] = None,
                 check_interval: Ticks = 50_000) -> bool:
        """Advance by *ticks* on the event-driven core, applying due faults.

        Equivalent to :meth:`run` (bit-identical trace and injection log)
        but drives the simulator with
        :meth:`~repro.kernel.simulator.Simulator.run_fast` between
        injection points: each inner span is bounded by the earliest
        pending fault tick, so a fault scheduled at tick T is still
        applied before T's clock ISR.

        *should_abort*, polled at least every *check_interval* simulated
        ticks, lets a caller impose a wall-clock budget (the campaign
        runner's per-scenario timeout).  Returns False if aborted,
        True on normal completion.
        """
        simulator = self.simulator
        target = simulator.now + ticks
        while simulator.now < target and not simulator.stopped:
            if should_abort is not None and should_abort():
                return False
            self._apply_due()
            bound = min(target, simulator.now + check_interval)
            if self._pending:
                bound = min(bound, self._pending[0][0])
            simulator.run_fast(bound - simulator.now)
        self._apply_due()  # faults scheduled exactly at the target tick
        return True

    def run_mtf(self, count: int = 1) -> None:
        """Advance by *count* MTFs of the current schedule, applying faults."""
        for _ in range(count):
            scheduler = self.simulator.pmk.scheduler
            mtf = scheduler.current.mtf
            offset = ((self.simulator.now - scheduler.last_schedule_switch)
                      % mtf)
            self.run(mtf - offset if offset else mtf)

    def _apply_due(self) -> None:
        now = self.simulator.now
        while self._pending and self._pending[0][0] <= now:
            _, _, fault = heapq.heappop(self._pending)
            self.inject_now(fault)
