"""The AIR Health Monitor (Sect. 2.4).

"The AIR Health Monitor is responsible for handling hardware and software
errors (like deadlines missed, memory protection violations, or hardware
failures).  The aim is to isolate errors within its domain of occurrence:
process level errors will cause an application error handler to be invoked,
while partition level errors trigger a response action defined at system
integration time.  Errors detected at system level may lead the entire
system to be stopped or reinitialized."

The monitor classifies every reported error through the
:class:`~repro.hm.tables.HmTables`, consults the partition's application
error handler for process-level errors (Sect. 5: "the actual action to be
performed is defined by the application programmer, through an appropriate
error handler"), and applies the resulting recovery action through an
:class:`ActionExecutor` implemented by the PMK/runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..kernel.trace import HealthMonitorEvent, Trace
from ..types import ErrorCode, ErrorLevel, RecoveryAction, Ticks
from .tables import HmTables

__all__ = ["ErrorReport", "HandledError", "ActionExecutor", "HealthMonitor"]


@dataclass(frozen=True)
class ErrorReport:
    """One error as reported to the Health Monitor."""

    tick: Ticks
    code: ErrorCode
    partition: Optional[str] = None
    process: Optional[str] = None
    detail: str = ""


@dataclass(frozen=True)
class HandledError:
    """The monitor's disposition of one reported error."""

    report: ErrorReport
    level: ErrorLevel
    action: RecoveryAction
    handled_by_application: bool


#: Application error handler: returns the action to take, or None to defer
#: to the partition HM table (Sect. 5's "appropriate error handler").
ApplicationHandler = Callable[[ErrorReport], Optional[RecoveryAction]]


class ActionExecutor:
    """Recovery actions the Health Monitor can order.

    Implemented by the PMK/partition runtime; the monitor itself never
    touches partition state directly (separation of concerns: detection
    and classification here, actuation in the kernel).
    """

    def stop_process(self, partition: str, process: str) -> None:
        """Stop the faulty process (dormant, no restart)."""
        raise NotImplementedError

    def restart_process(self, partition: str, process: str) -> None:
        """Stop then reinitialize the process from its entry address."""
        raise NotImplementedError

    def restart_partition(self, partition: str) -> None:
        """Restart the partition (warm start)."""
        raise NotImplementedError

    def stop_partition(self, partition: str) -> None:
        """Shut the partition down (idle mode)."""
        raise NotImplementedError

    def module_stop(self) -> None:
        """Stop the entire module."""
        raise NotImplementedError

    def module_restart(self) -> None:
        """Reinitialize the entire module."""
        raise NotImplementedError


class HealthMonitor:
    """Classification and dispatch of error reports."""

    def __init__(self, tables: HmTables, executor: ActionExecutor, *,
                 clock: Callable[[], Ticks],
                 trace: Optional[Trace] = None) -> None:
        self.tables = tables
        self.executor = executor
        self._clock = clock
        self._trace = trace
        self._log: List[HandledError] = []
        self._handlers: Dict[str, ApplicationHandler] = {}
        self._occurrences: Dict[Tuple[str, ErrorCode], int] = {}
        #: Optional FDIR supervisor (see :mod:`repro.fdir.supervisor`):
        #: consulted after table classification, before execution, so
        #: escalation history can override the static table action.
        self.supervisor = None

    # -------------------------------------------------------------- #
    # configuration
    # -------------------------------------------------------------- #

    def install_handler(self, partition: str,
                        handler: ApplicationHandler) -> None:
        """Install *partition*'s application error handler
        (APEX CREATE_ERROR_HANDLER)."""
        self._handlers[partition] = handler

    def remove_handler(self, partition: str) -> None:
        """Remove the partition's error handler, if any."""
        self._handlers.pop(partition, None)

    # -------------------------------------------------------------- #
    # reporting entry point
    # -------------------------------------------------------------- #

    def report(self, code: ErrorCode, *, partition: Optional[str] = None,
               process: Optional[str] = None, detail: str = "") -> HandledError:
        """Classify and handle one error; returns the disposition."""
        report = ErrorReport(tick=self._clock(), code=code,
                             partition=partition, process=process,
                             detail=detail)
        level = self.tables.level_of(code)
        if level is ErrorLevel.PROCESS and (partition is None or process is None):
            # A process-level code without process identity escalates.
            level = (ErrorLevel.PARTITION if partition is not None
                     else ErrorLevel.MODULE)

        action, by_application = self._decide(report, level)
        action = self._apply_log_threshold(report, action)
        if self.supervisor is not None:
            action = self.supervisor.supervise(report, action)
        self._execute(report, level, action)

        handled = HandledError(report=report, level=level, action=action,
                               handled_by_application=by_application)
        self._log.append(handled)
        if self._trace is not None:
            self._trace.record(HealthMonitorEvent(
                tick=report.tick, level=level.value, code=code.value,
                partition=partition, process=process, action=action.value,
                detail=detail))
        return handled

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def log(self) -> Tuple[HandledError, ...]:
        """Every handled error, in order."""
        return tuple(self._log)

    def errors_for(self, partition: str) -> Tuple[HandledError, ...]:
        """Handled errors attributed to *partition*."""
        return tuple(h for h in self._log if h.report.partition == partition)

    def occurrence_count(self, partition: str, code: ErrorCode) -> int:
        """How many times *code* was reported against *partition*."""
        return self._occurrences.get((partition, code), 0)

    def occurrences(self) -> Tuple[Tuple[str, ErrorCode, int], ...]:
        """Every (partition, code, count) triple, sorted (telemetry hook)."""
        return tuple(sorted(
            ((partition, code, count)
             for (partition, code), count in self._occurrences.items()),
            key=lambda item: (item[0], item[1].value)))

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture the disposition log and occurrence counters as pure data.

        Application handlers are structural (reinstalled by the partition
        initialization replay via CREATE_ERROR_HANDLER) and the supervisor
        hook is wired at construction; neither is captured here.
        """
        return {"log": list(self._log),
                "occurrences": dict(self._occurrences)}

    def restore(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture onto this monitor."""
        self._log = list(state["log"])
        self._occurrences = dict(state["occurrences"])

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #

    def _decide(self, report: ErrorReport,
                level: ErrorLevel) -> Tuple[RecoveryAction, bool]:
        if level is ErrorLevel.MODULE:
            return self.tables.module_action(report.code), False
        assert report.partition is not None
        if level is ErrorLevel.PROCESS:
            handler = self._handlers.get(report.partition)
            if handler is not None:
                try:
                    chosen = handler(report)
                except Exception as exc:  # noqa: BLE001 — fault containment
                    # A faulty error handler is itself an application
                    # error; it must not take the whole module down.
                    # Record the failure and fall back to the table.
                    if self._trace is not None:
                        self._trace.record(HealthMonitorEvent(
                            tick=report.tick,
                            level=ErrorLevel.PROCESS.value,
                            code=ErrorCode.APPLICATION_ERROR.value,
                            partition=report.partition,
                            process=report.process,
                            action=RecoveryAction.IGNORE.value,
                            detail=f"error handler raised "
                                   f"{type(exc).__name__}: {exc}"))
                    chosen = None
                if chosen is not None:
                    return chosen, True
        return self.tables.partition_action(report.partition,
                                            report.code), False

    def _apply_log_threshold(self, report: ErrorReport,
                             action: RecoveryAction) -> RecoveryAction:
        """LOG_THEN_ACT: ignore until the threshold, then the fallback."""
        key = (report.partition or "<module>", report.code)
        self._occurrences[key] = self._occurrences.get(key, 0) + 1
        if action is not RecoveryAction.LOG_THEN_ACT:
            return action
        if self._occurrences[key] <= self.tables.log_threshold:
            return RecoveryAction.IGNORE
        return self.tables.log_fallback_action

    def _execute(self, report: ErrorReport, level: ErrorLevel,
                 action: RecoveryAction) -> None:
        partition = report.partition
        process = report.process
        if action is RecoveryAction.IGNORE:
            return
        if action is RecoveryAction.STOP_PROCESS and partition and process:
            self.executor.stop_process(partition, process)
        elif (action is RecoveryAction.STOP_AND_RESTART_PROCESS
              and partition and process):
            self.executor.restart_process(partition, process)
        elif (action is RecoveryAction.STOP_PROCESS_PARTITION_RECOVERS
              and partition and process):
            self.executor.stop_process(partition, process)
        elif action is RecoveryAction.RESTART_PARTITION and partition:
            self.executor.restart_partition(partition)
        elif action is RecoveryAction.STOP_PARTITION and partition:
            self.executor.stop_partition(partition)
        elif action is RecoveryAction.PARK_PARTITION and partition:
            # Storm-throttled: stop the partition; the FDIR supervisor
            # suppresses every later action against it, so it stays down.
            self.executor.stop_partition(partition)
        elif action is RecoveryAction.MODULE_RESTART:
            self.executor.module_restart()
        elif action is RecoveryAction.MODULE_STOP:
            self.executor.module_stop()
