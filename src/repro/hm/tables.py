"""Health Monitoring tables (Sect. 2.4, 5).

ARINC 653 routes every detected error through integration-time tables that
decide *at which level* the error is handled and *what* is done about it:

* the **system table** classifies each error code into a level — process,
  partition or module;
* the **partition tables** give, per partition, the recovery action for
  errors handled at partition level (and the fallback for process-level
  errors when the application installed no error handler);
* the **module table** gives the action for module-level errors.

The defaults below follow the paper's discussion: deadline misses are
process-level errors (Sect. 5); memory violations are partition-level
(spatial partitioning faults are confined to their domain of occurrence);
hardware faults and clock tampering escalate to module/partition level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..exceptions import ConfigurationError
from ..types import ErrorCode, ErrorLevel, RecoveryAction

__all__ = ["HmTables", "DEFAULT_LEVELS", "DEFAULT_PARTITION_ACTIONS",
           "DEFAULT_MODULE_ACTIONS"]

#: Default system-table classification of each error code.
DEFAULT_LEVELS: Mapping[ErrorCode, ErrorLevel] = {
    ErrorCode.DEADLINE_MISSED: ErrorLevel.PROCESS,
    ErrorCode.APPLICATION_ERROR: ErrorLevel.PROCESS,
    ErrorCode.NUMERIC_ERROR: ErrorLevel.PROCESS,
    ErrorCode.ILLEGAL_REQUEST: ErrorLevel.PROCESS,
    ErrorCode.STACK_OVERFLOW: ErrorLevel.PROCESS,
    ErrorCode.MEMORY_VIOLATION: ErrorLevel.PARTITION,
    ErrorCode.CLOCK_TAMPERING: ErrorLevel.PARTITION,
    ErrorCode.WATCHDOG_EXPIRED: ErrorLevel.PARTITION,
    ErrorCode.CONFIG_ERROR: ErrorLevel.MODULE,
    ErrorCode.HARDWARE_FAULT: ErrorLevel.MODULE,
    ErrorCode.POWER_FAILURE: ErrorLevel.MODULE,
}

#: Default partition-level recovery actions.
DEFAULT_PARTITION_ACTIONS: Mapping[ErrorCode, RecoveryAction] = {
    ErrorCode.DEADLINE_MISSED: RecoveryAction.IGNORE,
    ErrorCode.APPLICATION_ERROR: RecoveryAction.STOP_PROCESS,
    ErrorCode.NUMERIC_ERROR: RecoveryAction.STOP_PROCESS,
    ErrorCode.ILLEGAL_REQUEST: RecoveryAction.STOP_PROCESS,
    ErrorCode.STACK_OVERFLOW: RecoveryAction.STOP_PROCESS,
    ErrorCode.MEMORY_VIOLATION: RecoveryAction.RESTART_PARTITION,
    ErrorCode.CLOCK_TAMPERING: RecoveryAction.IGNORE,
    ErrorCode.WATCHDOG_EXPIRED: RecoveryAction.RESTART_PARTITION,
    ErrorCode.CONFIG_ERROR: RecoveryAction.STOP_PARTITION,
    ErrorCode.HARDWARE_FAULT: RecoveryAction.STOP_PARTITION,
    ErrorCode.POWER_FAILURE: RecoveryAction.STOP_PARTITION,
}

#: Default module-level recovery actions (Sect. 2.4: stop or reinitialize).
DEFAULT_MODULE_ACTIONS: Mapping[ErrorCode, RecoveryAction] = {
    ErrorCode.CONFIG_ERROR: RecoveryAction.MODULE_STOP,
    ErrorCode.HARDWARE_FAULT: RecoveryAction.MODULE_RESTART,
    ErrorCode.POWER_FAILURE: RecoveryAction.MODULE_STOP,
}


@dataclass
class HmTables:
    """The three-level HM routing table set, with per-partition overrides.

    Parameters
    ----------
    levels:
        Overrides of :data:`DEFAULT_LEVELS`.
    partition_actions:
        Per-partition overrides: ``{partition: {code: action}}``.  Actions
        for partitions absent from the mapping fall back to
        :data:`DEFAULT_PARTITION_ACTIONS`.
    module_actions:
        Overrides of :data:`DEFAULT_MODULE_ACTIONS`.
    log_threshold:
        For :attr:`~repro.types.RecoveryAction.LOG_THEN_ACT`: how many
        occurrences are logged before the fallback action fires
        ("logging the error a certain number of times before acting upon
        it" — Sect. 5).
    log_fallback_action:
        The action taken once the threshold is exceeded.
    """

    levels: Dict[ErrorCode, ErrorLevel] = field(default_factory=dict)
    partition_actions: Dict[str, Dict[ErrorCode, RecoveryAction]] = field(
        default_factory=dict)
    module_actions: Dict[ErrorCode, RecoveryAction] = field(default_factory=dict)
    log_threshold: int = 3
    log_fallback_action: RecoveryAction = RecoveryAction.STOP_PROCESS

    def __post_init__(self) -> None:
        if self.log_threshold < 1:
            raise ConfigurationError(
                f"log_threshold must be >= 1, got {self.log_threshold}")

    def level_of(self, code: ErrorCode) -> ErrorLevel:
        """System-table classification of *code*."""
        if code in self.levels:
            return self.levels[code]
        return DEFAULT_LEVELS.get(code, ErrorLevel.PARTITION)

    def partition_action(self, partition: str,
                         code: ErrorCode) -> RecoveryAction:
        """Recovery action for *code* in *partition* (with defaults)."""
        overrides = self.partition_actions.get(partition, {})
        if code in overrides:
            return overrides[code]
        return DEFAULT_PARTITION_ACTIONS.get(code, RecoveryAction.STOP_PARTITION)

    def module_action(self, code: ErrorCode) -> RecoveryAction:
        """Recovery action for a module-level *code* (with defaults)."""
        if code in self.module_actions:
            return self.module_actions[code]
        return DEFAULT_MODULE_ACTIONS.get(code, RecoveryAction.MODULE_STOP)
