"""AIR Health Monitoring (Sect. 2.4)."""

from .tables import (
    DEFAULT_LEVELS,
    DEFAULT_MODULE_ACTIONS,
    DEFAULT_PARTITION_ACTIONS,
    HmTables,
)
from .monitor import (
    ActionExecutor,
    ErrorReport,
    HandledError,
    HealthMonitor,
)

__all__ = [
    "DEFAULT_LEVELS", "DEFAULT_MODULE_ACTIONS", "DEFAULT_PARTITION_ACTIONS",
    "HmTables", "ActionExecutor", "ErrorReport", "HandledError",
    "HealthMonitor",
]
