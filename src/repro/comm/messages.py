"""Interpartition channel configuration and message envelopes (Sect. 2.1).

A *channel* joins one source port to one or more destination ports, in one
of the two ARINC 653 transfer modes:

* **sampling** — the destination keeps only the most recent message; reads
  report *validity* (message age vs. the port's refresh period);
* **queuing** — messages are buffered FIFO up to a configured depth.

Ports are location-agnostic for applications (Sect. 2.1): whether the
partitions share the processing platform (memory-to-memory copy) or are
physically separated (transmission through a communication infrastructure)
is a property of the channel, not of the API.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..exceptions import ConfigurationError
from ..types import Ticks

__all__ = ["TransferMode", "PortSpec", "ChannelConfig", "Envelope"]


class TransferMode(enum.Enum):
    """ARINC 653 interpartition transfer modes."""

    SAMPLING = "sampling"
    QUEUING = "queuing"


@dataclass(frozen=True)
class PortSpec:
    """One end of a channel: a named port of a partition."""

    partition: str
    port: str

    def __post_init__(self) -> None:
        if not self.partition or not self.port:
            raise ConfigurationError(
                f"port spec needs partition and port names, got "
                f"{self.partition!r}/{self.port!r}")

    def __str__(self) -> str:
        return f"{self.partition}:{self.port}"


@dataclass(frozen=True)
class ChannelConfig:
    """Integration-time description of one interpartition channel.

    Attributes
    ----------
    name:
        Channel identifier (unique module-wide).
    mode:
        Sampling or queuing.
    source / destinations:
        The producing port and the consuming port(s).  Sampling channels
        may fan out to several destinations; queuing channels have exactly
        one.
    max_message_size:
        Upper bound on payload bytes, enforced at both ends.
    max_nb_messages:
        Queue depth (queuing mode only).
    refresh_period:
        Validity horizon for sampling reads (sampling mode only);
        0 disables the validity check.
    latency:
        Transport delay in ticks: 0 models partitions on the same
        processing platform (memory-to-memory copy); a positive value
        models physically separated partitions reached through the
        simulated communication infrastructure.
    """

    name: str
    mode: TransferMode
    source: PortSpec
    destinations: Tuple[PortSpec, ...]
    max_message_size: int = 256
    max_nb_messages: int = 16
    refresh_period: Ticks = 0
    latency: Ticks = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("channel needs a name")
        if not self.destinations:
            raise ConfigurationError(
                f"channel {self.name!r} needs at least one destination")
        if self.mode is TransferMode.QUEUING and len(self.destinations) != 1:
            raise ConfigurationError(
                f"queuing channel {self.name!r} must have exactly one "
                f"destination, got {len(self.destinations)}")
        if self.max_message_size <= 0:
            raise ConfigurationError(
                f"channel {self.name!r}: max_message_size must be positive")
        if self.max_nb_messages <= 0:
            raise ConfigurationError(
                f"channel {self.name!r}: max_nb_messages must be positive")
        if self.latency < 0:
            raise ConfigurationError(
                f"channel {self.name!r}: latency must be >= 0")
        for destination in self.destinations:
            if destination == self.source:
                raise ConfigurationError(
                    f"channel {self.name!r}: source and destination coincide "
                    f"({self.source})")

    @property
    def is_local(self) -> bool:
        """True for same-platform channels (zero-latency memory copy)."""
        return self.latency == 0


@dataclass(frozen=True)
class Envelope:
    """A message in flight: payload plus transport metadata."""

    payload: bytes
    sent_at: Ticks
    channel: str
    sequence: int
