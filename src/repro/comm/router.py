"""PMK-level interpartition message router (Sect. 2.1).

The AIR PMK "provides low-level mechanisms for interpartition communication"
and "deals with these specifics" of local vs. remote partitions.  The
:class:`CommRouter` is that mechanism: APEX ports hand it payloads; it
resolves the configured channel and either

* performs the *memory-to-memory copy* for partitions on the same platform
  (immediate delivery; payloads are copied, never shared, so spatial
  separation is preserved — the destination can never alias source
  memory), or
* hands the envelope to the channel's simulated
  :class:`~repro.comm.network.NetworkLink` for physically separated
  partitions, pumping deliveries as simulated time advances.

Destination handlers are registered by the APEX port objects; the router
does not know (or care) what a port does with a delivered envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..exceptions import ConfigurationError
from ..kernel.trace import PortMessageReceived, PortMessageSent, Trace
from ..types import Ticks
from .messages import ChannelConfig, Envelope, PortSpec, TransferMode
from .network import NetworkLink, ReliableLink

__all__ = ["CommRouter"]

#: Destination-side delivery handler installed by an APEX port.
DeliveryHandler = Callable[[Envelope], None]

#: Transport types a channel may use.
Link = Union[NetworkLink, ReliableLink]


@dataclass
class _Channel:
    """Runtime state of one configured channel."""

    config: ChannelConfig
    link: Optional[Link]
    sequence: int = 0


class CommRouter:
    """Module-wide channel registry and message mover."""

    def __init__(self, *, clock: Callable[[], Ticks],
                 trace: Optional[Trace] = None) -> None:
        self._clock = clock
        self._trace = trace
        self._channels: Dict[str, _Channel] = {}
        self._linked: List[_Channel] = []
        self._by_source: Dict[PortSpec, _Channel] = {}
        self._handlers: Dict[PortSpec, DeliveryHandler] = {}
        # Channel storage exists from configuration time (it belongs to the
        # PMK, not to the destination partition): messages arriving before
        # the destination port object is created are held here and drained
        # at registration.
        self._undelivered: Dict[PortSpec, List[Envelope]] = {}
        #: Horizon-memo state generation: bumped whenever a link's
        #: in-flight heap can change (remote transmit, pump, restore).
        self._horizon_generation = 0
        self._horizon_memo: Tuple[int, Optional[Ticks]] = (-1, None)

    # -------------------------------------------------------------- #
    # configuration
    # -------------------------------------------------------------- #

    def add_channel(self, config: ChannelConfig,
                    link: Optional[Link] = None) -> None:
        """Register *config*; remote channels (latency > 0) need a *link*.

        If a remote channel is added without a link, a loss-free
        :class:`NetworkLink` with the channel's latency is created.
        """
        if config.name in self._channels:
            raise ConfigurationError(f"duplicate channel {config.name!r}")
        if config.source in self._by_source:
            raise ConfigurationError(
                f"port {config.source} already feeds channel "
                f"{self._by_source[config.source].config.name!r}")
        if not config.is_local and link is None:
            link = NetworkLink(latency=config.latency)
        channel = _Channel(config=config, link=link if not config.is_local else None)
        self._channels[config.name] = channel
        if channel.link is not None:
            self._linked.append(channel)
        self._by_source[config.source] = channel

    def register_destination(self, spec: PortSpec,
                             handler: DeliveryHandler) -> None:
        """Install the delivery handler for destination port *spec*."""
        if spec in self._handlers:
            raise ConfigurationError(
                f"destination port {spec} already registered")
        owning = [c for c in self._channels.values()
                  if spec in c.config.destinations]
        if not owning:
            raise ConfigurationError(
                f"destination port {spec} appears in no configured channel")
        self._handlers[spec] = handler
        for envelope in self._undelivered.pop(spec, []):
            self._deliver(spec, envelope)

    def channel_for_source(self, spec: PortSpec) -> ChannelConfig:
        """The channel fed by source port *spec*."""
        try:
            return self._by_source[spec].config
        except KeyError:
            raise ConfigurationError(
                f"source port {spec} appears in no configured channel"
            ) from None

    def channel(self, name: str) -> ChannelConfig:
        """Channel configuration by name."""
        try:
            return self._channels[name].config
        except KeyError:
            raise ConfigurationError(f"no channel named {name!r}") from None

    @property
    def channel_names(self) -> Tuple[str, ...]:
        """All configured channel names."""
        return tuple(self._channels)

    # -------------------------------------------------------------- #
    # data path
    # -------------------------------------------------------------- #

    def send(self, source: PortSpec, payload: bytes) -> Envelope:
        """Move *payload* from *source* toward every configured destination.

        Local destinations receive immediately (memory-to-memory copy);
        remote ones go through the channel's link.  Returns the envelope
        (telemetry for callers).
        """
        channel = self._by_source.get(source)
        if channel is None:
            raise ConfigurationError(
                f"source port {source} appears in no configured channel")
        config = channel.config
        if len(payload) > config.max_message_size:
            raise ConfigurationError(
                f"channel {config.name!r}: payload of {len(payload)} bytes "
                f"exceeds max_message_size {config.max_message_size}")
        now = self._clock()
        channel.sequence += 1
        envelope = Envelope(payload=bytes(payload), sent_at=now,
                            channel=config.name, sequence=channel.sequence)
        if self._trace is not None:
            self._trace.record(PortMessageSent(
                tick=now, partition=source.partition, port=source.port,
                size=len(payload)))
        for destination in config.destinations:
            if config.is_local:
                self._deliver(destination, envelope)
            else:
                assert channel.link is not None
                channel.link.transmit(
                    envelope, now,
                    lambda env, dest=destination: self._deliver(dest, env),
                    tag=destination)
        if not config.is_local:
            self._horizon_generation += 1
        return envelope

    @property
    def in_flight(self) -> int:
        """Messages currently traversing any remote link."""
        return sum(channel.link.in_flight
                   for channel in self._channels.values()
                   if channel.link is not None)

    def next_delivery_tick(self) -> Optional[Ticks]:
        """Earliest arrival tick across all remote links, or None.

        The router's ``next_event_tick`` horizon: :meth:`pump` is a no-op
        at every tick strictly before the returned one, so the
        event-driven core may batch across in-flight messages instead of
        degrading to tick-by-tick execution the moment one is airborne.

        The result depends only on the in-flight heaps, which change only
        under :meth:`send` (remote transmit), :meth:`pump` and
        :meth:`restore` — all of which bump the generation counter — so it
        is memoized per generation.
        """
        generation = self._horizon_generation
        memo_generation, memo_tick = self._horizon_memo
        if memo_generation == generation:
            return memo_tick
        earliest: Optional[Ticks] = None
        for channel in self._linked:
            arrival = channel.link.next_delivery_tick
            if arrival is not None and (earliest is None or arrival < earliest):
                earliest = arrival
        self._horizon_memo = (generation, earliest)
        return earliest

    def pump(self, now: Ticks) -> int:
        """Advance all remote links to *now*; returns deliveries performed."""
        delivered = 0
        for channel in self._linked:
            delivered += channel.link.pump(now)
        if delivered:
            self._horizon_generation += 1
        return delivered

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture channel sequences, link state and held messages.

        Channel configurations and destination handlers are structural
        (rebuilt from the system configuration and port re-registration);
        only the data path's mutable state is captured.
        """
        return {
            "channels": {
                name: {"sequence": channel.sequence,
                       "link": (channel.link.snapshot()
                                if channel.link is not None else None)}
                for name, channel in self._channels.items()},
            "undelivered": {spec: list(envelopes)
                            for spec, envelopes
                            in self._undelivered.items()},
        }

    def restore(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture onto configured channels."""
        for name, channel_state in state["channels"].items():
            channel = self._channels[name]
            channel.sequence = channel_state["sequence"]
            if channel_state["link"] is not None:
                assert channel.link is not None
                channel.link.restore(
                    channel_state["link"],
                    lambda dest: lambda env: self._deliver(dest, env))
        self._undelivered = {spec: list(envelopes)
                             for spec, envelopes
                             in state["undelivered"].items()}
        self._horizon_generation += 1

    def _deliver(self, destination: PortSpec, envelope: Envelope) -> None:
        handler = self._handlers.get(destination)
        if handler is None:
            # Destination port object not yet created: hold the message in
            # the channel's PMK-side storage, bounded by the configured
            # queue depth (oldest dropped on overflow).
            held = self._undelivered.setdefault(destination, [])
            held.append(envelope)
            config = self._channels[envelope.channel].config
            while len(held) > config.max_nb_messages:
                del held[0]
            return
        now = self._clock()
        if self._trace is not None:
            self._trace.record(PortMessageReceived(
                tick=now, partition=destination.partition,
                port=destination.port, size=len(envelope.payload),
                latency=now - envelope.sent_at))
        handler(envelope)
