"""Interpartition communication substrate (Sect. 2.1)."""

from .messages import ChannelConfig, Envelope, PortSpec, TransferMode
from .network import LINK_STAT_KEYS, LinkStats, NetworkLink, ReliableLink
from .router import CommRouter

__all__ = [
    "ChannelConfig", "Envelope", "PortSpec", "TransferMode", "LinkStats",
    "LINK_STAT_KEYS", "NetworkLink", "ReliableLink", "CommRouter",
]
