"""Simulated communication infrastructure for physically separated partitions.

For partitions not sharing a processing platform, interpartition
communication "implies data transmission through a communication
infrastructure" (Sect. 2.1).  The paper's AIR PMK is "obliged to message
delivery guarantees" over that infrastructure; this module provides the
simulated transport the reproduction uses: an in-order link with
configurable latency and an optional deterministic loss model, plus the
retransmission wrapper that restores the delivery guarantee over a lossy
link.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..kernel.rng import SeededRng
from ..types import Ticks
from .messages import Envelope

__all__ = ["LINK_STAT_KEYS", "LinkStats", "NetworkLink", "ReliableLink"]

#: Delivery callback: (deliver_at_tick, envelope).
DeliverFn = Callable[[Envelope], None]

#: Authoritative stat names, in emission order.  Telemetry topic governance
#: (``node/<id>/link/<peer>/<stat>``) enumerates exactly these values, so a
#: counter added here without a registry update fails the topic audit.
LINK_STAT_KEYS: Tuple[str, ...] = (
    "sent", "delivered", "dropped", "duplicated", "retransmissions")


@dataclass
class LinkStats:
    """Counters exposed for experiments."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    retransmissions: int = 0

    def as_dict(self) -> dict:
        """Counters keyed by :data:`LINK_STAT_KEYS`, in order."""
        return {key: getattr(self, key) for key in LINK_STAT_KEYS}


class NetworkLink:
    """In-order link with fixed latency and optional probabilistic loss.

    Messages are enqueued with :meth:`transmit` and surface through the
    ``deliver`` callback when :meth:`pump` reaches their arrival tick.
    Loss and duplication are decided at transmit time with a seeded RNG so
    runs are reproducible.
    """

    def __init__(self, *, latency: Ticks, loss_probability: float = 0.0,
                 duplicate_probability: float = 0.0,
                 rng: Optional[SeededRng] = None) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability}")
        if not 0.0 <= duplicate_probability < 1.0:
            raise ValueError(f"duplicate_probability must be in [0, 1), "
                             f"got {duplicate_probability}")
        self.latency = latency
        self.loss_probability = loss_probability
        self.duplicate_probability = duplicate_probability
        self._rng = rng if rng is not None else SeededRng(0)
        self._in_flight: List[Tuple[Ticks, int, Envelope, DeliverFn, object]] = []
        self._sequence = 0
        self.stats = LinkStats()

    def transmit(self, envelope: Envelope, now: Ticks,
                 deliver: DeliverFn, *, tag: object = None,
                 delay: Ticks = 0) -> bool:
        """Send *envelope*; returns False if the link dropped it.

        *tag* is an optional pure-data identifier of the destination
        (snapshot support: the ``deliver`` closure itself cannot be
        captured, so checkpoints record the tag and the restore side
        rebuilds an equivalent closure from it).  *delay* adds extra
        latency to this transmission only (retransmission backoff).
        """
        self.stats.sent += 1
        if self.loss_probability and self._rng.chance(self.loss_probability):
            self.stats.dropped += 1
            return False
        arrival = now + self.latency + delay
        self._sequence += 1
        heapq.heappush(self._in_flight,
                       (arrival, self._sequence, envelope, deliver, tag))
        if (self.duplicate_probability
                and self._rng.chance(self.duplicate_probability)):
            # A duplicated frame: same payload, one tick behind the
            # original, so receiver-side dedup is genuinely exercised.
            self.stats.duplicated += 1
            self._sequence += 1
            heapq.heappush(self._in_flight,
                           (arrival + 1, self._sequence, envelope, deliver,
                            tag))
        return True

    def pump(self, now: Ticks) -> int:
        """Deliver every message whose arrival tick has been reached.

        Returns the number of deliveries performed.
        """
        delivered = 0
        while self._in_flight and self._in_flight[0][0] <= now:
            _, _, envelope, deliver, _ = heapq.heappop(self._in_flight)
            deliver(envelope)
            self.stats.delivered += 1
            delivered += 1
        return delivered

    @property
    def in_flight(self) -> int:
        """Messages currently traversing the link."""
        return len(self._in_flight)

    @property
    def next_delivery_tick(self) -> Optional[Ticks]:
        """Arrival tick of the earliest in-flight message, or None.

        The event-driven core uses this as the link's ``next_event_tick``
        horizon: no delivery can happen strictly before it, so ticks up to
        (excluding) it need no pump.
        """
        return self._in_flight[0][0] if self._in_flight else None

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture in-flight messages (closures encoded as their tags),
        the loss rng stream and the counters as pure data."""
        return {
            "in_flight": [(arrival, seq, envelope, tag)
                          for arrival, seq, envelope, _, tag
                          in sorted(self._in_flight)],
            "sequence": self._sequence,
            "rng": self._rng.state_dict(),
            "stats": self.stats.as_dict(),
        }

    def restore(self, state: dict,
                make_deliver: Callable[[object], DeliverFn]) -> None:
        """Overlay a :meth:`snapshot` capture.

        *make_deliver* maps a transmit-time tag back to a live delivery
        closure (the router supplies one resolving destination port specs).
        """
        self._in_flight = [(arrival, seq, envelope, make_deliver(tag), tag)
                           for arrival, seq, envelope, tag
                           in state["in_flight"]]
        heapq.heapify(self._in_flight)
        self._sequence = state["sequence"]
        self._rng.load_state_dict(state["rng"])
        self.stats = LinkStats(**state["stats"])


class ReliableLink:
    """Delivery-guaranteeing wrapper: retransmit until the link accepts.

    The PMK is "obliged to message delivery guarantees" (Sect. 2.1); over a
    lossy transport that means retransmission.  The wrapper retries a
    transmit-time drop (up to ``max_retries`` per message), modelling a
    link-layer ARQ.  With ``backoff=(lo, hi)`` every retry adds a delay
    drawn from the wrapper's **own** RNG stream — forked from the supplied
    parent, never shared with the link's loss stream, so enabling backoff
    cannot perturb which frames the underlying link drops.
    """

    def __init__(self, link: NetworkLink, *, max_retries: int = 16,
                 backoff: Tuple[Ticks, Ticks] = (0, 0),
                 rng: Optional[SeededRng] = None) -> None:
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        lo, hi = backoff
        if lo < 0 or hi < lo:
            raise ValueError(f"backoff must be (lo, hi) with 0 <= lo <= hi, "
                             f"got {backoff!r}")
        self.link = link
        self.max_retries = max_retries
        self.backoff = (lo, hi)
        parent = rng if rng is not None else SeededRng(0)
        self._rng = parent.fork("reliable-backoff")

    @property
    def stats(self) -> LinkStats:
        """Counters of the wrapped link (retransmissions included)."""
        return self.link.stats

    def transmit(self, envelope: Envelope, now: Ticks,
                 deliver: DeliverFn, *, tag: object = None,
                 delay: Ticks = 0) -> bool:
        """Send with retransmission; returns False only on retry exhaustion."""
        lo, hi = self.backoff
        for attempt in range(self.max_retries):
            if self.link.transmit(envelope, now, deliver, tag=tag,
                                  delay=delay):
                return True
            self.link.stats.retransmissions += 1
            if hi:
                delay += self._rng.randint(lo, hi)
        return False

    def pump(self, now: Ticks) -> int:
        """Forward to the wrapped link."""
        return self.link.pump(now)

    @property
    def in_flight(self) -> int:
        """Messages currently traversing the wrapped link."""
        return self.link.in_flight

    @property
    def next_delivery_tick(self) -> Optional[Ticks]:
        """Arrival tick of the earliest in-flight message, or None."""
        return self.link.next_delivery_tick

    def snapshot(self) -> dict:
        """Capture the wrapped link plus the backoff rng stream."""
        return {"link": self.link.snapshot(),
                "backoff_rng": self._rng.state_dict()}

    def restore(self, state: dict,
                make_deliver: Callable[[object], DeliverFn]) -> None:
        """Overlay a :meth:`snapshot` capture (either format).

        Accepts both the wrapper format and a bare
        :meth:`NetworkLink.snapshot` dict (pre-backoff checkpoints).
        """
        if "link" in state:
            self.link.restore(state["link"], make_deliver)
            self._rng.load_state_dict(state["backoff_rng"])
        else:
            self.link.restore(state, make_deliver)
