"""Exception hierarchy for the AIR reproduction library.

All library-raised exceptions derive from :class:`AirError`, so callers can
catch one type to handle any library failure.  Subsystems raise the most
specific subclass that applies; exception messages always name the offending
entity (partition, process, schedule, address) to ease integration debugging,
in the spirit of the paper's emphasis on verifiable integration (Sect. 3).
"""

from __future__ import annotations


class AirError(Exception):
    """Base class for all errors raised by the AIR reproduction library."""


class ConfigurationError(AirError):
    """Invalid integration-time configuration (malformed, inconsistent)."""


class ValidationError(ConfigurationError):
    """A system model failed offline verification (eqs. (20)-(23))."""


class SchedulingError(AirError):
    """Runtime partition or process scheduling invariant violation."""


class UnknownScheduleError(SchedulingError):
    """A schedule switch named a partition scheduling table that does not exist."""


class UnknownPartitionError(AirError):
    """An operation referenced a partition absent from the system."""


class UnknownProcessError(AirError):
    """An operation referenced a process absent from its partition."""


class ApexError(AirError):
    """An APEX service invocation failed in a way that maps to no return code."""


class AuthorizationError(ApexError):
    """A partition invoked a service reserved for authorized/system partitions."""


class SpatialViolationError(AirError):
    """A memory access crossed a partition's addressing-space boundary.

    Raised by the simulated MMU when an access fails the descriptor check;
    normally intercepted by the PMK and routed to Health Monitoring rather
    than propagated to application code.
    """

    def __init__(self, message: str, *, partition: str, address: int,
                 access: str) -> None:
        super().__init__(message)
        self.partition = partition
        self.address = address
        self.access = access


class ClockTamperingError(AirError):
    """A guest OS attempted to disable or divert the system clock (Sect. 2.5)."""

    def __init__(self, message: str, *, partition: str, operation: str) -> None:
        super().__init__(message)
        self.partition = partition
        self.operation = operation


class HealthMonitorError(AirError):
    """The Health Monitor could not classify or handle an error event."""


class SimulationError(AirError):
    """The simulator reached an inconsistent state (library bug or misuse)."""


class ProcessFaultError(AirError):
    """An application process body raised an unhandled exception."""

    def __init__(self, message: str, *, partition: str, process: str,
                 cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.partition = partition
        self.process = process
        self.cause = cause
