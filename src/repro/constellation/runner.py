"""Constellation scenario execution: one unit of campaign work.

:func:`run_constellation_scenario` is to a
:class:`~repro.constellation.scenarios.ConstellationScenario` what
:func:`repro.campaign.runner.run_scenario` is to a single-node scenario:
build the fleet, schedule its cross-node and per-node faults, run the
lockstep loop to the horizon (absorbing crashes and wall-clock
timeouts), audit with *both* oracles — the per-node TSP invariants over
every node's trace and the cross-node invariants over the fabric's
observation log — and compact everything into one
:class:`~repro.campaign.results.ScenarioResult`.  The result's
``trace_digest`` is the constellation's *combined* digest (node traces +
fabric events + protocol record), so campaign digests inherit
byte-identity across worker counts and backends from the lockstep
loop's determinism.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from ..campaign.artifacts import ScenarioArtifacts
from ..campaign.results import (
    STATUS_CRASHED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ScenarioResult,
)
from ..fdir.oracle import InvariantViolation, check_trace
from ..kernel.trace import (
    DeadlineMissed,
    HealthMonitorEvent,
    MemoryFault,
    ScheduleSwitched,
)
from ..obs.derived import compact_metrics
from .constellation import Constellation
from .oracle import check_constellation
from .scenarios import ConstellationScenario

__all__ = ["run_constellation_scenario"]


def _failing_node(violations: Sequence[InvariantViolation],
                  constellation: Constellation) -> Optional[int]:
    """The node to stamp on the crash bundle: first named by a violation
    (``node<i>`` or a per-node trace audit), else the first crashed one."""
    for violation in violations:
        where = violation.partition or ""
        if where.startswith("node") and where[4:].isdigit():
            return int(where[4:])
    for event in constellation.protocol_events:
        if event.get("event") == "node-crashed":
            return event["node"]
    return None


def _record_failure(scenario: ConstellationScenario, *, status: str,
                    error: str, violations: Sequence = (),
                    constellation: Optional[Constellation] = None,
                    publisher=None,
                    artifacts: Optional[ScenarioArtifacts] = None) -> None:
    """Failure-path observability (best effort, never masks the error)."""
    path = None
    if artifacts is not None and artifacts.flight_recorder_dir is not None:
        from ..obs.telemetry.recorder import (
            flight_record,
            save_flight_record,
        )

        node_id = None
        simulator = None
        injector = None
        backlog = None
        if constellation is not None:
            node_id = _failing_node(violations, constellation)
            node = constellation.nodes[node_id or 0]
            simulator = node.simulator
            injector = node.injector
            backlog = dict(
                {f"node{n.index}": constellation.comm.backlog(n.index)
                 for n in constellation.nodes},
                total=constellation.comm.backlog())
        bundle = flight_record(
            scenario, status=status, error=error, violations=violations,
            simulator=simulator, injector=injector,
            node_id=node_id, internode_backlog=backlog,
            last_n=artifacts.flight_record_last_n)
        path = save_flight_record(bundle, artifacts.flight_recorder_dir)
    if publisher is not None:
        publisher.scenario_crashed(scenario.scenario_id, error)
        if path is not None:
            publisher.flight_record(scenario.scenario_id, path)


def _merge_injections(constellation: Constellation
                      ) -> Tuple[Tuple[int, str, str], ...]:
    """Cross-node and per-node injections in one deterministic order.

    Per-node fault kinds are prefixed ``n<i>:`` so the campaign digest
    (which folds injections in) distinguishes *which* node took a fault.
    """
    merged: List[Tuple[int, str, str]] = []
    for tick, fault, status in constellation.fault_log:
        merged.append((tick, type(fault).__name__, status))
    for node in constellation.nodes:
        for record in node.injector.log:
            merged.append((record.tick,
                           f"n{node.index}:{type(record.fault).__name__}",
                           record.status))
    merged.sort(key=lambda entry: (entry[0], entry[1]))
    return tuple(merged)


def _sum_metrics(constellation: Constellation
                 ) -> Tuple[Tuple[str, int], ...]:
    """Fleet-wide compact metrics: per-name sum (max for ``*_max``).

    Stays inside the governed
    :data:`~repro.obs.derived.COMPACT_METRIC_NAMES` key set, so the
    campaign metric topics need no constellation-specific variants.
    """
    folded = {}
    for node in constellation.nodes:
        for name, value in compact_metrics(node.simulator.trace):
            if name.endswith("_max"):
                folded[name] = max(folded.get(name, 0), value)
            else:
                folded[name] = folded.get(name, 0) + value
    return tuple(sorted(folded.items()))


def run_constellation_scenario(
        scenario: ConstellationScenario, *,
        timeout_s: Optional[float] = None,
        check_interval: int = 20_000,
        backend: str = "reference",
        publisher=None,
        artifacts: Optional[ScenarioArtifacts] = None) -> ScenarioResult:
    """Execute one constellation scenario to completion, failure or timeout.

    Mirrors :func:`repro.campaign.runner.run_scenario`'s contract: every
    exception degrades to a ``crashed`` result, a blown wall-clock budget
    to ``timeout``, and (unless ``oracle=False``) both the per-node TSP
    oracle and the cross-node oracle audit the finished run — any
    violation downgrades it to ``crashed`` with the details in ``error``.
    """
    start = time.perf_counter()
    if check_interval < 1:
        raise ValueError(
            f"check_interval must be >= 1, got {check_interval}")
    constellation = None
    if publisher is not None:
        publisher.scenario_started(scenario.scenario_id, scenario.ticks)
    try:
        constellation = Constellation(scenario.constellation,
                                      scenario.seed, backend=backend)
        for tick, fault in scenario.faults:
            constellation.schedule_fault(tick, fault)
        for node_index, tick, fault in scenario.node_faults:
            constellation.nodes[node_index].injector.schedule(tick, fault)
        should_abort = None
        if timeout_s is not None:
            deadline = start + timeout_s
            should_abort = lambda: time.perf_counter() > deadline
        if publisher is not None:
            inner_abort = should_abort
            live = constellation

            def should_abort() -> bool:
                publisher.scenario_progress(
                    scenario.scenario_id, live.now, scenario.ticks)
                return inner_abort() if inner_abort is not None else False
        completed = constellation.run(scenario.ticks,
                                      should_abort=should_abort,
                                      check_interval=check_interval)
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
        result = ScenarioResult(
            scenario_id=scenario.scenario_id,
            seed=scenario.seed,
            status=STATUS_CRASHED,
            error=error,
            wall_time_s=time.perf_counter() - start,
        )
        _record_failure(scenario, status=STATUS_CRASHED, error=error,
                        constellation=constellation, publisher=publisher,
                        artifacts=artifacts)
        if publisher is not None:
            publisher.scenario_finished(
                scenario.scenario_id, STATUS_CRASHED,
                result.wall_time_s, -1)
        return result
    status = STATUS_OK if completed else STATUS_TIMEOUT
    error = "" if completed else \
        f"exceeded {timeout_s}s wall-clock budget at tick " \
        f"{constellation.now}"
    violations: List[InvariantViolation] = []
    if completed and scenario.oracle:
        # Per-node TSP invariants first (each node must be as sound as a
        # single-node run), then the cross-node invariants.
        for node, config in zip(constellation.nodes,
                                constellation.system_configs):
            for violation in check_trace(node.simulator.trace, config):
                violations.append(InvariantViolation(
                    invariant=violation.invariant, tick=violation.tick,
                    detail=f"[node{node.index}] {violation.detail}",
                    partition=f"node{node.index}",
                    process=violation.process))
        violations.extend(check_constellation(
            constellation.comm.events, constellation.protocol_events,
            scenario.constellation, end_tick=constellation.now,
            final_backlog=constellation.comm.backlog()))
        if violations:
            status = STATUS_CRASHED
            error = (f"oracle: {len(violations)} invariant violation(s); "
                     + "; ".join(
                         f"{v.invariant}@{v.tick}: {v.detail}"
                         for v in violations[:3]))
    if status == STATUS_CRASHED:
        _record_failure(scenario, status=status, error=error,
                        violations=violations,
                        constellation=constellation, publisher=publisher,
                        artifacts=artifacts)
    traces = [node.simulator.trace for node in constellation.nodes]
    occupancy = []
    for node in constellation.nodes:
        for partition, ticks in sorted(
                node.simulator.pmk.partition_ticks.items()):
            occupancy.append((f"n{node.index}/{partition}", ticks))
    node_comm = tuple(
        (f"n{node.index}",
         tuple(sorted(constellation.comm.node_stats(node.index).items())))
        for node in constellation.nodes)
    if publisher is not None:
        # Governed node/<id>/* stream: final roles, crash events and
        # per-directed-link fabric counters (timing channel — the
        # deterministic per-node record rides in node_comm instead).
        for event in constellation.protocol_events:
            if event.get("event") == "node-crashed":
                publisher.node_crashed(event["node"], event["tick"],
                                       event["role"])
        for node in constellation.nodes:
            publisher.node_role(node.index, node.role, node.epoch)
            for peer in range(scenario.constellation.nodes):
                if peer != node.index:
                    publisher.node_link_stats(
                        node.index, peer,
                        constellation.comm.link_stats(node.index, peer))
    result = ScenarioResult(
        scenario_id=scenario.scenario_id,
        seed=scenario.seed,
        status=status,
        ticks=constellation.now,
        deadline_misses=sum(t.count(DeadlineMissed) for t in traces),
        hm_events=sum(t.count(HealthMonitorEvent) for t in traces),
        schedule_switches=sum(t.count(ScheduleSwitched) for t in traces),
        memory_faults=sum(t.count(MemoryFault) for t in traces),
        faults_applied=(len(constellation.fault_log)
                        + sum(len(node.injector.log)
                              for node in constellation.nodes)),
        injections=_merge_injections(constellation),
        trace_events=sum(len(t) for t in traces),
        trace_digest=constellation.combined_digest(),
        occupancy=tuple(occupancy),
        metrics=_sum_metrics(constellation),
        error=error,
        node_comm=node_comm,
        wall_time_s=time.perf_counter() - start,
    )
    if publisher is not None:
        publisher.scenario_finished(scenario.scenario_id, status,
                                    result.wall_time_s, -1)
    return result
