"""Constellation configuration: N AIR nodes plus the inter-node fabric.

The paper's Sect. 2.1 allows partitions "not sharing the same processing
platform", with interpartition communication implying "data transmission
through a communication infrastructure".  A :class:`ConstellationConfig`
describes one such fleet: how many nodes, which per-node system (a
campaign config factory), the link fabric's latency/loss/duplication
model, and the leader/standby failover protocol's timing contract —
heartbeat period, heartbeat timeout (the FDIR watchdog window) and the
declared failover deadline the cross-node oracle enforces.

Everything is picklable and JSON-serializable, so constellation scenarios
cross the campaign worker-pool boundary exactly like single-node ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from ..apps.prototype import MTF
from ..exceptions import ConfigurationError
from ..types import Ticks

__all__ = ["ConstellationConfig", "DEFAULT_FAILOVER_DEADLINE"]

#: Default promotion bound: the standby promotes at its next MTF boundary
#: after detection, so one full MTF plus a sync-quantum of slack always
#: suffices on the nominal path.
DEFAULT_FAILOVER_DEADLINE: Ticks = MTF + 300


@dataclass(frozen=True)
class ConstellationConfig:
    """One deterministic multi-node constellation.

    *nodes* full AIR simulators run in lockstep; node ``0`` boots as the
    epoch-0 leader, the rest as standbys.  Links are a full mesh of
    directed :class:`~repro.comm.network.ReliableLink`-wrapped
    :class:`~repro.comm.network.NetworkLink` instances, each with its own
    forked rng stream.  ``heartbeat_timeout`` is the leader watchdog
    window (a :class:`~repro.fdir.watchdog.WatchdogService` per standby);
    ``failover_deadline`` is the declared detection-to-promotion bound
    the cross-node oracle checks.
    """

    nodes: int = 3
    factory: str = "prototype"
    factory_kwargs: Mapping[str, Any] = field(default_factory=dict)
    link_latency: Ticks = 40
    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    max_retries: int = 16
    backoff: Tuple[Ticks, Ticks] = (0, 0)
    heartbeat_period: Ticks = MTF // 4
    heartbeat_timeout: Ticks = MTF
    failover_deadline: Ticks = DEFAULT_FAILOVER_DEADLINE
    sync_quantum: Ticks = 200

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ConfigurationError(
                f"a constellation needs >= 2 nodes, got {self.nodes}")
        if self.link_latency < 0:
            raise ConfigurationError(
                f"link_latency must be >= 0, got {self.link_latency}")
        if self.heartbeat_period < 1:
            raise ConfigurationError(
                f"heartbeat_period must be >= 1, got "
                f"{self.heartbeat_period}")
        if self.heartbeat_timeout <= self.heartbeat_period + \
                self.link_latency:
            raise ConfigurationError(
                f"heartbeat_timeout ({self.heartbeat_timeout}) must exceed "
                f"heartbeat_period + link_latency "
                f"({self.heartbeat_period} + {self.link_latency}) or every "
                f"in-flight heartbeat trips the watchdog")
        if self.failover_deadline < 1:
            raise ConfigurationError(
                f"failover_deadline must be >= 1, got "
                f"{self.failover_deadline}")
        if self.sync_quantum < 1:
            raise ConfigurationError(
                f"sync_quantum must be >= 1, got {self.sync_quantum}")
        if isinstance(self.backoff, list):
            object.__setattr__(self, "backoff", tuple(self.backoff))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (inverse of :meth:`from_dict`)."""
        return {
            "nodes": self.nodes,
            "factory": self.factory,
            "factory_kwargs": dict(self.factory_kwargs),
            "link_latency": self.link_latency,
            "loss_probability": self.loss_probability,
            "duplicate_probability": self.duplicate_probability,
            "max_retries": self.max_retries,
            "backoff": list(self.backoff),
            "heartbeat_period": self.heartbeat_period,
            "heartbeat_timeout": self.heartbeat_timeout,
            "failover_deadline": self.failover_deadline,
            "sync_quantum": self.sync_quantum,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConstellationConfig":
        """Rebuild from :meth:`to_dict` output (extra keys rejected)."""
        fields = dict(data)
        known = {name for name in cls.__dataclass_fields__}  # type: ignore
        unknown = set(fields) - known
        if unknown:
            raise ConfigurationError(
                f"unknown constellation config fields {sorted(unknown)}")
        if "backoff" in fields:
            fields["backoff"] = tuple(fields["backoff"])
        if "factory_kwargs" in fields:
            fields["factory_kwargs"] = dict(fields["factory_kwargs"])
        return cls(**fields)
