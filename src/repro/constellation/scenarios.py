"""Constellation scenario specifications and campaign builders.

A :class:`ConstellationScenario` is the multi-node counterpart of
:class:`~repro.campaign.scenarios.Scenario`: a picklable,
JSON-serializable description of one deterministic constellation run —
the fleet shape (a :class:`~repro.constellation.config.ConstellationConfig`),
a seed, a tick horizon, scheduled *cross-node* faults and scheduled
*per-node* faults (ordinary single-node faults targeted at one node's
injector).  The campaign engine dispatches on the
``is_constellation`` marker: these scenarios run through
:func:`repro.constellation.runner.run_constellation_scenario` and skip
the prefix-sharing trie (each is its own locality group).

Builders:

* :func:`failover_drill` — the acceptance drill: silence the leader,
  watch the FDIR watchdogs detect it and the standby promote within the
  declared deadline;
* :func:`constellation_campaign` — seeded chaos barrages of cross-node
  and per-node faults, every scenario audited by both the per-node TSP
  oracle and the cross-node oracle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Tuple

from ..apps.fdir import HEARTBEAT_PROCESS
from ..apps.prototype import FAULTY_PROCESS, MTF
from ..exceptions import ConfigurationError
from ..fault.faults import (
    Fault,
    MemoryViolationFault,
    MessageFloodFault,
    PartitionCrashFault,
    ProcessKillFault,
    StartProcessFault,
    fault_from_dict,
    fault_to_dict,
)
from ..kernel.rng import SeededRng
from ..types import Ticks
from .config import ConstellationConfig
from .faults import (
    ByzantineNodeFault,
    ConstellationFault,
    LinkPartitionFault,
    LinkStormFault,
    NodeCrashFault,
    SilentNodeFault,
)

__all__ = [
    "ConstellationScenario",
    "constellation_scenario_to_dict",
    "constellation_scenario_from_dict",
    "failover_drill",
    "constellation_campaign",
]


@dataclass(frozen=True)
class ConstellationScenario:
    """One independent, deterministic constellation run in a campaign."""

    scenario_id: str
    seed: int = 0
    ticks: Ticks = 0
    constellation: ConstellationConfig = field(
        default_factory=ConstellationConfig)
    #: Cross-node faults: (tick, fault) applied at sync boundaries.
    faults: Tuple[Tuple[Ticks, ConstellationFault], ...] = ()
    #: Per-node faults: (node, tick, fault) scheduled on that node's own
    #: injector — ordinary single-node faults, applied at exact ticks.
    node_faults: Tuple[Tuple[int, Ticks, Fault], ...] = ()
    #: Audit with both the per-node TSP oracle and the cross-node oracle.
    oracle: bool = True

    #: Campaign-engine dispatch marker (duck-typed: the runner and the
    #: prefix planner test ``getattr(scenario, "is_constellation", …)``).
    is_constellation = True

    def __post_init__(self) -> None:
        if self.ticks < 0:
            raise ConfigurationError(
                f"{self.scenario_id}: negative tick horizon {self.ticks}")
        for node, _tick, _fault in self.node_faults:
            if not 0 <= node < self.constellation.nodes:
                raise ConfigurationError(
                    f"{self.scenario_id}: node fault targets node {node} "
                    f"of a {self.constellation.nodes}-node constellation")


def constellation_scenario_to_dict(
        scenario: ConstellationScenario) -> Dict[str, Any]:
    """Encode as a campaign-spec entry (the ``nodes`` key marks it)."""
    record: Dict[str, Any] = {
        "id": scenario.scenario_id,
        "seed": scenario.seed,
        "ticks": scenario.ticks,
        "nodes": scenario.constellation.nodes,
        "constellation": scenario.constellation.to_dict(),
    }
    if scenario.faults:
        record["faults"] = [dict(fault_to_dict(fault), tick=tick)
                            for tick, fault in scenario.faults]
    if scenario.node_faults:
        record["node_faults"] = [
            dict(fault_to_dict(fault), tick=tick, node=node)
            for node, tick, fault in scenario.node_faults]
    if not scenario.oracle:
        record["oracle"] = False
    return record


def constellation_scenario_from_dict(
        data: Mapping[str, Any]) -> ConstellationScenario:
    """Rebuild from :func:`constellation_scenario_to_dict` output."""
    config_doc = data.get("constellation", {"nodes": data.get("nodes", 3)})
    faults: List[Tuple[Ticks, ConstellationFault]] = []
    for entry in data.get("faults", ()):
        fields = dict(entry)
        tick = fields.pop("tick")
        fault = fault_from_dict(fields)
        if not isinstance(fault, ConstellationFault):
            raise ConfigurationError(
                f"{data.get('id')}: {type(fault).__name__} is not a "
                f"cross-node fault (put it under 'node_faults')")
        faults.append((tick, fault))
    node_faults: List[Tuple[int, Ticks, Fault]] = []
    for entry in data.get("node_faults", ()):
        fields = dict(entry)
        tick = fields.pop("tick")
        node = fields.pop("node")
        node_faults.append((node, tick, fault_from_dict(fields)))
    return ConstellationScenario(
        scenario_id=data["id"],
        seed=data.get("seed", 0),
        ticks=data["ticks"],
        constellation=ConstellationConfig.from_dict(config_doc),
        faults=tuple(faults),
        node_faults=tuple(node_faults),
        oracle=data.get("oracle", True),
    )


# ------------------------------------------------------------------ #
# campaign builders
# ------------------------------------------------------------------ #


def failover_drill(*, nodes: int = 3, seed: int = 0, mtfs: int = 8,
                   silence_at: Ticks = MTF + MTF // 2,
                   scenario_id: str = "failover-drill"
                   ) -> ConstellationScenario:
    """The silent-leader acceptance drill.

    The leader (node 0) goes fail-silent at *silence_at*; every standby's
    FDIR watchdog must expire one heartbeat-timeout later, the successor
    must promote at its next MTF boundary, and the cross-node oracle
    verifies the whole failover landed inside the declared deadline.
    """
    if mtfs < 5:
        raise ConfigurationError(
            f"failover drill needs mtfs >= 5 (silence + timeout + "
            f"promotion + settle), got {mtfs}")
    return ConstellationScenario(
        scenario_id=scenario_id,
        seed=seed,
        ticks=mtfs * MTF,
        constellation=ConstellationConfig(nodes=nodes),
        faults=((silence_at, SilentNodeFault(node=0)),),
    )


def _storm(rng: SeededRng, n: int) -> LinkStormFault:
    """A storm down a real directed link (the mesh has no self-links)."""
    src = rng.randint(0, n - 1)
    dst = (src + rng.randint(1, n - 1)) % n
    return LinkStormFault(src=src, dst=dst, count=rng.randint(16, 96))


#: Cross-node chaos arsenal: constructors drawing free parameters (nodes,
#: durations, counts) from the scenario's derived rng stream.
_XNODE_ARSENAL: Tuple[Callable[[SeededRng, int], ConstellationFault], ...] = (
    lambda rng, n: SilentNodeFault(
        node=rng.randint(0, n - 1), duration=rng.randint(MTF // 2, 3 * MTF)),
    lambda rng, n: ByzantineNodeFault(
        node=rng.randint(0, n - 1), duration=rng.randint(MTF // 2, 2 * MTF)),
    lambda rng, n: _storm(rng, n),
    lambda rng, n: LinkPartitionFault(
        group_a=(rng.randint(0, n - 1),),
        duration=rng.randint(MTF, 3 * MTF)),
    lambda rng, n: NodeCrashFault(node=rng.randint(1, n - 1)),
    # The canonical drill inside the barrage: a permanently silent leader.
    lambda rng, n: SilentNodeFault(node=0),
)

#: Per-node chaos arsenal (a subset of the single-node campaign's,
#: confined to P1/P2/P4 so P3 stays assertable on every node).
_NODE_ARSENAL: Tuple[Callable[[SeededRng], Fault], ...] = (
    lambda rng: StartProcessFault("P1", FAULTY_PROCESS),
    lambda rng: MemoryViolationFault("P2"),
    lambda rng: MemoryViolationFault("P4"),
    lambda rng: PartitionCrashFault("P2"),
    lambda rng: MessageFloodFault("P4", "alert_out",
                                  count=rng.randint(16, 96)),
    lambda rng: ProcessKillFault("P2", "obdh-storage"),
    lambda rng: ProcessKillFault("P4", HEARTBEAT_PROCESS),
)


def constellation_campaign(*, count: int = 50, nodes: int = 3,
                           mtfs: int = 8, base_seed: int = 0
                           ) -> List[ConstellationScenario]:
    """Seeded chaos barrages against N-node constellations.

    Each scenario derives its own rng stream from *base_seed* and draws
    1–3 cross-node faults (partitions, storms, silent/Byzantine nodes,
    crashes) plus 0–2 per-node faults against FDIR-supervised prototype
    nodes.  Fault ticks land in ``[MTF, (mtfs-3)·MTF]`` so every injected
    failover has a full deadline-plus-settle tail before the horizon.
    Fully deterministic: same *base_seed*, same scenarios, same campaign
    digest at any worker count and either backend.
    """
    if count < 1 or mtfs < 6 or nodes < 2:
        raise ConfigurationError(
            f"constellation campaign needs count >= 1, mtfs >= 6 and "
            f"nodes >= 2, got count={count}, mtfs={mtfs}, nodes={nodes}")
    # A genuinely hostile fabric: lossy links force the ARQ wrapper to
    # retransmit (with its forked backoff stream), duplication forces
    # receiver-side dedup — all on top of the injected fault barrage.
    config = ConstellationConfig(
        nodes=nodes, loss_probability=0.05, duplicate_probability=0.02,
        backoff=(1, 20), factory_kwargs={"fdir_supervision": True})
    span_start, span_end = MTF, (mtfs - 3) * MTF
    scenarios: List[ConstellationScenario] = []
    for index in range(count):
        rng = SeededRng(base_seed).fork(f"xnode-chaos-{index}")
        faults: List[Tuple[Ticks, ConstellationFault]] = []
        for _ in range(rng.randint(1, 3)):
            build = rng.choice(_XNODE_ARSENAL)
            tick = rng.randint(span_start, span_end)
            faults.append((tick, build(rng, nodes)))
        faults.sort(key=lambda entry: entry[0])
        node_faults: List[Tuple[int, Ticks, Fault]] = []
        for _ in range(rng.randint(0, 2)):
            build = rng.choice(_NODE_ARSENAL)
            node = rng.randint(0, nodes - 1)
            tick = rng.randint(span_start, span_end)
            node_faults.append((node, tick, build(rng)))
        node_faults.sort(key=lambda entry: (entry[1], entry[0]))
        scenarios.append(ConstellationScenario(
            scenario_id=f"xnode-{base_seed + index:05d}",
            seed=base_seed + index,
            ticks=mtfs * MTF,
            constellation=config,
            faults=tuple(faults),
            node_faults=tuple(node_faults),
        ))
    return scenarios


def campaign_digest_inputs(
        scenarios: List[ConstellationScenario]) -> str:
    """Canonical JSON of the scenario specs (spec-digest input)."""
    return json.dumps(
        [constellation_scenario_to_dict(scenario)
         for scenario in scenarios], sort_keys=True)
