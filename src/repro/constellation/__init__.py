"""Deterministic multi-node constellations of AIR nodes.

N full :class:`~repro.kernel.simulator.Simulator` instances (each with
its own PMK/PST/FDIR stack and fault injector) advance in lockstep,
exchange CRC-framed messages over per-link forked-rng
:class:`~repro.comm.network.NetworkLink` fabric, and run a
leader/standby failover protocol driven by the existing FDIR watchdog
machinery.  Cross-node fault injection (partitions, storms, silent and
Byzantine nodes, cascading crashes) and a cross-node invariant oracle
ride on top; the campaign engine dispatches
:class:`ConstellationScenario` work through
:func:`run_constellation_scenario`.
"""

from .comm import NODE_COMM_STAT_KEYS, InterNodeComm, decode_message, \
    encode_message
from .config import DEFAULT_FAILOVER_DEADLINE, ConstellationConfig
from .constellation import ROLE_LEADER, ROLE_STANDBY, Constellation, Node
from .faults import (
    ByzantineNodeFault,
    ConstellationFault,
    LinkPartitionFault,
    LinkStormFault,
    NodeCrashFault,
    SilentNodeFault,
)
from .oracle import check_constellation
from .runner import run_constellation_scenario
from .scenarios import (
    ConstellationScenario,
    constellation_campaign,
    constellation_scenario_from_dict,
    constellation_scenario_to_dict,
    failover_drill,
)

__all__ = [
    "NODE_COMM_STAT_KEYS",
    "InterNodeComm",
    "encode_message",
    "decode_message",
    "DEFAULT_FAILOVER_DEADLINE",
    "ConstellationConfig",
    "ROLE_LEADER",
    "ROLE_STANDBY",
    "Constellation",
    "Node",
    "ConstellationFault",
    "LinkPartitionFault",
    "LinkStormFault",
    "SilentNodeFault",
    "ByzantineNodeFault",
    "NodeCrashFault",
    "check_constellation",
    "run_constellation_scenario",
    "ConstellationScenario",
    "constellation_scenario_to_dict",
    "constellation_scenario_from_dict",
    "failover_drill",
    "constellation_campaign",
]
