"""Inter-node communication fabric: mesh links, framing, fault hooks.

Every directed node pair gets its own
:class:`~repro.comm.network.ReliableLink`-wrapped
:class:`~repro.comm.network.NetworkLink`, each seeded from a distinct
fork of the constellation rng (``link-<i>-<j>`` for the loss/duplication
stream, ``arq-<i>-<j>`` for the retransmit-backoff stream) — so fabric
randomness can never bleed between links or into a node's own simulator.

Protocol messages are canonical-JSON documents framed with a CRC32
trailer (:func:`encode_message` / :func:`decode_message`): a Byzantine
sender corrupts bytes on the wire, the receiver's CRC check rejects the
frame, and the rejection — like every other fabric observation — lands in
the pure-data :attr:`InterNodeComm.events` log the cross-node oracle
audits and the combined trace digest folds in.

Cross-node faults act here through narrow hooks (:meth:`partition`,
:meth:`silence`, :meth:`corrupt`, :meth:`storm`); each records a
``fault-window`` event so the oracle can tell injected damage from real
protocol defects.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..comm.messages import Envelope
from ..comm.network import NetworkLink, ReliableLink
from ..kernel.rng import SeededRng
from ..types import Ticks
from .config import ConstellationConfig

__all__ = [
    "MSG_HEARTBEAT",
    "MSG_STATUS",
    "MSG_CLAIM",
    "NODE_COMM_STAT_KEYS",
    "encode_message",
    "decode_message",
    "InterNodeComm",
]

#: Protocol message kinds.
MSG_HEARTBEAT = "heartbeat"   # leader liveness beacon
MSG_STATUS = "status"         # standby liveness beacon
MSG_CLAIM = "leader-claim"    # promotion announcement

#: Authoritative per-node fabric counter names; the governed telemetry
#: namespace (``campaign/<digest>/scenario/<id>/node/<node>/comm/<stat>``)
#: enumerates exactly these.
NODE_COMM_STAT_KEYS: Tuple[str, ...] = (
    "sent", "delivered", "dropped", "duplicates_discarded",
    "rejected_corrupt", "retransmissions", "backlog")

#: Permanent (open-ended) fault windows use this sentinel expiry.
FOREVER: Ticks = -1


def encode_message(document: Dict[str, Any]) -> bytes:
    """Frame *document* as canonical JSON + CRC32 trailer."""
    body = json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return body + b"|" + format(zlib.crc32(body), "08x").encode("ascii")


def decode_message(payload: bytes) -> Optional[Dict[str, Any]]:
    """Inverse of :func:`encode_message`; None when the CRC rejects."""
    body, _, trailer = payload.rpartition(b"|")
    if not body:
        return None
    try:
        if int(trailer.decode("ascii"), 16) != zlib.crc32(body):
            return None
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None


class _Window:
    """One injected fault window: active from application until expiry."""

    __slots__ = ("until",)

    def __init__(self, until: Ticks) -> None:
        self.until = until

    def active(self, now: Ticks) -> bool:
        return self.until == FOREVER or now < self.until


class InterNodeComm:
    """The constellation's message fabric.

    All state is deterministic: link randomness comes from forked seeded
    streams, delivery order from the links' arrival heaps, and every
    observable (sends, deliveries, dedup discards, CRC rejections,
    injected-fault windows) is appended to :attr:`events` as a pure-data
    dict — the record the cross-node oracle and the combined trace digest
    consume.
    """

    def __init__(self, config: ConstellationConfig, seed: int) -> None:
        self.config = config
        root = SeededRng(seed).fork("constellation-comm")
        self._links: Dict[Tuple[int, int], ReliableLink] = {}
        for src in range(config.nodes):
            for dst in range(config.nodes):
                if src == dst:
                    continue
                link = NetworkLink(
                    latency=config.link_latency,
                    loss_probability=config.loss_probability,
                    duplicate_probability=config.duplicate_probability,
                    rng=root.fork(f"link-{src}-{dst}"))
                self._links[(src, dst)] = ReliableLink(
                    link, max_retries=config.max_retries,
                    backoff=config.backoff, rng=root.fork(f"arq-{src}-{dst}"))
        self._corrupt_rng = [root.fork(f"byz-{node}")
                             for node in range(config.nodes)]
        self._inboxes: Dict[int, List[Tuple[int, Envelope]]] = {
            node: [] for node in range(config.nodes)}
        self._accepted: Dict[Tuple[int, int], set] = {}
        self._partitioned: Dict[Tuple[int, int], _Window] = {}
        self._silenced: Dict[int, _Window] = {}
        self._byzantine: Dict[int, _Window] = {}
        #: Pure-data observation log (oracle + digest input).
        self.events: List[Dict[str, Any]] = []
        #: Per-node counters, keyed by :data:`NODE_COMM_STAT_KEYS` minus
        #: the derived ``backlog``/``retransmissions`` entries.
        self._counters: List[Dict[str, int]] = [
            {"sent": 0, "delivered": 0, "dropped": 0,
             "duplicates_discarded": 0, "rejected_corrupt": 0}
            for _ in range(config.nodes)]
        self._pump_now: Ticks = 0

    # ---------------------------------------------------------------- #
    # fault hooks
    # ---------------------------------------------------------------- #

    def _window_event(self, now: Ticks, kind: str, until: Ticks,
                      **detail: Any) -> None:
        self.events.append(dict({"event": "fault-window", "tick": now,
                                 "kind": kind, "until": until}, **detail))

    def partition(self, now: Ticks, group_a: Tuple[int, ...],
                  group_b: Tuple[int, ...], until: Ticks) -> int:
        """Sever every link between *group_a* and *group_b* until *until*."""
        severed = 0
        for a in group_a:
            for b in group_b:
                if a == b:
                    continue
                self._partitioned[(a, b)] = _Window(until)
                self._partitioned[(b, a)] = _Window(until)
                severed += 2
        self._window_event(now, "link-partition", until,
                           group_a=list(group_a), group_b=list(group_b))
        return severed

    def silence(self, now: Ticks, node: int, until: Ticks) -> None:
        """Blackhole every outgoing transmission of *node* until *until*."""
        self._silenced[node] = _Window(until)
        self._window_event(now, "silent-node", until, node=node)

    def corrupt(self, now: Ticks, node: int, until: Ticks) -> None:
        """Make *node* Byzantine (corrupt its payloads) until *until*."""
        self._byzantine[node] = _Window(until)
        self._window_event(now, "byzantine-node", until, node=node)

    def storm(self, now: Ticks, src: int, dst: int, count: int) -> int:
        """Flood the *src*->*dst* link with *count* junk frames."""
        self._window_event(now, "link-storm", now, src=src, dst=dst,
                           count=count)
        injected = 0
        for index in range(count):
            frame = b"STORM-" + str(index).encode("ascii")
            if self._transmit_raw(now, src, dst, frame, kind="storm-junk",
                                  seq=-(index + 1)):
                injected += 1
        return injected

    def fault_windows(self, now: Ticks) -> Dict[str, int]:
        """Currently active injected windows, for crash bundles."""
        return {
            "partitioned_links": sum(
                1 for window in self._partitioned.values()
                if window.active(now)),
            "silenced_nodes": sum(1 for window in self._silenced.values()
                                  if window.active(now)),
            "byzantine_nodes": sum(1 for window in self._byzantine.values()
                                   if window.active(now)),
        }

    # ---------------------------------------------------------------- #
    # send / pump / receive
    # ---------------------------------------------------------------- #

    def send(self, now: Ticks, src: int, dst: int,
             document: Dict[str, Any]) -> bool:
        """Frame and transmit a protocol *document* from *src* to *dst*.

        Returns True when the frame entered the link (delivery still
        subject to the loss model); False when an injected fault or retry
        exhaustion dropped it.  Every outcome is logged.
        """
        seq = document["seq"]
        kind = document["kind"]
        counters = self._counters[src]
        counters["sent"] += 1
        self.events.append({"event": "sent", "tick": now, "src": src,
                            "dst": dst, "seq": seq, "kind": kind})
        silenced = self._silenced.get(src)
        if silenced is not None and silenced.active(now):
            counters["dropped"] += 1
            self.events.append({"event": "dropped", "tick": now, "src": src,
                                "dst": dst, "seq": seq,
                                "reason": "silent-node"})
            return False
        partitioned = self._partitioned.get((src, dst))
        if partitioned is not None and partitioned.active(now):
            counters["dropped"] += 1
            self.events.append({"event": "dropped", "tick": now, "src": src,
                                "dst": dst, "seq": seq,
                                "reason": "link-partition"})
            return False
        payload = encode_message(document)
        byzantine = self._byzantine.get(src)
        if byzantine is not None and byzantine.active(now):
            payload = self._corrupt_payload(src, payload)
            self.events.append({"event": "corrupted", "tick": now,
                                "src": src, "dst": dst, "seq": seq})
        return self._transmit_raw(now, src, dst, payload, kind=kind, seq=seq)

    def _corrupt_payload(self, src: int, payload: bytes) -> bytes:
        """Flip one deterministic byte of the frame body."""
        index = self._corrupt_rng[src].randint(0, max(0, len(payload) - 10))
        flipped = bytes([payload[index] ^ 0xFF])
        return payload[:index] + flipped + payload[index + 1:]

    def _transmit_raw(self, now: Ticks, src: int, dst: int,
                      payload: bytes, *, kind: str, seq: int) -> bool:
        link = self._links[(src, dst)]
        envelope = Envelope(payload=payload, sent_at=now,
                            channel=f"xnode-{src}-{dst}", sequence=seq)
        inboxes = self._inboxes

        def deliver(delivered: Envelope, _src: int = src,
                    _dst: int = dst) -> None:
            # Resolve the inbox at delivery time: receive() drains it
            # between transmit and pump, and a closure over the list
            # object would append into a stale drain.
            inboxes[_dst].append((_src, delivered))

        accepted = link.transmit(envelope, now, deliver,
                                 tag=(src, dst, seq))
        if not accepted:
            self._counters[src]["dropped"] += 1
            self.events.append({"event": "dropped", "tick": now, "src": src,
                                "dst": dst, "seq": seq,
                                "reason": "retry-exhausted"})
        return accepted

    def pump(self, now: Ticks) -> int:
        """Deliver everything due on every link, in link order."""
        self._pump_now = now
        delivered = 0
        for (src, dst) in sorted(self._links):
            delivered += self._links[(src, dst)].pump(now)
        return delivered

    def receive(self, now: Ticks, dst: int) -> List[Dict[str, Any]]:
        """Drain *dst*'s inbox: CRC-check, dedup, log, return documents.

        Returns the accepted protocol documents in arrival order, each
        with ``_from`` (sender node) attached.
        """
        accepted_documents: List[Dict[str, Any]] = []
        counters = self._counters[dst]
        arrivals = list(self._inboxes[dst])
        self._inboxes[dst].clear()
        for src, envelope in arrivals:
            seq = envelope.sequence
            self.events.append({"event": "delivered", "tick": now,
                                "src": src, "dst": dst, "seq": seq})
            document = decode_message(envelope.payload)
            if document is None:
                counters["rejected_corrupt"] += 1
                self.events.append({"event": "rejected-corrupt",
                                    "tick": now, "src": src, "dst": dst,
                                    "seq": seq})
                continue
            seen = self._accepted.setdefault((src, dst), set())
            if seq in seen:
                counters["duplicates_discarded"] += 1
                self.events.append({"event": "duplicate-discarded",
                                    "tick": now, "src": src, "dst": dst,
                                    "seq": seq})
                continue
            seen.add(seq)
            counters["delivered"] += 1
            self.events.append({"event": "accepted", "tick": now,
                                "src": src, "dst": dst, "seq": seq,
                                "kind": document.get("kind", "?")})
            document["_from"] = src
            accepted_documents.append(document)
        return accepted_documents

    # ---------------------------------------------------------------- #
    # horizons, stats, digests
    # ---------------------------------------------------------------- #

    @property
    def next_delivery_tick(self) -> Optional[Ticks]:
        """Earliest in-flight arrival across every link, or None."""
        ticks = [link.next_delivery_tick for link in self._links.values()
                 if link.next_delivery_tick is not None]
        return min(ticks) if ticks else None

    def backlog(self, node: Optional[int] = None) -> int:
        """In-flight frames + undrained inbox depth (one node or all)."""
        if node is None:
            in_flight = sum(link.in_flight for link in self._links.values())
            inboxed = sum(len(inbox) for inbox in self._inboxes.values())
            return in_flight + inboxed
        in_flight = sum(link.in_flight
                        for (src, dst), link in self._links.items()
                        if dst == node)
        return in_flight + len(self._inboxes[node])

    def link_stats(self, src: int, dst: int) -> Dict[str, int]:
        """The governed :data:`~repro.comm.network.LINK_STAT_KEYS` counters."""
        return self._links[(src, dst)].stats.as_dict()

    def node_stats(self, node: int) -> Dict[str, int]:
        """Per-node fabric counters keyed by :data:`NODE_COMM_STAT_KEYS`."""
        retransmissions = sum(
            link.stats.retransmissions
            for (src, _dst), link in self._links.items() if src == node)
        stats = dict(self._counters[node])
        stats["retransmissions"] = retransmissions
        stats["backlog"] = self.backlog(node)
        return {key: stats[key] for key in NODE_COMM_STAT_KEYS}

    def events_digest(self) -> str:
        """Content digest of the full observation log."""
        canonical = json.dumps(self.events, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
