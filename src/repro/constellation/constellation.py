"""Lockstep multi-node execution with leader/standby failover.

A :class:`Constellation` runs N full AIR nodes — each its own
:class:`~repro.kernel.simulator.Simulator` with PMK/PST/FDIR stack and a
:class:`~repro.fault.injector.FaultInjector` — in deterministic lockstep:
the loop advances every alive node (in node-id order) to the next *sync
boundary*, pumps the inter-node fabric, drains inboxes and runs one
protocol step per node.  Boundaries are the earliest of: the sync
quantum, the next link delivery, the next beacon, the next watchdog
expiry, the next pending promotion and the next scheduled cross-node
fault — so no protocol-relevant tick is ever skipped, and the whole
schedule is a pure function of (config, seed, faults).  See DESIGN
decision 12 for why lockstep (not event-interleaved node execution) is
what keeps per-node trace digests byte-identical to single-node runs.

Failover is driven by the existing FDIR machinery: every standby runs a
:class:`~repro.fdir.watchdog.WatchdogService` with one ``leader`` window
(its expiry event lands in that node's own trace, exactly like a
partition watchdog).  On expiry the standby computes the successor —
the lowest-id node it still believes alive — and, if that is itself,
promotes at its next MTF boundary (role changes are mode changes; AIR
changes modes only at MTF boundaries) under a fresh epoch, broadcasting
a leader claim.  A reappearing old leader steps down on seeing the
higher epoch.  The cross-node oracle checks the promotion landed within
the declared ``failover_deadline``.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..campaign.scenarios import FACTORIES
from ..exceptions import SimulationError
from ..fault.injector import FaultInjector
from ..fdir.watchdog import WatchdogService
from ..kernel.rng import SeededRng
from ..kernel.simulator import Simulator
from ..types import Ticks
from .comm import (
    MSG_CLAIM,
    MSG_HEARTBEAT,
    MSG_STATUS,
    InterNodeComm,
)
from .config import ConstellationConfig
from .faults import ConstellationFault

__all__ = ["Node", "Constellation", "ROLE_LEADER", "ROLE_STANDBY"]

ROLE_LEADER = "leader"
ROLE_STANDBY = "standby"


class Node:
    """One AIR node: simulator + injector + failover protocol state."""

    def __init__(self, index: int, simulator: Simulator,
                 heartbeat_timeout: Ticks) -> None:
        self.index = index
        self.simulator = simulator
        self.injector = FaultInjector(simulator)
        self.role = ROLE_LEADER if index == 0 else ROLE_STANDBY
        #: Highest epoch this node has adopted; the leader's own epoch.
        self.epoch = 0
        #: Who this node believes leads the constellation.
        self.leader = 0
        self.last_heard: Dict[int, Ticks] = {}
        self.next_beacon: Ticks = 0
        self.promotion_due: Optional[Ticks] = None
        self.detected_at: Optional[Ticks] = None
        self.crashed = False
        self.seq = 0
        #: The FDIR heartbeat watchdog: one ``leader`` window, expiry
        #: recorded into this node's own trace (WatchdogExpired), exactly
        #: like a partition watchdog.  ``on_expired`` is bound by the
        #: constellation (it needs cross-node state).
        self.watchdog = WatchdogService(
            {"leader": heartbeat_timeout},
            on_expired=lambda *args: None,
            trace=simulator.trace)

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    @property
    def alive(self) -> bool:
        return not self.crashed and not self.simulator.stopped


class Constellation:
    """N AIR nodes in deterministic lockstep over an inter-node fabric."""

    def __init__(self, config: ConstellationConfig, seed: int, *,
                 backend: str = "reference") -> None:
        self.config = config
        self.seed = seed
        self.now: Ticks = 0
        self.comm = InterNodeComm(config, seed)
        factory = FACTORIES[config.factory]
        seeds = SeededRng(seed).fork("node-seeds")
        self.nodes: List[Node] = []
        #: Per-node system configs, index-aligned with :attr:`nodes` —
        #: the runner audits each node's trace against its own config.
        self.system_configs: List[Any] = []
        for index in range(config.nodes):
            node_seed = seeds.fork(f"node-{index}").seed
            system = factory(seed=node_seed, **dict(config.factory_kwargs))
            simulator = Simulator(system, backend=backend)
            self.system_configs.append(system)
            self.nodes.append(Node(index, simulator,
                                   config.heartbeat_timeout))
        #: Pure-data protocol record (role changes, detections,
        #: promotions, crashes) — oracle + digest input.
        self.protocol_events: List[Dict[str, Any]] = []
        #: Applied cross-node faults: (tick, fault, status).
        self.fault_log: List[Tuple[Ticks, ConstellationFault, str]] = []
        self._pending: List[Tuple[Ticks, int, ConstellationFault]] = []
        self._fault_seq = 0
        self._record({"event": "leader-claimed", "tick": 0, "node": 0,
                      "epoch": 0, "boot": True})
        for node in self.nodes:
            node.last_heard = {peer: 0 for peer in range(config.nodes)
                               if peer != node.index}
            if node.role == ROLE_STANDBY:
                # Boot counts as having just heard the leader: the
                # watchdog arms immediately, so a leader silent from
                # tick 0 is still detected one timeout in.
                node.watchdog.kick("leader", 0)
            node.next_beacon = config.heartbeat_period

    # ---------------------------------------------------------------- #
    # cross-node fault scheduling
    # ---------------------------------------------------------------- #

    def schedule_fault(self, tick: Ticks, fault: ConstellationFault) -> None:
        """Apply *fault* at sync boundary *tick* (past ticks refused)."""
        if tick < self.now:
            raise SimulationError(
                f"cannot schedule a constellation fault in the past "
                f"(now={self.now}, requested={tick})")
        self._fault_seq += 1
        heapq.heappush(self._pending, (tick, self._fault_seq, fault))

    def _apply_due_faults(self) -> None:
        while self._pending and self._pending[0][0] <= self.now:
            _, _, fault = heapq.heappop(self._pending)
            status = fault.apply_to(self)
            self.fault_log.append((self.now, fault, status))

    def crash_node(self, index: int) -> None:
        """Kill node *index*: module stop, fabric silence, protocol event."""
        node = self.nodes[index]
        if node.crashed:
            return
        node.crashed = True
        node.simulator.pmk.module_stop()
        self.comm.silence(self.now, index, until=-1)
        self._record({"event": "node-crashed", "tick": self.now,
                      "node": index, "role": node.role})

    # ---------------------------------------------------------------- #
    # the lockstep loop
    # ---------------------------------------------------------------- #

    def run(self, ticks: Ticks, *,
            should_abort: Optional[Callable[[], bool]] = None,
            check_interval: Ticks = 50_000) -> bool:
        """Advance the whole constellation by *ticks*.

        Returns False if *should_abort* tripped (the campaign wall-clock
        budget), True on normal completion.  Bit-identical for both
        simulator backends and any abort-poll cadence.
        """
        target = self.now + ticks
        while self.now < target:
            if should_abort is not None and should_abort():
                return False
            boundary = self._next_boundary(target)
            for node in self.nodes:
                if not node.alive:
                    continue
                span = boundary - node.simulator.now
                if span > 0:
                    node.injector.run_fast(span,
                                           check_interval=check_interval)
            self.now = boundary
            for node in self.nodes:
                # A node whose own FDIR stopped the module (HM
                # escalation) is dead to the fleet even without an
                # injected crash.
                if node.simulator.stopped and not node.crashed:
                    self.crash_node(node.index)
            self._apply_due_faults()
            self.comm.pump(self.now)
            for node in self.nodes:
                if node.alive:
                    self._process_inbox(node)
            for node in self.nodes:
                if node.alive:
                    self._protocol_step(node)
        return True

    def _next_boundary(self, target: Ticks) -> Ticks:
        candidates = [target, self.now + self.config.sync_quantum]
        delivery = self.comm.next_delivery_tick
        if delivery is not None:
            candidates.append(delivery)
        if self._pending:
            candidates.append(self._pending[0][0])
        for node in self.nodes:
            if not node.alive:
                continue
            candidates.append(node.next_beacon)
            expiry = node.watchdog.next_expiry()
            if expiry is not None:
                candidates.append(expiry)
            if node.promotion_due is not None:
                candidates.append(node.promotion_due)
        future = [tick for tick in candidates if tick > self.now]
        return min(min(future), target)

    # ---------------------------------------------------------------- #
    # protocol
    # ---------------------------------------------------------------- #

    def _record(self, event: Dict[str, Any]) -> None:
        self.protocol_events.append(event)

    def _broadcast(self, node: Node, kind: str,
                   extra: Optional[Dict[str, Any]] = None) -> None:
        for peer in range(self.config.nodes):
            if peer == node.index:
                continue
            document = {"kind": kind, "src": node.index,
                        "epoch": node.epoch, "seq": node.next_seq()}
            if extra:
                document.update(extra)
            self.comm.send(self.now, node.index, peer, document)

    def _process_inbox(self, node: Node) -> None:
        for document in self.comm.receive(self.now, node.index):
            src = document["_from"]
            # CRC framing already rejected corrupt frames; a document
            # whose claimed src disagrees with its link of arrival is a
            # spoof the mesh cannot produce — drop defensively.
            if document.get("src") != src:
                continue
            node.last_heard[src] = self.now
            kind = document.get("kind")
            epoch = document.get("epoch", -1)
            if kind == MSG_STATUS:
                continue
            if kind not in (MSG_HEARTBEAT, MSG_CLAIM):
                continue  # storm junk that somehow framed clean
            if epoch > node.epoch:
                self._adopt_leader(node, src, epoch)
            elif epoch == node.epoch:
                if src == node.leader and node.role == ROLE_STANDBY:
                    node.watchdog.kick("leader", self.now)
                    if node.promotion_due is not None:
                        # The leader we gave up on reappeared before we
                        # promoted: stand down the failover.
                        self._record({"event": "failover-cancelled",
                                      "tick": self.now, "node": node.index,
                                      "leader": src})
                        node.promotion_due = None
                        node.detected_at = None
                elif node.role == ROLE_LEADER and src != node.index:
                    # Same-epoch leader conflict (possible only under an
                    # injected partition/Byzantine window; surfaces via
                    # the rival's claim *or* its heartbeats after a
                    # heal): lowest id wins so the fleet reconverges
                    # deterministically.
                    if src < node.index:
                        self._record({"event": "epoch-conflict",
                                      "tick": self.now, "epoch": epoch,
                                      "node": node.index, "winner": src})
                        self._adopt_leader(node, src, epoch)

    def _adopt_leader(self, node: Node, leader: int, epoch: int) -> None:
        stepped_down = node.role == ROLE_LEADER
        node.role = ROLE_STANDBY
        node.leader = leader
        node.epoch = epoch
        node.promotion_due = None
        node.detected_at = None
        node.watchdog.kick("leader", self.now)
        self._record({"event": "leader-adopted", "tick": self.now,
                      "node": node.index, "leader": leader, "epoch": epoch,
                      "stepped_down": stepped_down})

    def _protocol_step(self, node: Node) -> None:
        now = self.now
        if node.promotion_due is not None and now >= node.promotion_due:
            self._promote(node)
        if now >= node.next_beacon:
            kind = MSG_HEARTBEAT if node.role == ROLE_LEADER else MSG_STATUS
            self._broadcast(node, kind)
            while node.next_beacon <= now:
                node.next_beacon += self.config.heartbeat_period
        expired = node.watchdog.check(now)
        if expired and node.role == ROLE_STANDBY:
            self._on_leader_silent(node)

    def _on_leader_silent(self, node: Node) -> None:
        now = self.now
        timeout = self.config.heartbeat_timeout
        believed_alive = {node.index} | {
            peer for peer, heard in node.last_heard.items()
            if peer != node.leader and now - heard <= timeout}
        successor = min(believed_alive)
        if successor != node.index:
            # Someone healthier outranks us: wait one more window for
            # their claim (re-arm the watchdog).
            self._record({"event": "leader-silent", "tick": now,
                          "node": node.index, "leader": node.leader,
                          "successor": successor})
            node.watchdog.kick("leader", now)
            return
        node.detected_at = now
        # Role changes are mode changes: promote at this node's next MTF
        # boundary, never mid-frame (paper Sect. 4 discipline).
        scheduler = node.simulator.pmk.scheduler
        mtf = scheduler.current.mtf
        offset = (now - scheduler.last_schedule_switch) % mtf
        node.promotion_due = now + (mtf - offset if offset else mtf)
        self._record({"event": "failover-detected", "tick": now,
                      "node": node.index, "leader": node.leader,
                      "promotion_due": node.promotion_due})

    def _promote(self, node: Node) -> None:
        node.role = ROLE_LEADER
        node.epoch += 1
        node.leader = node.index
        detected_at = node.detected_at
        node.promotion_due = None
        node.detected_at = None
        node.watchdog.disarm("leader")
        self._record({"event": "leader-claimed", "tick": self.now,
                      "node": node.index, "epoch": node.epoch,
                      "detected_at": detected_at})
        self._broadcast(node, MSG_CLAIM)

    # ---------------------------------------------------------------- #
    # results
    # ---------------------------------------------------------------- #

    @property
    def leaders(self) -> Tuple[int, ...]:
        """Indices of alive nodes currently in the leader role."""
        return tuple(node.index for node in self.nodes
                     if node.alive and node.role == ROLE_LEADER)

    def combined_digest(self) -> str:
        """One digest over every node trace + fabric + protocol record.

        Byte-identical across backends, worker counts and abort-poll
        cadences — the constellation's extension of the single-node
        trace-digest invariant.
        """
        parts = [node.simulator.trace.digest() for node in self.nodes]
        parts.append(self.comm.events_digest())
        canonical = json.dumps(self.protocol_events, sort_keys=True,
                               separators=(",", ":"))
        parts.append(hashlib.sha256(
            canonical.encode("utf-8")).hexdigest()[:16])
        return hashlib.sha256(
            "|".join(parts).encode("utf-8")).hexdigest()[:16]
