"""Cross-node fault models (link partition/storm, silent/Byzantine node,
cascading crashes).

These are the constellation-level counterparts of
:mod:`repro.fault.faults`: frozen dataclasses entered into the same
:data:`~repro.fault.faults.FAULT_KINDS` registry (so the registry-driven
round-trip serialization audit covers them automatically) but applied to
a :class:`~repro.constellation.constellation.Constellation` rather than a
single :class:`~repro.kernel.simulator.Simulator`.

Every application opens a *fault window* in the inter-node fabric's
observation log; the cross-node oracle excuses message loss, duplicate
leaders and missed heartbeats only inside such windows — damage outside
an injected window is a genuine protocol defect and fails the scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..exceptions import ConfigurationError
from ..fault.faults import register_fault
from ..types import Ticks

__all__ = [
    "ConstellationFault",
    "LinkPartitionFault",
    "LinkStormFault",
    "SilentNodeFault",
    "ByzantineNodeFault",
    "NodeCrashFault",
]

#: duration == FOREVER means the window never closes.
FOREVER: Ticks = -1


class ConstellationFault:
    """One injectable cross-node fault.

    Unlike :class:`~repro.fault.faults.Fault` this applies to the whole
    constellation; the lockstep loop dispatches on this base class.
    """

    def apply_to(self, constellation) -> str:
        """Inject into *constellation*; returns a status line."""
        raise NotImplementedError


def _until(now: Ticks, duration: Ticks) -> Ticks:
    return FOREVER if duration == FOREVER else now + duration


@register_fault
@dataclass(frozen=True)
class LinkPartitionFault(ConstellationFault):
    """Sever links between two node groups for *duration* ticks.

    With ``group_b`` empty, ``group_a`` is cut off from everyone else —
    the classic network partition.  Messages crossing the cut are dropped
    at transmit time and logged with reason ``link-partition``.
    """

    group_a: Tuple[int, ...]
    group_b: Tuple[int, ...] = ()
    duration: Ticks = FOREVER

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_a", tuple(self.group_a))
        object.__setattr__(self, "group_b", tuple(self.group_b))

    def apply_to(self, constellation) -> str:
        now = constellation.now
        group_b = self.group_b or tuple(
            node for node in range(constellation.config.nodes)
            if node not in self.group_a)
        severed = constellation.comm.partition(
            now, self.group_a, group_b, _until(now, self.duration))
        return (f"partitioned {list(self.group_a)} | {list(group_b)}: "
                f"{severed} directed links severed")


@register_fault
@dataclass(frozen=True)
class LinkStormFault(ConstellationFault):
    """Babbling-idiot storm: *count* junk frames down one directed link.

    The receiver's CRC framing must reject every frame; the storm may
    delay but must never corrupt protocol state.
    """

    src: int
    dst: int
    count: int = 64

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigurationError(
                f"link storm needs a directed link; the mesh has no "
                f"self-link {self.src}->{self.dst}")

    def apply_to(self, constellation) -> str:
        injected = constellation.comm.storm(constellation.now, self.src,
                                            self.dst, self.count)
        return (f"storm {self.src}->{self.dst}: {injected}/{self.count} "
                f"junk frames injected")


@register_fault
@dataclass(frozen=True)
class SilentNodeFault(ConstellationFault):
    """Blackhole a node's transmissions (fail-silent, node still runs).

    Applied to the current leader this is the canonical failover drill:
    standbys stop hearing heartbeats, the FDIR watchdog expires, and the
    successor must promote within the declared deadline.
    """

    node: int
    duration: Ticks = FOREVER

    def apply_to(self, constellation) -> str:
        now = constellation.now
        constellation.comm.silence(now, self.node,
                                   _until(now, self.duration))
        span = ("permanently" if self.duration == FOREVER
                else f"for {self.duration} ticks")
        return f"node {self.node} silenced {span}"


@register_fault
@dataclass(frozen=True)
class ByzantineNodeFault(ConstellationFault):
    """Make a node Byzantine: its payloads are corrupted on the wire.

    Receivers must reject the frames via CRC framing; the corruption may
    cost liveness (a Byzantine leader looks silent) but never safety.
    """

    node: int
    duration: Ticks = FOREVER

    def apply_to(self, constellation) -> str:
        now = constellation.now
        constellation.comm.corrupt(now, self.node,
                                   _until(now, self.duration))
        span = ("permanently" if self.duration == FOREVER
                else f"for {self.duration} ticks")
        return f"node {self.node} Byzantine {span}"


@register_fault
@dataclass(frozen=True)
class NodeCrashFault(ConstellationFault):
    """Crash a node outright; optionally cascade to dependent nodes.

    The crashed node's module is stopped (``pmk.module_stop``), its
    fabric silenced, and each node in ``cascade`` is scheduled to crash
    ``cascade_delay`` ticks later — the multi-node cascading-failure
    scenario the chaos suite draws on.
    """

    node: int
    cascade: Tuple[int, ...] = ()
    cascade_delay: Ticks = 500

    def __post_init__(self) -> None:
        object.__setattr__(self, "cascade", tuple(self.cascade))

    def apply_to(self, constellation) -> str:
        constellation.crash_node(self.node)
        for offset, victim in enumerate(self.cascade, start=1):
            constellation.schedule_fault(
                constellation.now + offset * self.cascade_delay,
                NodeCrashFault(node=victim))
        suffix = (f", cascading to {list(self.cascade)}" if self.cascade
                  else "")
        return f"node {self.node} crashed{suffix}"
