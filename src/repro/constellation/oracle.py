"""Cross-node invariant oracle (the distributed extension of
:mod:`repro.fdir.oracle`).

Single-node invariants are still checked per node trace with
:func:`repro.fdir.oracle.check_trace`; this module adds the invariants
that only exist *between* nodes, verified over the fabric's pure-data
observation log and the constellation's protocol record:

``xnode-message-accounting``
    Every inter-node message sent is accepted exactly once — unless an
    injected fault window explains its loss (partition/silence drop,
    Byzantine CRC rejection, retry exhaustion under a configured loss
    model, destination crashed) or it was still in flight/inboxed when
    the run ended.  Acceptance without a send, and double acceptance,
    are violations unconditionally.
``single-leader-epoch``
    At most one node claims each epoch.  Two claims of one epoch are
    excused only when an injected fault window overlaps the interval
    between them (a partition can legitimately split the fleet).
``failover-deadline``
    Every detected failover completes (promotion) or is cancelled (the
    old leader reappeared) within the declared ``failover_deadline``;
    a detection left dangling longer than the deadline before the run
    ended is equally a violation.

Violations reuse :class:`repro.fdir.oracle.InvariantViolation` — the
``partition`` field carries ``node<i>`` so reports read uniformly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..fdir.oracle import InvariantViolation
from ..types import Ticks
from .config import ConstellationConfig

__all__ = ["check_constellation"]

#: Drop reasons the fabric only emits under an injected fault or a
#: configured loss model — always excused.
_EXCUSED_DROPS = frozenset(
    {"silent-node", "link-partition", "retry-exhausted"})


def check_constellation(
        comm_events: List[Dict[str, Any]],
        protocol_events: List[Dict[str, Any]],
        config: ConstellationConfig, *,
        end_tick: Ticks,
        final_backlog: int = 0,
        max_violations: int = 64) -> Tuple[InvariantViolation, ...]:
    """Verify the cross-node invariants over one finished run."""
    violations: List[InvariantViolation] = []

    def flag(invariant: str, tick: Ticks, detail: str,
             node: int = -1) -> None:
        if len(violations) < max_violations:
            violations.append(InvariantViolation(
                invariant=invariant, tick=tick, detail=detail,
                partition=f"node{node}" if node >= 0 else None))

    # ------------------------------------------------------------ #
    # reconstruct fault windows and crash times
    # ------------------------------------------------------------ #
    fault_windows: List[Tuple[Ticks, Ticks]] = []
    corrupted_keys = set()
    storms: List[Tuple[int, int]] = []
    for event in comm_events:
        kind = event.get("event")
        if kind == "corrupted":
            # The fabric logs exactly which frames a Byzantine window
            # mangled at send time; only those may be CRC-rejected.
            corrupted_keys.add((event["src"], event["dst"], event["seq"]))
            continue
        if kind != "fault-window":
            continue
        start = event["tick"]
        until = event["until"]
        end = end_tick + 1 if until == -1 else until
        fault_windows.append((start, end))
        if event["kind"] == "link-storm":
            storms.append((event["src"], event["dst"]))
    crashed_at: Dict[int, Ticks] = {}
    for event in protocol_events:
        if event.get("event") == "node-crashed":
            crashed_at.setdefault(event["node"], event["tick"])

    def any_window_overlaps(start: Ticks, end: Ticks) -> bool:
        return any(w_start <= end and w_end >= start
                   for w_start, w_end in fault_windows)

    # ------------------------------------------------------------ #
    # xnode-message-accounting
    # ------------------------------------------------------------ #
    sent: Dict[Tuple[int, int, int], Ticks] = {}
    resolved: Dict[Tuple[int, int, int], str] = {}
    for event in comm_events:
        kind = event.get("event")
        if kind not in ("sent", "accepted", "dropped", "rejected-corrupt",
                        "duplicate-discarded"):
            continue
        key = (event["src"], event["dst"], event["seq"])
        tick = event["tick"]
        if kind == "sent":
            sent[key] = tick
        elif kind == "accepted":
            if key not in sent and key[2] >= 0:
                flag("xnode-message-accounting", tick,
                     f"accepted message {key} was never sent",
                     node=event["dst"])
            elif resolved.get(key) == "accepted":
                flag("xnode-message-accounting", tick,
                     f"message {key} accepted twice (dedup breach)",
                     node=event["dst"])
            else:
                resolved[key] = "accepted"
        elif kind == "dropped":
            reason = event.get("reason", "?")
            if reason not in _EXCUSED_DROPS:
                flag("xnode-message-accounting", tick,
                     f"message {key} dropped for unexplained reason "
                     f"{reason!r}", node=event["src"])
            resolved.setdefault(key, "dropped")
        elif kind == "rejected-corrupt":
            src, dst = key[0], key[1]
            storm_frame = key[2] < 0 and (src, dst) in storms
            if not storm_frame and key not in corrupted_keys:
                flag("xnode-message-accounting", tick,
                     f"message {key} rejected as corrupt but was never "
                     f"corrupted by an injected Byzantine fault", node=dst)
            resolved.setdefault(key, "rejected")
    # retry-exhausted drops need a configured loss model to be excusable.
    if config.loss_probability == 0.0:
        for event in comm_events:
            if (event.get("event") == "dropped"
                    and event.get("reason") == "retry-exhausted"):
                flag("xnode-message-accounting", event["tick"],
                     "retry exhaustion on a loss-free link",
                     node=event["src"])
    unresolved = 0
    for key, tick in sorted(sent.items()):
        if key in resolved:
            continue
        dst = key[1]
        if dst in crashed_at and tick >= crashed_at[dst]:
            continue  # receiver died; the message had nowhere to land
        unresolved += 1
    if unresolved > final_backlog:
        flag("xnode-message-accounting", end_tick,
             f"{unresolved} sent message(s) neither accepted, dropped "
             f"nor still in transit (final backlog {final_backlog})")

    # ------------------------------------------------------------ #
    # single-leader-epoch
    # ------------------------------------------------------------ #
    claims: Dict[int, List[Tuple[Ticks, int]]] = {}
    for event in protocol_events:
        if event.get("event") == "leader-claimed":
            claims.setdefault(event["epoch"], []).append(
                (event["tick"], event["node"]))
    for epoch, claimants in sorted(claims.items()):
        nodes = {node for _, node in claimants}
        if len(nodes) <= 1:
            continue
        first = min(tick for tick, _ in claimants)
        last = max(tick for tick, _ in claimants)
        if not any_window_overlaps(first, last):
            flag("single-leader-epoch", last,
                 f"epoch {epoch} claimed by nodes {sorted(nodes)} with no "
                 f"fault window overlapping [{first}, {last}]")

    # ------------------------------------------------------------ #
    # failover-deadline
    # ------------------------------------------------------------ #
    deadline = config.failover_deadline
    open_detections: Dict[int, Ticks] = {}
    for event in protocol_events:
        kind = event.get("event")
        node = event.get("node", -1)
        tick = event.get("tick", 0)
        if kind == "failover-detected":
            open_detections[node] = tick
        elif kind == "failover-cancelled":
            open_detections.pop(node, None)
        elif kind == "leader-claimed" and event.get("detected_at") is not None:
            detected = open_detections.pop(node, event["detected_at"])
            if tick - detected > deadline:
                flag("failover-deadline", tick,
                     f"promotion {tick - detected} ticks after detection "
                     f"at {detected} exceeds deadline {deadline}",
                     node=node)
        elif kind == "node-crashed":
            open_detections.pop(node, None)  # the successor itself died
    for node, detected in sorted(open_detections.items()):
        if end_tick - detected > deadline:
            flag("failover-deadline", end_tick,
                 f"failover detected at {detected} still incomplete "
                 f"{end_tick - detected} ticks later (deadline {deadline})",
                 node=node)

    return tuple(violations)
