"""FDIR escalation policy: configuration of the supervision layer.

The Health Monitor tables (Sect. 2.4/5) map one error report to one
recovery action — statically, forever.  Cheptsov & Khoroshilov
(arXiv:2312.01436) argue that static per-error actions are insufficient
against *persistent* faults; the DREMS-OS supervisor (arXiv:1710.00268)
answers with escalation: repeated failures within a window climb a chain
of increasingly drastic responses.  :class:`FdirConfig` captures that
policy declaratively:

* :class:`EscalationRule` — a persistence window (``threshold``
  occurrences within ``window`` ticks) over a (partition, error-code)
  match, driving an ordered :class:`EscalationStep` chain.  Rung 0 is
  always "whatever the HM tables say", so a system with FDIR configured
  but thresholds never crossed behaves exactly like one without.
* restart-storm throttling — a partition that dies again within
  ``storm_window`` ticks of its last supervised restart, ``storm_limit``
  consecutive times, is *parked* (stopped, never restarted again).
* recovery probation — after a :attr:`~repro.types.RecoveryAction.SWITCH_SCHEDULE`
  rung degrades the module schedule, ``probation`` clean ticks switch it
  back to the nominal schedule and reset all escalation state.
* partition watchdogs — ``watchdogs[partition] = window`` arms a
  PMK-level heartbeat deadline once the partition first kicks it.

Everything here is immutable, hashable and JSON round-trippable (see
:func:`fdir_config_to_dict` / :func:`fdir_config_from_dict`), so an
:class:`FdirConfig` can cross the campaign worker-pool boundary inside a
serialized :class:`~repro.config.schema.SystemConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..exceptions import ConfigurationError
from ..types import ErrorCode, RecoveryAction, Ticks

__all__ = ["EscalationStep", "EscalationRule", "FdirConfig",
           "fdir_config_to_dict", "fdir_config_from_dict"]


@dataclass(frozen=True)
class EscalationStep:
    """One rung of an escalation chain.

    ``schedule`` names the degraded PST for
    :attr:`~repro.types.RecoveryAction.SWITCH_SCHEDULE` steps and must be
    None for every other action.
    """

    action: RecoveryAction
    schedule: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action is RecoveryAction.SWITCH_SCHEDULE:
            if not self.schedule:
                raise ConfigurationError(
                    "SWITCH_SCHEDULE escalation step needs a schedule id")
        elif self.schedule is not None:
            raise ConfigurationError(
                f"escalation step {self.action.value!r} takes no schedule")


@dataclass(frozen=True)
class EscalationRule:
    """Persistence window + chain for one (partition, code) match.

    ``code`` / ``partition`` of None match any code / any partition (a
    None-partition rule keeps *per-partition* state, so two partitions
    tripping the same wildcard rule escalate independently).
    ``threshold`` occurrences within ``window`` ticks advance the chain
    one rung; the occurrence history resets on each advance, so each
    subsequent rung needs a fresh burst of ``threshold`` occurrences.
    """

    code: Optional[ErrorCode] = None
    partition: Optional[str] = None
    window: Ticks = 1000
    threshold: int = 3
    chain: Tuple[EscalationStep, ...] = ()

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(
                f"escalation window must be >= 1 tick, got {self.window}")
        if self.threshold < 1:
            raise ConfigurationError(
                f"escalation threshold must be >= 1, got {self.threshold}")
        if not self.chain:
            raise ConfigurationError("escalation rule needs a non-empty chain")

    def matches(self, code: ErrorCode, partition: Optional[str]) -> bool:
        """Does this rule govern a report of *code* against *partition*?"""
        if self.code is not None and code is not self.code:
            return False
        if self.partition is not None and partition != self.partition:
            return False
        return True


@dataclass(frozen=True)
class FdirConfig:
    """Complete FDIR supervision policy for one AIR module.

    Parameters
    ----------
    rules:
        Escalation rules, consulted in order; the first match governs a
        report (so put specific (partition, code) rules before wildcards).
    storm_window:
        A supervised partition restart followed by another restart-worthy
        report within this many ticks counts toward the storm limit.
        0 disables storm throttling.
    storm_limit:
        Consecutive quick restarts after which the partition is parked.
    probation:
        Clean ticks in degraded mode before switching back to the nominal
        schedule.  0 means degraded mode is permanent.
    watchdogs:
        ``{partition: window}`` heartbeat deadlines.  A watchdog is inert
        until the partition's first kick (so a configured-but-never-kicked
        watchdog changes nothing).
    """

    rules: Tuple[EscalationRule, ...] = ()
    storm_window: Ticks = 0
    storm_limit: int = 3
    probation: Ticks = 0
    watchdogs: Mapping[str, Ticks] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.storm_window < 0:
            raise ConfigurationError(
                f"storm_window must be >= 0, got {self.storm_window}")
        if self.storm_limit < 1:
            raise ConfigurationError(
                f"storm_limit must be >= 1, got {self.storm_limit}")
        if self.probation < 0:
            raise ConfigurationError(
                f"probation must be >= 0, got {self.probation}")
        for partition, window in self.watchdogs.items():
            if window < 1:
                raise ConfigurationError(
                    f"watchdog window for {partition!r} must be >= 1, "
                    f"got {window}")

    def rule_for(self, code: ErrorCode,
                 partition: Optional[str]) -> Optional[EscalationRule]:
        """First rule matching (*code*, *partition*), or None."""
        for rule in self.rules:
            if rule.matches(code, partition):
                return rule
        return None


# ------------------------------------------------------------------ #
# JSON round-trip (mirrors config.loader's enum <-> value convention)
# ------------------------------------------------------------------ #


def fdir_config_to_dict(config: FdirConfig) -> dict:
    """JSON-compatible form of *config* (inverted by
    :func:`fdir_config_from_dict`)."""
    return {
        "rules": [
            {
                "code": rule.code.value if rule.code is not None else None,
                "partition": rule.partition,
                "window": rule.window,
                "threshold": rule.threshold,
                "chain": [
                    {"action": step.action.value, "schedule": step.schedule}
                    for step in rule.chain
                ],
            }
            for rule in config.rules
        ],
        "storm_window": config.storm_window,
        "storm_limit": config.storm_limit,
        "probation": config.probation,
        "watchdogs": dict(sorted(config.watchdogs.items())),
    }


def fdir_config_from_dict(document: Mapping) -> FdirConfig:
    """Rebuild an :class:`FdirConfig` from its dict form."""
    rules = []
    for entry in document.get("rules", []):
        code = entry.get("code")
        rules.append(EscalationRule(
            code=ErrorCode(code) if code is not None else None,
            partition=entry.get("partition"),
            window=entry["window"],
            threshold=entry["threshold"],
            chain=tuple(
                EscalationStep(action=RecoveryAction(step["action"]),
                               schedule=step.get("schedule"))
                for step in entry["chain"]),
        ))
    watchdogs: Dict[str, Ticks] = dict(document.get("watchdogs", {}))
    return FdirConfig(rules=tuple(rules),
                      storm_window=document.get("storm_window", 0),
                      storm_limit=document.get("storm_limit", 3),
                      probation=document.get("probation", 0),
                      watchdogs=watchdogs)
