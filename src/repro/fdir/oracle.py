"""TSP invariant oracle: offline verification of partitioning guarantees.

The paper's central claims are *invariants* — temporal partitioning
(Sect. 3: only the scheduled partition executes), bounded deadline-miss
detection (Sect. 5, Algorithm 3), spatial containment (Sect. 2.4/Fig. 3:
cross-boundary accesses are trapped and reported) and mode-switch
discipline (Sect. 4: PST switches only at MTF boundaries).  The oracle
re-checks them over any recorded :class:`~repro.kernel.trace.Trace`,
with no simulator in sight: a pure function from (trace, config) to a
tuple of structured :class:`InvariantViolation`\\ s, empty iff the run
honored every invariant.

Checked invariants (names appear in ``InvariantViolation.invariant``):

``monotonic-time``
    Event ticks are nondecreasing.
``window-containment``
    Every process dispatch (with a non-None heir) happens inside its
    partition's execution window — no computation outside the window.
``schedule-conformance``
    (Needs *config*.)  Every partition dispatch agrees with the PST in
    force: heir == the table's window owner at the MTF offset.
``mtf-boundary-switch``
    Every ``ScheduleSwitched`` lands on an MTF boundary of the outgoing
    schedule (Algorithm 1, lines 3-7).
``deadline-detection``
    Every miss is detected with latency >= 1 and on the first tick the
    owning partition runs after expiry (Algorithm 3's bound: within one
    clock tick while the partition holds the processor).  Exemptions:
    partitions restarted between expiry and detection, and deadlines
    registered *after* their expiry (an overloaded periodic release
    keeps its nominal deadline, so the store only learns of the miss at
    the late release point) — there the bound runs from registration.
``memory-containment``
    Every ``MemoryFault`` is matched by a same-tick Health Monitor
    event classifying a memory violation for the same partition.
``parked-stays-parked``
    After ``PartitionParked``, the partition never again runs a process
    nor re-enters a starting/normal mode.

The oracle is deliberately trace-order-based (not tick-based) for
same-tick sequences: the trace records causality within a tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..kernel.trace import (
    DeadlineMissed,
    DeadlineRegistered,
    HealthMonitorEvent,
    MemoryFault,
    PartitionDispatched,
    PartitionModeChanged,
    PartitionParked,
    ProcessDispatched,
    ScheduleSwitched,
    Trace,
)
from ..types import ErrorCode, PartitionMode, Ticks

__all__ = ["InvariantViolation", "check_trace", "render_violations"]


@dataclass(frozen=True)
class InvariantViolation:
    """One broken TSP invariant, located in the trace."""

    invariant: str
    tick: Ticks
    detail: str
    partition: Optional[str] = None
    process: Optional[str] = None


_STARTING_OR_NORMAL = frozenset({
    PartitionMode.NORMAL.value,
    PartitionMode.COLD_START.value,
    PartitionMode.WARM_START.value,
})


def check_trace(trace: Trace, config=None,
                max_violations: int = 64) -> Tuple[InvariantViolation, ...]:
    """Verify the TSP invariants over *trace*.

    *config* (a :class:`~repro.config.schema.SystemConfig`) enables the
    schedule-conformance check; without it only trace-intrinsic
    invariants run.  At most *max_violations* are collected (a corrupted
    trace should not produce an unbounded report).
    """
    violations: List[InvariantViolation] = []

    def flag(invariant: str, tick: Ticks, detail: str,
             partition: Optional[str] = None,
             process: Optional[str] = None) -> None:
        if len(violations) < max_violations:
            violations.append(InvariantViolation(
                invariant=invariant, tick=tick, detail=detail,
                partition=partition, process=process))

    model = config.model if config is not None else None
    schedule = model.schedule(model.initial_schedule) if model else None
    last_switch: Ticks = 0

    last_tick: Ticks = 0
    active: Optional[str] = None
    #: partition -> [(start, end), ...] closed dispatch spans (end exclusive);
    #: the currently-active partition's open span is (active_since, None).
    spans: Dict[str, List[Tuple[Ticks, Ticks]]] = {}
    active_since: Ticks = 0
    parked: Dict[str, Ticks] = {}
    #: restart marks for the deadline-detection exemption.
    mode_changes: Dict[str, List[Ticks]] = {}
    #: (partition, process) -> last deadline registration tick.
    registered: Dict[Tuple[str, str], Ticks] = {}
    pending_memory_faults: List[MemoryFault] = []

    def close_active(until: Ticks) -> None:
        if active is not None and until > active_since:
            spans.setdefault(active, []).append((active_since, until))

    def active_between(partition: str, start: Ticks, end: Ticks) -> bool:
        """Was *partition* dispatched at any tick in (start, end)?"""
        if end <= start + 1:
            return False
        for span_start, span_end in spans.get(partition, ()):
            if span_start < end and span_end > start + 1:
                return True
        if partition == active and active_since < end:
            return True
        return False

    def flush_memory_faults(now: Ticks) -> None:
        while pending_memory_faults and pending_memory_faults[0].tick < now:
            fault = pending_memory_faults.pop(0)
            flag("memory-containment", fault.tick,
                 f"memory fault at address {fault.address} has no "
                 f"same-tick HM memoryViolation event",
                 partition=fault.partition)

    for event in trace:
        tick = event.tick
        if tick < last_tick:
            flag("monotonic-time", tick,
                 f"event {event.kind} at tick {tick} after tick {last_tick}")
        else:
            last_tick = tick
        if pending_memory_faults:
            flush_memory_faults(tick)

        event_type = type(event)
        if event_type is PartitionDispatched:
            close_active(tick)
            active = event.heir
            active_since = tick
            if schedule is not None:
                offset = (tick - last_switch) % schedule.major_time_frame
                expected = schedule.active_partition_at(offset)
                if event.heir != expected:
                    flag("schedule-conformance", tick,
                         f"dispatched {event.heir!r} but schedule "
                         f"{schedule.schedule_id!r} assigns offset {offset} "
                         f"to {expected!r}", partition=event.heir)
        elif event_type is ProcessDispatched:
            if event.heir is not None and event.partition != active:
                flag("window-containment", tick,
                     f"process {event.heir!r} dispatched in partition "
                     f"{event.partition!r} while {active!r} holds the "
                     f"processor", partition=event.partition,
                     process=event.heir)
            if event.heir is not None and event.partition in parked:
                flag("parked-stays-parked", tick,
                     f"parked partition ran process {event.heir!r}",
                     partition=event.partition, process=event.heir)
        elif event_type is ScheduleSwitched:
            if schedule is not None:
                mtf = schedule.major_time_frame
                if (tick - last_switch) % mtf != 0:
                    flag("mtf-boundary-switch", tick,
                         f"switch {event.from_schedule!r} -> "
                         f"{event.to_schedule!r} at offset "
                         f"{(tick - last_switch) % mtf} of MTF {mtf}")
                schedule = model.schedule(event.to_schedule)
            last_switch = tick
        elif event_type is DeadlineMissed:
            latency = event.detection_latency
            detected_at = tick
            deadline_time = event.deadline_time
            if latency < 1 or detected_at - deadline_time != latency:
                flag("deadline-detection", tick,
                     f"latency {latency} inconsistent with deadline at "
                     f"{deadline_time} detected at {detected_at}",
                     partition=event.partition, process=event.process)
            elif latency > 1:
                restarted = any(deadline_time < change <= detected_at
                                for change in mode_changes.get(
                                    event.partition, ()))
                # A deadline registered after its own expiry (late
                # periodic release under overload) is only detectable
                # from the registration tick onward.
                known_since = max(deadline_time, registered.get(
                    (event.partition, event.process), deadline_time))
                if not restarted and active_between(
                        event.partition, known_since, detected_at):
                    flag("deadline-detection", tick,
                         f"partition ran between deadline expiry at "
                         f"{deadline_time} and detection at {detected_at} "
                         f"(latency {latency})",
                         partition=event.partition, process=event.process)
        elif event_type is DeadlineRegistered:
            registered[(event.partition, event.process)] = tick
        elif event_type is MemoryFault:
            pending_memory_faults.append(event)
        elif event_type is HealthMonitorEvent:
            if (event.code == ErrorCode.MEMORY_VIOLATION.value
                    and pending_memory_faults):
                pending_memory_faults = [
                    fault for fault in pending_memory_faults
                    if not (fault.tick == tick
                            and fault.partition == event.partition)]
        elif event_type is PartitionModeChanged:
            mode_changes.setdefault(event.partition, []).append(tick)
            if (event.partition in parked
                    and event.new_mode in _STARTING_OR_NORMAL):
                flag("parked-stays-parked", tick,
                     f"parked partition re-entered mode "
                     f"{event.new_mode!r}", partition=event.partition)
        elif event_type is PartitionParked:
            parked[event.partition] = tick

    flush_memory_faults(last_tick + 1)
    return tuple(violations)


def render_violations(
        violations: Tuple[InvariantViolation, ...]) -> str:
    """Human-readable one-line-per-violation report."""
    if not violations:
        return "oracle: all TSP invariants hold"
    lines = [f"oracle: {len(violations)} invariant violation(s)"]
    for violation in violations:
        where = violation.partition or "<module>"
        if violation.process:
            where += f"/{violation.process}"
        lines.append(f"  [{violation.invariant}] tick {violation.tick} "
                     f"{where}: {violation.detail}")
    return "\n".join(lines)
