"""The FDIR supervisor: persistence-aware escalation above the HM tables.

The Health Monitor stays exactly what ARINC 653 says it is — a
classification table mapping one error to one action.  The supervisor
sits *above* it (the DREMS-OS pattern, arXiv:1710.00268): the monitor
classifies and proposes the table action, then hands (report, proposal)
to :meth:`FdirSupervisor.supervise`, which may override it based on
*history*:

* **escalation** — repeated matches of an :class:`~repro.fdir.policy.EscalationRule`
  within its persistence window climb the rule's chain; rung 0 is the
  table's own action, so the chain strictly extends (never replaces)
  the integration-time tables.  Each rung's action fires exactly once —
  on the report that crosses the persistence threshold — and the table
  action resumes while evidence for the next rung re-accumulates;
* **restart-storm throttling** — a partition restarted by supervision
  that promptly earns another restart is eventually *parked*: stopped
  for good, with a :class:`~repro.kernel.trace.PartitionParked` event
  saying so.  Parked partitions stay parked — every later action against
  them is suppressed to IGNORE, and PST switches cannot revive them
  (``apply_change_action`` only restarts NORMAL-mode partitions);
* **mode degradation + probation** — a
  :attr:`~repro.types.RecoveryAction.SWITCH_SCHEDULE` rung requests the
  degraded PST through the ordinary Sect. 4 machinery (effective at the
  MTF boundary, ScheduleChangeActions honored).  A clean ``probation``
  interval with no matching reports switches back to the nominal
  schedule and resets all escalation state.

Determinism: the supervisor is driven only by error reports (trace-stable
between ``run`` and ``run_fast``) and by :meth:`poll` at stepped ticks;
:meth:`next_event_tick` feeds the PMK horizon so the event core never
skips a probation deadline or watchdog expiry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from collections import deque

from ..kernel.trace import (
    EscalationRecovered,
    EscalationStepped,
    PartitionParked,
    Trace,
)
from ..types import ErrorCode, RecoveryAction, Ticks
from .policy import EscalationRule, FdirConfig
from .watchdog import WatchdogService

if TYPE_CHECKING:  # pragma: no cover
    from ..hm.monitor import ErrorReport

__all__ = ["FdirSupervisor"]

#: Actions that (re)start a partition — the ones parking must suppress.
_RESTART_ACTIONS = frozenset({
    RecoveryAction.RESTART_PARTITION,
})


class _RuleState:
    """Mutable per-(rule, partition) escalation state."""

    __slots__ = ("occurrences", "rung")

    def __init__(self) -> None:
        self.occurrences: Deque[Ticks] = deque()
        self.rung = 0


class FdirSupervisor:
    """History-keeping decision layer between Health Monitor and PMK.

    *module* is the PMK (needs ``scheduler.current_schedule`` and
    ``set_module_schedule``); *watchdog*, when given, is polled and its
    expiry horizon folded into :meth:`next_event_tick`.
    """

    def __init__(self, config: FdirConfig, *, module,
                 watchdog: Optional[WatchdogService] = None,
                 trace: Optional[Trace] = None) -> None:
        self.config = config
        self.module = module
        self.watchdog = watchdog
        self._trace = trace
        #: (rule index, partition-or-"<module>") -> escalation state.
        self._states: Dict[Tuple[int, str], _RuleState] = {}
        #: partition -> (last supervised restart tick, quick-restart streak).
        self._storm: Dict[str, Tuple[Ticks, int]] = {}
        #: partition -> total supervised restarts ordered.
        self._restarts: Dict[str, int] = {}
        self._parked: Dict[str, Ticks] = {}
        self._rule_index = {id(rule): index
                            for index, rule in enumerate(config.rules)}
        # Degraded-mode state (single module-wide schedule degradation).
        self._nominal_schedule: Optional[str] = None
        self._degraded_schedule: Optional[str] = None
        self._probation_deadline: Optional[Ticks] = None

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def degraded(self) -> bool:
        """Is the module currently in a supervisor-requested degraded PST?"""
        return self._degraded_schedule is not None

    @property
    def parked(self) -> Tuple[str, ...]:
        """Partitions parked by restart-storm throttling, sorted."""
        return tuple(sorted(self._parked))

    def is_parked(self, partition: Optional[str]) -> bool:
        """Has storm throttling permanently stopped *partition*?"""
        return partition in self._parked

    def restart_count(self, partition: str) -> int:
        """Supervised partition restarts ordered against *partition*."""
        return self._restarts.get(partition, 0)

    def restart_counts(self) -> Tuple[Tuple[str, int], ...]:
        """All supervised restart counts, sorted by partition."""
        return tuple(sorted(self._restarts.items()))

    def rung_of(self, rule: EscalationRule,
                partition: Optional[str]) -> int:
        """Current escalation rung for (*rule*, *partition*); 0 = table."""
        key = (self._rule_index[id(rule)], partition or "<module>")
        state = self._states.get(key)
        return state.rung if state is not None else 0

    # -------------------------------------------------------------- #
    # the supervision hook (called by HealthMonitor.report)
    # -------------------------------------------------------------- #

    def supervise(self, report: "ErrorReport",
                  action: RecoveryAction) -> RecoveryAction:
        """Possibly override the table's *action* for *report*.

        Called after LOG_THEN_ACT thresholding, before execution — the
        returned action is what the HM executes and records.
        """
        partition = report.partition
        now = report.tick
        if partition is not None and partition in self._parked:
            # Parked partitions stay parked: no restarts, no stops, no
            # escalation churn — the report is still logged by the HM.
            return RecoveryAction.IGNORE

        rule = self.config.rule_for(report.code, partition)
        if rule is not None:
            if self.degraded:
                self._extend_probation(now)
            action = self._escalate(rule, report, action)

        if action in _RESTART_ACTIONS and partition is not None:
            action = self._throttle_restart(partition, now, action)
        return action

    # -------------------------------------------------------------- #
    # per-tick polling (PMK clock tick) + event-core horizon
    # -------------------------------------------------------------- #

    def poll(self, now: Ticks) -> None:
        """Fire due watchdogs and, when probation lapses, recover."""
        if self.watchdog is not None:
            self.watchdog.check(now)
        deadline = self._probation_deadline
        if deadline is not None and now >= deadline:
            self._recover(now)

    def next_event_tick(self, now: Ticks) -> Optional[Ticks]:
        """Earliest tick at which the supervisor must run (or None)."""
        horizon = self._probation_deadline
        if self.watchdog is not None:
            expiry = self.watchdog.next_expiry()
            if expiry is not None and (horizon is None or expiry < horizon):
                horizon = expiry
        return horizon

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture escalation/storm/parking/probation state as pure data.

        Rule identities are captured by index (``config.rules`` order),
        which is stable across a rebuild from the same configuration.
        """
        return {
            "states": {key: {"occurrences": list(state.occurrences),
                             "rung": state.rung}
                       for key, state in self._states.items()},
            "storm": dict(self._storm),
            "restarts": dict(self._restarts),
            "parked": dict(self._parked),
            "nominal_schedule": self._nominal_schedule,
            "degraded_schedule": self._degraded_schedule,
            "probation_deadline": self._probation_deadline,
            "watchdog": (self.watchdog.snapshot()
                         if self.watchdog is not None else None),
        }

    def restore(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture onto this supervisor."""
        self._states = {}
        for key, rule_state in state["states"].items():
            rebuilt = _RuleState()
            rebuilt.occurrences = deque(rule_state["occurrences"])
            rebuilt.rung = rule_state["rung"]
            self._states[key] = rebuilt
        self._storm = dict(state["storm"])
        self._restarts = dict(state["restarts"])
        self._parked = dict(state["parked"])
        self._nominal_schedule = state["nominal_schedule"]
        self._degraded_schedule = state["degraded_schedule"]
        self._probation_deadline = state["probation_deadline"]
        if state["watchdog"] is not None and self.watchdog is not None:
            self.watchdog.restore(state["watchdog"])

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #

    def _escalate(self, rule: EscalationRule, report: "ErrorReport",
                  table_action: RecoveryAction) -> RecoveryAction:
        key = (self._rule_index[id(rule)],
               report.partition or "<module>")
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _RuleState()
        now = report.tick
        occurrences = state.occurrences
        occurrences.append(now)
        floor = now - rule.window
        while occurrences and occurrences[0] <= floor:
            occurrences.popleft()
        if (len(occurrences) < rule.threshold
                or state.rung >= len(rule.chain)):
            # Below threshold (or chain exhausted): the integration-time
            # table action stays in force while evidence re-accumulates —
            # each rung demands *fresh* persistence, and firing the
            # escalated action once per step keeps the escalator itself
            # from manufacturing a restart storm.
            return table_action
        state.rung += 1
        occurrences.clear()
        step = rule.chain[state.rung - 1]
        if self._trace is not None:
            self._trace.record(EscalationStepped(
                tick=now, partition=report.partition,
                code=report.code.value, rung=state.rung,
                action=step.action.value))
        if step.action is RecoveryAction.SWITCH_SCHEDULE:
            self._degrade(step.schedule, now)
            return RecoveryAction.SWITCH_SCHEDULE
        return step.action

    def _throttle_restart(self, partition: str, now: Ticks,
                          action: RecoveryAction) -> RecoveryAction:
        window = self.config.storm_window
        if window:
            previous = self._storm.get(partition)
            if previous is not None and now - previous[0] <= window:
                streak = previous[1] + 1
                if streak >= self.config.storm_limit:
                    return self._park(partition, now)
                self._storm[partition] = (now, streak)
            else:
                self._storm[partition] = (now, 0)
        self._restarts[partition] = self._restarts.get(partition, 0) + 1
        return action

    def _park(self, partition: str, now: Ticks) -> RecoveryAction:
        self._parked[partition] = now
        if self._trace is not None:
            self._trace.record(PartitionParked(
                tick=now, partition=partition,
                restarts=self._restarts.get(partition, 0)))
        if self.watchdog is not None:
            self.watchdog.disarm(partition)
        return RecoveryAction.PARK_PARTITION

    def _degrade(self, schedule: str, now: Ticks) -> None:
        if self._degraded_schedule == schedule:
            return  # already degraded to this PST; probation was extended.
        if self._degraded_schedule is None:
            self._nominal_schedule = self.module.scheduler.current_schedule
        self._degraded_schedule = schedule
        self.module.set_module_schedule(schedule, requested_by="fdir")
        self._extend_probation(now)

    def _extend_probation(self, now: Ticks) -> None:
        if self.config.probation:
            self._probation_deadline = now + self.config.probation

    def _recover(self, now: Ticks) -> None:
        nominal = self._nominal_schedule
        self._probation_deadline = None
        self._degraded_schedule = None
        self._nominal_schedule = None
        self._states.clear()
        self._storm.clear()
        if nominal is not None:
            if self.module.scheduler.current_schedule != nominal:
                self.module.set_module_schedule(nominal,
                                                requested_by="fdir")
            if self._trace is not None:
                self._trace.record(EscalationRecovered(
                    tick=now, schedule=nominal))
