"""FDIR: fault detection, isolation and recovery supervision.

The supervision layer between the AIR Health Monitor and the PMK:
declarative escalation policy (:mod:`repro.fdir.policy`), the
history-keeping supervisor (:mod:`repro.fdir.supervisor`), PMK-level
partition watchdogs (:mod:`repro.fdir.watchdog`) and the offline TSP
invariant oracle (:mod:`repro.fdir.oracle`).
"""

from .oracle import InvariantViolation, check_trace, render_violations
from .policy import (
    EscalationRule,
    EscalationStep,
    FdirConfig,
    fdir_config_from_dict,
    fdir_config_to_dict,
)
from .supervisor import FdirSupervisor
from .watchdog import WatchdogService

__all__ = [
    "EscalationRule",
    "EscalationStep",
    "FdirConfig",
    "FdirSupervisor",
    "InvariantViolation",
    "WatchdogService",
    "check_trace",
    "fdir_config_from_dict",
    "fdir_config_to_dict",
    "render_violations",
]
