"""PMK-level partition heartbeat watchdogs.

A hung partition is indistinguishable, from the outside, from one that is
merely unlucky with its windows — unless someone expects it to *say*
something.  The watchdog service holds one deadline per configured
partition: an application process kicks it through the APEX call
``KICK_WATCHDOG`` (a paravirtualized system call in AIR terms — the
deadline lives in the PMK, outside the partition's fault domain, which is
why a crashed partition cannot fake its own liveness).  Silence past the
configured window raises :attr:`~repro.types.ErrorCode.WATCHDOG_EXPIRED`
into the Health Monitor, where tables/escalation decide the response
(default: partition restart).

Event-core compatibility: kicks happen only from APEX calls, which the
event core executes on stepped ticks; expiries are polled by the PMK
clock tick, and :meth:`WatchdogService.next_expiry` feeds the module's
``next_event_tick`` horizon so a fast-skip span never jumps over an
expiry.  A watchdog is *inert* until its first kick — configuring one for
a partition that never kicks changes no trace.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from ..kernel.trace import Trace, WatchdogExpired
from ..types import Ticks

__all__ = ["WatchdogService"]


class WatchdogService:
    """Heartbeat deadlines for configured partitions.

    ``on_expired`` is called with (partition, last_kick_tick, now) for
    each expiry — the PMK routes it into the Health Monitor.
    """

    def __init__(self, windows: Mapping[str, Ticks], *,
                 on_expired: Callable[[str, Ticks, Ticks], None],
                 trace: Optional[Trace] = None) -> None:
        self._windows: Dict[str, Ticks] = dict(windows)
        self._on_expired = on_expired
        self._trace = trace
        #: partition -> (last_kick, deadline); armed watchdogs only.
        self._armed: Dict[str, Tuple[Ticks, Ticks]] = {}
        self._next_expiry: Optional[Ticks] = None
        self.kicks = 0
        self.expiries = 0

    def watches(self, partition: str) -> bool:
        """Is a watchdog configured for *partition*?"""
        return partition in self._windows

    def kick(self, partition: str, now: Ticks) -> bool:
        """Record a heartbeat; arms the watchdog on the first kick.

        Returns False (no-op) when no watchdog is configured for
        *partition*.
        """
        window = self._windows.get(partition)
        if window is None:
            return False
        self.kicks += 1
        self._armed[partition] = (now, now + window)
        self._refresh_next_expiry()
        return True

    def disarm(self, partition: str) -> None:
        """Forget *partition*'s deadline (it re-arms on the next kick)."""
        if self._armed.pop(partition, None) is not None:
            self._refresh_next_expiry()

    def check(self, now: Ticks) -> Tuple[str, ...]:
        """Fire every watchdog whose deadline has passed.

        Expired watchdogs disarm (one report per silence, not one per
        tick); a restarted partition re-arms by kicking again.  Returns
        the expired partition names, sorted for determinism.
        """
        if self._next_expiry is None or now < self._next_expiry:
            return ()
        expired = sorted(partition
                         for partition, (_, deadline) in self._armed.items()
                         if deadline <= now)
        for partition in expired:
            last_kick, _ = self._armed.pop(partition)
            self.expiries += 1
            if self._trace is not None:
                self._trace.record(WatchdogExpired(
                    tick=now, partition=partition, last_kick=last_kick))
            self._on_expired(partition, last_kick, now)
        self._refresh_next_expiry()
        return tuple(expired)

    def next_expiry(self) -> Optional[Ticks]:
        """Earliest armed deadline (the event-core horizon), or None."""
        return self._next_expiry

    def armed(self) -> Tuple[Tuple[str, Ticks, Ticks], ...]:
        """(partition, last_kick, deadline) for armed watchdogs, sorted."""
        return tuple(sorted(
            (partition, last_kick, deadline)
            for partition, (last_kick, deadline) in self._armed.items()))

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture armed deadlines and counters as pure data."""
        return {"armed": dict(self._armed),
                "kicks": self.kicks,
                "expiries": self.expiries}

    def restore(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture onto this service."""
        self._armed = dict(state["armed"])
        self.kicks = state["kicks"]
        self.expiries = state["expiries"]
        self._refresh_next_expiry()

    def _refresh_next_expiry(self) -> None:
        self._next_expiry = (min(deadline for _, deadline
                                 in self._armed.values())
                             if self._armed else None)
