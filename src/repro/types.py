"""Shared enumerations and elementary types used across the library.

Time is measured in integer *clock ticks*, matching the paper's model where
the AIR Partition Scheduler runs at every system clock tick (Sect. 4.3).
``Ticks`` is an alias of :class:`int` kept for documentation value.

The enumerations mirror the paper's formal model:

* :class:`PartitionMode` — eq. (3), the operating mode ``M_m(t)``;
* :class:`ProcessState` — eq. (13), the state ``St_m,q(t)``;
* :class:`ErrorLevel` and :class:`ErrorCode` — the ARINC 653 Health
  Monitoring classification used in Sects. 2.4 and 5;
* :class:`RecoveryAction` — the per-error recovery actions listed in Sect. 5;
* :class:`ScheduleChangeAction` — the per-partition restart behaviour applied
  on a mode-based schedule switch (Sect. 4).
"""

from __future__ import annotations

import enum
from typing import NewType

#: Simulated time, in system clock ticks.
Ticks = int

#: Identifier of a partition (``P_m``), unique system-wide.
PartitionId = NewType("PartitionId", str)

#: Identifier of a process (``tau_m,q``), unique within its partition.
ProcessName = NewType("ProcessName", str)

#: Identifier of a partition scheduling table (``chi_i``).
ScheduleId = NewType("ScheduleId", str)

#: Sentinel relative deadline for processes with no deadline (``D = infinity``).
INFINITE_TIME: Ticks = -1


def is_infinite(value: Ticks) -> bool:
    """Return True if *value* is the infinite-time sentinel (``D = infinity``)."""
    return value == INFINITE_TIME


class PartitionMode(enum.Enum):
    """Operating mode of a partition — eq. (3).

    ``NORMAL`` means the partition is operational with its process scheduler
    active.  ``IDLE`` is a shut-down partition executing no processes.
    ``COLD_START`` and ``WARM_START`` both denote initialization with process
    scheduling disabled, differing in the initial context.
    """

    NORMAL = "normal"
    IDLE = "idle"
    COLD_START = "coldStart"
    WARM_START = "warmStart"

    @property
    def is_starting(self) -> bool:
        """True for the two initialization modes (process scheduling disabled)."""
        return self in (PartitionMode.COLD_START, PartitionMode.WARM_START)


class ProcessState(enum.Enum):
    """State of a process — eq. (13).

    A ``DORMANT`` process is ineligible for resources (not started, or
    stopped).  ``READY`` is able to execute; ``RUNNING`` is the single
    process currently executing; ``WAITING`` is blocked on an event
    (delay, semaphore, period, suspension...).
    """

    DORMANT = "dormant"
    READY = "ready"
    RUNNING = "running"
    WAITING = "waiting"

    @property
    def is_schedulable(self) -> bool:
        """True if the process belongs to ``Ready_m(t)`` — eq. (15)."""
        return self in (ProcessState.READY, ProcessState.RUNNING)


class ErrorLevel(enum.Enum):
    """Scope at which the Health Monitor handles an error (Sect. 2.4)."""

    PROCESS = "process"
    PARTITION = "partition"
    MODULE = "module"


class ErrorCode(enum.Enum):
    """Error identities routed through Health Monitoring tables."""

    DEADLINE_MISSED = "deadlineMissed"
    APPLICATION_ERROR = "applicationError"
    NUMERIC_ERROR = "numericError"
    ILLEGAL_REQUEST = "illegalRequest"
    STACK_OVERFLOW = "stackOverflow"
    MEMORY_VIOLATION = "memoryViolation"
    HARDWARE_FAULT = "hardwareFault"
    POWER_FAILURE = "powerFailure"
    CLOCK_TAMPERING = "clockTampering"
    CONFIG_ERROR = "configError"
    WATCHDOG_EXPIRED = "watchdogExpired"


class RecoveryAction(enum.Enum):
    """Recovery actions available to error handlers (Sect. 5).

    The paper lists: ignore (log only); log a number of times before acting;
    stop the faulty process and reinitialize it or start another; stop the
    faulty process and let the partition recover; restart or stop the
    partition.  Module-level additions (``MODULE_*``) correspond to Sect. 2.4
    "errors detected at system level may lead the entire system to be stopped
    or reinitialized".
    """

    IGNORE = "ignore"
    LOG_THEN_ACT = "logThenAct"
    STOP_PROCESS = "stopProcess"
    STOP_AND_RESTART_PROCESS = "stopAndRestartProcess"
    STOP_PROCESS_PARTITION_RECOVERS = "stopProcessPartitionRecovers"
    RESTART_PARTITION = "restartPartition"
    STOP_PARTITION = "stopPartition"
    MODULE_RESTART = "moduleRestart"
    MODULE_STOP = "moduleStop"
    # FDIR supervision extensions: escalation rungs beyond the ARINC 653
    # table vocabulary (Sect. 4 mode degradation; restart-storm parking).
    SWITCH_SCHEDULE = "switchSchedule"
    PARK_PARTITION = "parkPartition"


class ScheduleChangeAction(enum.Enum):
    """Per-partition restart behaviour on a schedule switch (Sect. 4).

    Applied the first time a partition is dispatched after the switch
    (the paper's reading of ARINC 653 Part 2 — Sect. 4.3).
    """

    IGNORE = "ignore"
    COLD_START = "coldStart"
    WARM_START = "warmStart"


class StartCondition(enum.Enum):
    """Why a partition (re)entered a start mode (ARINC 653 GET_PARTITION_STATUS).

    Lets initialization code distinguish a power-on start from the various
    recovery restarts (Sect. 5's recovery actions all funnel through here).
    """

    NORMAL_START = "normalStart"
    PARTITION_RESTART = "partitionRestart"
    HM_PARTITION_RESTART = "hmPartitionRestart"
    HM_MODULE_RESTART = "hmModuleRestart"


class AccessKind(enum.Enum):
    """Kind of memory access, checked against spatial descriptors (Fig. 3)."""

    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"


class PrivilegeLevel(enum.IntEnum):
    """Execution level of a memory access (Fig. 3's levels of execution).

    Lower value = more privileged, mirroring hardware ring conventions.
    """

    PMK = 0
    POS = 1
    APPLICATION = 2


class QueuingDiscipline(enum.Enum):
    """Ordering of processes blocked on a shared resource (ARINC 653)."""

    FIFO = "fifo"
    PRIORITY = "priority"


class PortDirection(enum.Enum):
    """Direction of an interpartition communication port."""

    SOURCE = "source"
    DESTINATION = "destination"
