"""Per-scenario campaign artifacts: metrics, timelines, flight records.

PR 3 gave single runs ``--metrics-out`` / ``--timeline-out`` exporters on
the ``run``/``demo`` commands; this module carries the same exporters to
the campaign boundary.  A :class:`ScenarioArtifacts` travels in the pool
payloads (it is a tiny frozen dataclass of directory paths — cheap to
pickle), and each worker writes its own scenarios' files directly:
per-scenario filenames never collide, so no cross-process coordination
is needed.

Determinism: the metrics registry is attached *after* the run via
``instrument(simulator, replay=True)``, which replays the recorded trace
through the observer — byte-identical to instrumenting from tick 0 for
the unbounded traces campaigns run with, and crucially *zero cost when
artifacts are off* (no observer rides along with the simulation).  The
emitted metrics and timeline JSON are therefore byte-identical across
worker counts, backends, and telemetry settings; only the flight-recorder
bundles (failure-path, cache-dependent existence) are timing-channel
material.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..obs.telemetry.recorder import FLIGHT_RECORD_LAST_N

__all__ = ["ScenarioArtifacts", "write_scenario_artifacts"]


@dataclass(frozen=True)
class ScenarioArtifacts:
    """Where a campaign drops per-scenario artifacts (None = skip).

    Picklable by construction — it crosses the pool boundary inside
    every work payload.
    """

    metrics_dir: Optional[str] = None
    timeline_dir: Optional[str] = None
    flight_recorder_dir: Optional[str] = None
    flight_record_last_n: int = FLIGHT_RECORD_LAST_N

    @property
    def wants_exports(self) -> bool:
        return self.metrics_dir is not None or \
            self.timeline_dir is not None

    @property
    def enabled(self) -> bool:
        return (self.wants_exports
                or self.flight_recorder_dir is not None)


def write_scenario_artifacts(scenario_id: str, simulator,
                             artifacts: ScenarioArtifacts) -> None:
    """Dump the scenario's metrics/timeline files (post-run, best effort).

    Artifact export must never fail a scenario that simulated correctly,
    so I/O errors are swallowed — the campaign aggregate (and its digest)
    is the authoritative record either way.
    """
    if artifacts.metrics_dir is not None:
        try:
            from ..obs import instrument

            os.makedirs(artifacts.metrics_dir, exist_ok=True)
            observer = instrument(simulator, replay=True)
            try:
                path = os.path.join(artifacts.metrics_dir,
                                    f"{scenario_id}.metrics.json")
                with open(path, "w", encoding="utf-8") as stream:
                    stream.write(observer.collect().to_json() + "\n")
            finally:
                observer.close()
        except Exception:  # noqa: BLE001 — artifacts are best effort
            pass
    if artifacts.timeline_dir is not None:
        try:
            from ..obs import save_timeline

            os.makedirs(artifacts.timeline_dir, exist_ok=True)
            save_timeline(simulator.trace,
                          os.path.join(artifacts.timeline_dir,
                                       f"{scenario_id}.timeline.json"))
        except Exception:  # noqa: BLE001
            pass
