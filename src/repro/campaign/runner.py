"""Campaign execution: serial and worker-pool scenario fan-out.

One scenario is one fully deterministic simulation; a campaign is many of
them.  :func:`run_scenario` is the single unit of work — build the config,
drive the event core through a :class:`~repro.fault.injector.FaultInjector`,
summarize the trace — and is what both the serial loop and the
``multiprocessing`` pool execute.  Faults, crashes and per-scenario
wall-clock timeouts degrade to recorded failure results; one bad scenario
never takes the campaign down.

Determinism invariant (tested): the deterministic report is byte-identical
for any worker count and any chunk size, because every scenario is
self-contained (config factory + seed), results are keyed by scenario id,
and nothing nondeterministic (wall time, delivery order, pid) enters the
deterministic record.

Prefix sharing (on by default, ``prefix_cache=False`` / ``--no-prefix-cache``
to disable): scenarios with a common configuration and seed fork from a
cached :class:`~repro.kernel.snapshot.SimulatorSnapshot` of their shared
fault-free prefix instead of re-simulating it (:mod:`repro.campaign.prefix`).
Forked runs are bit-identical to cold runs, so the determinism invariant
extends across the cache setting: same digests with it on or off.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..fault.injector import FaultInjector
from ..fdir.oracle import check_trace
from ..kernel.simulator import Simulator
from ..kernel.snapshot import SimulatorSnapshot
from ..kernel.trace import (
    DeadlineMissed,
    HealthMonitorEvent,
    MemoryFault,
    ScheduleSwitched,
)
from ..kernel.cycle_cache import CYCLE_CACHE_STAT_KEYS
from ..obs.derived import compact_metrics
from .artifacts import ScenarioArtifacts, write_scenario_artifacts
from .results import (
    STATUS_CRASHED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ScenarioResult,
)
from .scenarios import Scenario

__all__ = [
    "run_scenario",
    "run_serial",
    "run_pool",
    "run_campaign",
    "autodetect_workers",
]

#: Default simulated ticks between wall-clock timeout polls inside a
#: scenario; override per call with ``check_interval``.
TIMEOUT_CHECK_INTERVAL = 20_000


def autodetect_workers() -> int:
    """Usable worker count: the scheduling affinity if the OS exposes it."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _record_failure(scenario, *, status: str, error: str,
                    violations: Sequence = (), simulator=None,
                    injector=None, from_snapshot=None,
                    forked_at: int = -1, publisher=None,
                    artifacts: Optional[ScenarioArtifacts] = None) -> None:
    """Failure-path observability: flight-recorder bundle + crash events.

    Best effort throughout — nothing here may replace or mask the
    scenario's original error.
    """
    path = None
    if artifacts is not None and artifacts.flight_recorder_dir is not None:
        from ..obs.telemetry.recorder import (
            flight_record,
            save_flight_record,
        )

        bundle = flight_record(
            scenario, status=status, error=error, violations=violations,
            simulator=simulator, injector=injector,
            from_snapshot=from_snapshot, forked_at=forked_at,
            last_n=artifacts.flight_record_last_n)
        path = save_flight_record(bundle, artifacts.flight_recorder_dir)
    if publisher is not None:
        publisher.scenario_crashed(scenario.scenario_id, error)
        if path is not None:
            publisher.flight_record(scenario.scenario_id, path)


#: Per-process cycle-cache counter totals, accumulated across every
#: scenario this process executes with the cache armed (None until the
#: first one).  Host-side material for the execution sidecar only.
_CYCLE_CACHE_TOTALS: Optional[Dict[str, int]] = None


def _note_cycle_stats(simulator) -> None:
    """Fold *simulator*'s cycle-cache counters into this process's total."""
    global _CYCLE_CACHE_TOTALS
    stats = getattr(simulator, "cycle_cache_stats", None) \
        if simulator is not None else None
    if not stats:
        return
    if _CYCLE_CACHE_TOTALS is None:
        _CYCLE_CACHE_TOTALS = {key: 0 for key in CYCLE_CACHE_STAT_KEYS}
    for key, value in stats.items():
        _CYCLE_CACHE_TOTALS[key] = _CYCLE_CACHE_TOTALS.get(key, 0) + value


def run_scenario(scenario: Scenario, *,
                 timeout_s: Optional[float] = None,
                 check_interval: int = TIMEOUT_CHECK_INTERVAL,
                 from_snapshot: Optional[SimulatorSnapshot] = None,
                 backend: str = "reference",
                 cycle_cache: bool = False,
                 publisher=None,
                 artifacts: Optional[ScenarioArtifacts] = None
                 ) -> ScenarioResult:
    """Execute one scenario to completion, failure or timeout.

    Any exception — a broken config factory, a fault naming an unknown
    schedule, an internal invariant trip — is captured as a ``crashed``
    result; exceeding *timeout_s* of wall time yields a ``timeout`` result
    with the metrics gathered so far.  Either way the caller gets a
    :class:`ScenarioResult`, never a raised exception.

    *check_interval* bounds the simulated span between wall-clock timeout
    polls (and thus the timeout's detection granularity).

    *from_snapshot* forks the scenario from a checkpoint instead of a cold
    simulator: the snapshot must have been captured from the scenario's
    own configuration, either before its first fault/command tick (a
    fault-free root) or — when the snapshot's ``extras`` carry the fault
    injector's applied log — after any leading slice of its timeline was
    applied (an interior divergence-trie node).  The injector is seeded
    from that log and schedules only the not-yet-applied remainder, and
    the run covers the remaining ``scenario.ticks - snapshot.tick`` ticks.
    The result is bit-identical to a cold run (the snapshot layer's
    contract); only the nondeterministic ``forked_at_tick`` field records
    that a fork happened.

    *backend* selects the execution backend
    (:data:`repro.kernel.simulator.BACKENDS`); the fast backend is
    bit-identical to the reference, so campaign digests are independent
    of it.  *cycle_cache* arms steady-state MTF memoization (DESIGN
    decision 13) on the scenario's simulator — the same bit-identity
    contract, so digests are independent of it too; its host-side hit
    counters accumulate into the per-worker execution sidecar.

    Unless the scenario opts out (``oracle=False``), the finished trace is
    audited by the TSP invariant oracle
    (:func:`repro.fdir.oracle.check_trace`); any violation downgrades an
    otherwise clean run to ``crashed`` with the violations in ``error``.

    *publisher* (a :class:`~repro.obs.telemetry.TelemetryPublisher`)
    streams timing-channel lifecycle events; *artifacts*
    (:class:`~repro.campaign.artifacts.ScenarioArtifacts`) dumps
    per-scenario metrics/timeline files and failure flight-recorder
    bundles.  Both are pure observers: every simulation step — including
    the ``run_fast`` chunking, whose span bounds are computed identically
    whether ``should_abort`` is set or not — is byte-identical with them
    on, off, or partially consumed.

    Constellation scenarios (``is_constellation``) dispatch to
    :func:`repro.constellation.runner.run_constellation_scenario` — same
    contract, N lockstep nodes instead of one simulator.  They never fork
    from snapshots (each constellation is its own locality group).
    """
    if getattr(scenario, "is_constellation", False):
        from ..constellation.runner import run_constellation_scenario

        # Constellations run N lockstep nodes whose simulators the node
        # runner owns; cycle memoization is a single-simulator feature
        # and is simply not armed there.
        return run_constellation_scenario(
            scenario, timeout_s=timeout_s, check_interval=check_interval,
            backend=backend, publisher=publisher, artifacts=artifacts)
    start = time.perf_counter()
    if check_interval < 1:
        raise ValueError(
            f"check_interval must be >= 1, got {check_interval}")
    forked_at = -1
    simulator = None
    injector = None
    if publisher is not None:
        publisher.scenario_started(scenario.scenario_id, scenario.ticks)
    try:
        config = scenario.build_config()
        if from_snapshot is not None:
            simulator = from_snapshot.restore(config, backend=backend,
                                              cycle_cache=cycle_cache)
            forked_at = simulator.now
            if publisher is not None:
                publisher.scenario_forked(scenario.scenario_id, forked_at)
        else:
            simulator = Simulator(config, backend=backend,
                                  cycle_cache=cycle_cache)
        injector = FaultInjector(simulator)
        applied = 0
        if from_snapshot is not None and from_snapshot.extras:
            state = from_snapshot.extras.get("injector")
            if state is not None:
                injector.load_state_dict(state)
                applied = len(injector.log)
        # The merged timeline reproduces the historical heap order exactly
        # (faults first at equal ticks — see Scenario.timeline), so cold
        # runs are bit-identical to the former faults-then-commands
        # scheduling, and forked runs skip exactly the applied slice.
        for tick, fault in scenario.timeline()[applied:]:
            injector.schedule(tick, fault)
        should_abort = None
        if timeout_s is not None:
            deadline = start + timeout_s
            should_abort = lambda: time.perf_counter() > deadline
        if publisher is not None:
            # Progress heartbeats piggyback on the existing abort poll:
            # run_fast's span bounds do not depend on should_abort being
            # set, so publishing from it cannot perturb the simulation.
            inner_abort = should_abort
            live_simulator = simulator

            def should_abort() -> bool:
                publisher.scenario_progress(
                    scenario.scenario_id, live_simulator.now,
                    scenario.ticks)
                return inner_abort() if inner_abort is not None else False
        completed = injector.run_fast(
            scenario.ticks - simulator.now, should_abort=should_abort,
            check_interval=check_interval)
    except Exception as exc:
        _note_cycle_stats(simulator)
        error = f"{type(exc).__name__}: {exc}"
        result = ScenarioResult(
            scenario_id=scenario.scenario_id,
            seed=scenario.seed,
            status=STATUS_CRASHED,
            error=error,
            wall_time_s=time.perf_counter() - start,
            forked_at_tick=forked_at,
        )
        _record_failure(scenario, status=STATUS_CRASHED, error=error,
                        simulator=simulator, injector=injector,
                        from_snapshot=from_snapshot, forked_at=forked_at,
                        publisher=publisher, artifacts=artifacts)
        if publisher is not None:
            publisher.scenario_finished(
                scenario.scenario_id, STATUS_CRASHED,
                result.wall_time_s, forked_at)
        return result
    _note_cycle_stats(simulator)
    trace = simulator.trace
    status = STATUS_OK if completed else STATUS_TIMEOUT
    error = "" if completed else \
        f"exceeded {timeout_s}s wall-clock budget at tick {simulator.now}"
    violations: Sequence = ()
    if completed and scenario.oracle:
        violations = check_trace(trace, config)
        if violations:
            status = STATUS_CRASHED
            error = (f"oracle: {len(violations)} invariant violation(s); "
                     + "; ".join(
                         f"{v.invariant}@{v.tick}: {v.detail}"
                         for v in violations[:3]))
    if status == STATUS_CRASHED:
        _record_failure(scenario, status=status, error=error,
                        violations=violations, simulator=simulator,
                        injector=injector, from_snapshot=from_snapshot,
                        forked_at=forked_at, publisher=publisher,
                        artifacts=artifacts)
    if artifacts is not None and artifacts.wants_exports:
        write_scenario_artifacts(scenario.scenario_id, simulator,
                                 artifacts)
    result = ScenarioResult(
        scenario_id=scenario.scenario_id,
        seed=scenario.seed,
        status=status,
        ticks=simulator.now,
        deadline_misses=trace.count(DeadlineMissed),
        hm_events=trace.count(HealthMonitorEvent),
        schedule_switches=trace.count(ScheduleSwitched),
        memory_faults=trace.count(MemoryFault),
        faults_applied=len(injector.log),
        injections=tuple(
            (record.tick, type(record.fault).__name__, record.status)
            for record in injector.log),
        trace_events=len(trace),
        trace_digest=trace.digest(),
        occupancy=tuple(sorted(simulator.pmk.partition_ticks.items())),
        metrics=compact_metrics(trace),
        error=error,
        wall_time_s=time.perf_counter() - start,
        forked_at_tick=forked_at,
    )
    if publisher is not None:
        publisher.scenario_finished(scenario.scenario_id, status,
                                    result.wall_time_s, forked_at)
    return result


#: Per-worker-process prefix cache, created lazily on the first prefix-
#: enabled scenario and reused across every pool task the worker handles.
#: Module-level so it survives between tasks in the same worker.
_WORKER_PREFIX_CACHE = None

#: Per-worker-process shared-memory transport, keyed by the campaign run
#: id so consecutive campaigns in one long-lived pool never cross-attach.
_WORKER_TRANSPORT = None

#: Per-worker-process telemetry wiring, installed by the pool initializer
#: (:func:`_init_worker_telemetry`): ``(sink, campaign id)`` or None.
_WORKER_TELEMETRY = None

#: Lazily built per-process :class:`TelemetryPublisher` over the wiring.
_WORKER_PUBLISHER = None


def _init_worker_telemetry(sink, campaign_id: str) -> None:
    """Pool initializer: hand each worker the parent's telemetry sink."""
    global _WORKER_TELEMETRY, _WORKER_PUBLISHER
    _WORKER_TELEMETRY = (sink, campaign_id)
    _WORKER_PUBLISHER = None


def _worker_publisher():
    """This worker's publisher, or None when telemetry is off."""
    global _WORKER_PUBLISHER
    if _WORKER_TELEMETRY is None:
        return None
    if _WORKER_PUBLISHER is None:
        from ..obs.telemetry.bus import TelemetryPublisher

        sink, campaign_id = _WORKER_TELEMETRY
        _WORKER_PUBLISHER = TelemetryPublisher(
            sink, campaign_id, worker=str(os.getpid()))
    return _WORKER_PUBLISHER


def _worker_cache():
    global _WORKER_PREFIX_CACHE
    if _WORKER_PREFIX_CACHE is None:
        from .prefix import SnapshotCache

        _WORKER_PREFIX_CACHE = SnapshotCache()
    return _WORKER_PREFIX_CACHE


def _worker_transport(run_id: Optional[str]):
    global _WORKER_TRANSPORT
    if run_id is None:
        return None
    if _WORKER_TRANSPORT is None or _WORKER_TRANSPORT.run_id != run_id:
        from .shm import SnapshotTransport

        _WORKER_TRANSPORT = SnapshotTransport(run_id, probe=False)
    return _WORKER_TRANSPORT


def _run_one(scenario: Scenario, *, timeout_s: Optional[float],
             check_interval: int, prefix_cache: bool,
             backend: str, cycle_cache: bool = False,
             artifacts: Optional[ScenarioArtifacts] = None
             ) -> ScenarioResult:
    """One unit of campaign work, with or without prefix sharing."""
    publisher = _worker_publisher()
    if not prefix_cache:
        return run_scenario(scenario, timeout_s=timeout_s,
                            check_interval=check_interval,
                            backend=backend, cycle_cache=cycle_cache,
                            publisher=publisher,
                            artifacts=artifacts)
    from .prefix import run_with_prefix_cache

    return run_with_prefix_cache(scenario, _worker_cache(),
                                 timeout_s=timeout_s,
                                 check_interval=check_interval,
                                 backend=backend, cycle_cache=cycle_cache,
                                 publisher=publisher,
                                 artifacts=artifacts)


def _pool_worker(payload: Tuple[Scenario, Optional[float], int, bool, str,
                                bool, Optional[ScenarioArtifacts]]
                 ) -> ScenarioResult:
    (scenario, timeout_s, check_interval, prefix_cache, backend,
     cycle_cache, artifacts) = payload
    return _run_one(scenario, timeout_s=timeout_s,
                    check_interval=check_interval,
                    prefix_cache=prefix_cache,
                    backend=backend, cycle_cache=cycle_cache,
                    artifacts=artifacts)


def _group_worker(payload):
    """Run one locality group (scenarios sharing a prefix) in one worker.

    Returns ``(original indices, results, sidecar)`` — the parent
    reassembles results into campaign order by index, so dispatch order
    (``imap_unordered``) never reaches the deterministic report.  The
    sidecar carries this worker's cumulative cache/transport counters
    (keyed by pid on the parent side; later tasks from the same worker
    simply overwrite with larger counts).
    """
    (indices, group, plans, timeout_s, check_interval, backend,
     cycle_cache, run_id, artifacts) = payload
    from .prefix import run_with_prefix_cache

    cache = _worker_cache()
    transport = _worker_transport(run_id)
    publisher = _worker_publisher()
    results = [
        run_with_prefix_cache(scenario, cache, timeout_s=timeout_s,
                              check_interval=check_interval,
                              backend=backend, cycle_cache=cycle_cache,
                              plan=plan,
                              transport=transport, publisher=publisher,
                              artifacts=artifacts)
        for scenario, plan in zip(group, plans)]
    sidecar = {"pid": os.getpid(),
               "prefix_cache": cache.stats(),
               "shm": transport.stats() if transport is not None else None,
               "cycle_cache": dict(_CYCLE_CACHE_TOTALS)
               if _CYCLE_CACHE_TOTALS is not None else None}
    if publisher is not None:
        # Cumulative counters per task; the log consumer reads the last
        # event per (worker, stat) topic as the worker's final value.
        publisher.cache_stats(cache.stats())
        if transport is not None:
            publisher.shm_stats(transport.stats())
        if _CYCLE_CACHE_TOTALS is not None:
            publisher.cycle_cache_stats(_CYCLE_CACHE_TOTALS)
    return indices, results, sidecar


def _plan_campaign(scenarios: Sequence[Scenario], prefix_cache: bool,
                   prefix_depth: Optional[int]):
    """The campaign's divergence trie, or None for root-only sharing.

    ``prefix_depth=0`` (or a disabled cache) turns the trie off entirely:
    execution takes the exact PR 5 root-only path, which is what the
    tree-on == tree-off digest gates compare against.
    """
    if not prefix_cache or prefix_depth == 0:
        return None
    from .prefix import build_divergence_trie

    return build_divergence_trie(scenarios, max_depth=prefix_depth)


def _close_bus(bus, results: Sequence[ScenarioResult],
               telemetry: Optional[Dict]) -> None:
    """Finish the aggregator (deterministic block + log close) and stash
    its stream counters into the reporting sidecar."""
    if bus is None:
        return
    stats = bus.finish(results)
    if telemetry is not None:
        telemetry["telemetry_stream"] = stats


def run_serial(scenarios: Sequence[Scenario], *,
               timeout_s: Optional[float] = None,
               check_interval: int = TIMEOUT_CHECK_INTERVAL,
               prefix_cache: bool = True,
               backend: str = "reference",
               cycle_cache: bool = False,
               prefix_depth: Optional[int] = None,
               telemetry: Optional[Dict] = None,
               bus=None,
               artifacts: Optional[ScenarioArtifacts] = None
               ) -> List[ScenarioResult]:
    """Run every scenario in this process, in order.

    With *prefix_cache* (the default) scenarios sharing a configuration
    and seed fork from cached snapshots of their common prefixes — the
    fault-free root and, via the divergence trie, interior checkpoints
    after shared faults (*prefix_depth* caps the trie depth; ``0`` =
    root-only, ``None`` = unlimited); results are bit-identical either
    way.  *telemetry*, when a dict, receives nondeterministic cache
    counters for the reporting sidecar.

    *bus* (a :class:`~repro.obs.telemetry.TelemetryAggregator`) turns on
    live streaming: the serial loop publishes straight into the
    aggregator (no queue), and the deterministic event block is derived
    from the finished results on close.  *artifacts* dumps per-scenario
    metrics/timeline files and failure flight-recorder bundles.
    """
    publisher = None
    if bus is not None:
        from ..obs.telemetry.bus import TelemetryPublisher

        publisher = TelemetryPublisher(bus.start(None), bus.campaign_id,
                                       worker="serial")
    cycle_before = dict(_CYCLE_CACHE_TOTALS or {})
    if not prefix_cache:
        results = [run_scenario(scenario, timeout_s=timeout_s,
                                check_interval=check_interval,
                                backend=backend, cycle_cache=cycle_cache,
                                publisher=publisher,
                                artifacts=artifacts)
                   for scenario in scenarios]
        if telemetry is not None:
            _serial_cycle_telemetry(telemetry, cycle_before, cycle_cache)
        if publisher is not None and cycle_cache:
            publisher.cycle_cache_stats(
                _cycle_totals_since(cycle_before))
        _close_bus(bus, results, telemetry)
        return results
    from .prefix import SnapshotCache, run_with_prefix_cache

    plans = _plan_campaign(scenarios, prefix_cache, prefix_depth)
    cache = SnapshotCache()
    results = [
        run_with_prefix_cache(
            scenario, cache, timeout_s=timeout_s,
            check_interval=check_interval, backend=backend,
            cycle_cache=cycle_cache,
            plan=None if plans is None else plans[scenario.scenario_id],
            publisher=publisher, artifacts=artifacts)
        for scenario in scenarios]
    if telemetry is not None:
        telemetry["prefix_tree"] = _tree_telemetry(plans, prefix_depth)
        telemetry["workers"] = {
            "serial": {"prefix_cache": cache.stats(), "shm": None}}
        _serial_cycle_telemetry(telemetry, cycle_before, cycle_cache)
    if publisher is not None:
        publisher.cache_stats(cache.stats())
        if cycle_cache:
            publisher.cycle_cache_stats(_cycle_totals_since(cycle_before))
    _close_bus(bus, results, telemetry)
    return results


def _cycle_totals_since(before: Dict[str, int]) -> Dict[str, int]:
    """This process's cycle-cache counters accumulated since *before*."""
    totals = _CYCLE_CACHE_TOTALS or {}
    return {key: totals.get(key, 0) - before.get(key, 0)
            for key in CYCLE_CACHE_STAT_KEYS}


def _serial_cycle_telemetry(telemetry: Dict, before: Dict[str, int],
                            cycle_cache: bool) -> None:
    """Stash this campaign's serial-process cycle-cache counters."""
    if not cycle_cache:
        telemetry["cycle_cache"] = {"enabled": False}
        return
    delta = _cycle_totals_since(before)
    telemetry["cycle_cache"] = {"enabled": True, **delta}
    workers = telemetry.setdefault("workers", {})
    workers.setdefault("serial", {})["cycle_cache"] = delta


def _tree_telemetry(plans, prefix_depth: Optional[int]) -> Dict:
    if plans is None:
        return {"enabled": False, "depth_limit": prefix_depth}
    groups = {plan.group_key for plan in plans.values()}
    levels = {level for plan in plans.values()
              for level in plan.capture_levels}
    return {
        "enabled": True,
        "depth_limit": prefix_depth,
        "groups": len(groups),
        "planned_scenarios": sum(
            1 for plan in plans.values() if plan.capture_levels),
        "capture_levels": len(levels),
        "max_depth_planned": max(
            (level[0] for level in levels), default=0),
    }


def run_pool(scenarios: Sequence[Scenario], *,
             workers: Optional[int] = None,
             chunksize: Optional[int] = None,
             timeout_s: Optional[float] = None,
             check_interval: int = TIMEOUT_CHECK_INTERVAL,
             prefix_cache: bool = True,
             backend: str = "reference",
             cycle_cache: bool = False,
             prefix_depth: Optional[int] = None,
             locality: bool = True,
             shm: Optional[bool] = None,
             telemetry: Optional[Dict] = None,
             bus=None,
             artifacts: Optional[ScenarioArtifacts] = None
             ) -> List[ScenarioResult]:
    """Fan scenarios out over a ``multiprocessing`` pool.

    With the divergence trie on (*prefix_cache* and ``prefix_depth !=
    0``) and *locality* (the default), scenarios are grouped by their
    deepest shared prefix key and whole groups are handed to the same
    worker via ``imap_unordered`` — the worker that builds a prefix
    checkpoint is the worker that reuses it.  Results are reassembled
    into campaign order by original index, so the result list matches
    the scenario list index-for-index exactly as ``pool.map`` would, and
    the deterministic report is provably independent of dispatch: every
    scenario is self-contained, results are re-sorted by scenario id in
    the aggregate, and nothing nondeterministic enters the deterministic
    record.  *chunksize* caps scenarios per group task (default: each
    group split across the worker count).

    *shm* (default: auto) additionally carries checkpoints across the
    pool through ``multiprocessing.shared_memory``: the parent
    pre-builds and publishes the chain of every group split across
    multiple workers (so its workers start with a zero-copy attach
    instead of racing to cold-build the same chain), and workers
    publish whatever they build so later chunks attach instead of
    rebuilding.  It degrades transparently wherever shared memory or
    the fork start method is unavailable.

    Worker crashes are absorbed inside :func:`run_scenario`; only an
    interpreter-level death (signal, OOM kill) can still fail the pool.
    Each worker process keeps its own prefix cache (snapshots are cheap
    to hold, and sharing one across processes would serialize on it).

    With the trie off this is the PR 5 path: order-preserving
    ``pool.map`` over per-scenario payloads, root-only prefix sharing.
    """
    if workers is None:
        workers = autodetect_workers()
    if workers <= 1 or len(scenarios) <= 1:
        return run_serial(scenarios, timeout_s=timeout_s,
                          check_interval=check_interval,
                          prefix_cache=prefix_cache,
                          backend=backend, cycle_cache=cycle_cache,
                          prefix_depth=prefix_depth,
                          telemetry=telemetry, bus=bus,
                          artifacts=artifacts)
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    # Telemetry: the aggregator owns a queue in this (parent) process and
    # drains it on a daemon thread, so events stream live even while the
    # blocking map/imap call below is in flight; workers receive the
    # queue sink through the pool initializer.
    initializer = None
    initargs: Tuple = ()
    if bus is not None:
        initializer = _init_worker_telemetry
        initargs = (bus.start(context), bus.campaign_id)
    plans = _plan_campaign(scenarios, prefix_cache, prefix_depth)
    if plans is None or not locality:
        if chunksize is None:
            # Small chunks keep the pool load-balanced without paying
            # per-item IPC for every scenario; determinism never depends
            # on this.
            chunksize = max(1, len(scenarios) // (workers * 4))
        payloads = [(scenario, timeout_s, check_interval, prefix_cache,
                     backend, cycle_cache, artifacts)
                    for scenario in scenarios]
        with context.Pool(processes=workers, initializer=initializer,
                          initargs=initargs) as pool:
            results = pool.map(_pool_worker, payloads, chunksize=chunksize)
        if telemetry is not None:
            telemetry["prefix_tree"] = _tree_telemetry(None, prefix_depth)
            telemetry["cycle_cache"] = {"enabled": cycle_cache}
        _close_bus(bus, results, telemetry)
        return results

    # Locality-aware dispatch: group scenarios by their deepest shared
    # prefix key (first-appearance order), split each group into at most
    # chunksize-sized tasks, and reassemble results by original index.
    groups: "OrderedDict[str, List[int]]" = OrderedDict()
    for index, scenario in enumerate(scenarios):
        key = plans[scenario.scenario_id].group_key
        groups.setdefault(key, []).append(index)

    transport = None
    run_id = None
    if shm is None:
        from .shm import shm_available

        shm = context.get_start_method() == "fork" and shm_available()
    if shm:
        from .shm import SnapshotTransport

        transport = SnapshotTransport()  # parent: names + tracker probe
        run_id = transport.run_id

    payloads = []
    split_groups: List[str] = []
    for key, indices in groups.items():
        cap = chunksize if chunksize else max(
            1, -(-len(indices) // workers))
        if len(indices) > cap:
            split_groups.append(key)
        for start in range(0, len(indices), cap):
            chunk = indices[start:start + cap]
            payloads.append((
                tuple(chunk),
                tuple(scenarios[i] for i in chunk),
                tuple(plans[scenarios[i].scenario_id] for i in chunk),
                timeout_s, check_interval, backend, cycle_cache,
                run_id, artifacts))

    if transport is not None and split_groups:
        # Pre-build each split group's checkpoint chain once in the
        # parent and publish it, so the workers sharing that group all
        # start with a guaranteed zero-copy attach instead of racing
        # each other to cold-build the same chain (workers launched
        # together would otherwise each miss every level before anyone
        # has published it).  Single-chunk groups skip this: their one
        # worker builds the chain exactly once anyway, and serializing
        # that build into the parent would only delay dispatch.
        from .prefix import SnapshotCache, _build_plan_levels

        prebuild_cache = SnapshotCache()
        for key in split_groups:
            scenario = scenarios[groups[key][0]]
            plan = plans[scenario.scenario_id]
            if plan.capture_levels:
                _build_plan_levels(scenario, prebuild_cache, plan,
                                   None, -1, backend=backend,
                                   check_interval=check_interval,
                                   transport=transport)

    results: List[Optional[ScenarioResult]] = [None] * len(scenarios)
    worker_stats: Dict[str, Dict] = {}
    with context.Pool(processes=workers, initializer=initializer,
                      initargs=initargs) as pool:
        for indices, group_results, sidecar in pool.imap_unordered(
                _group_worker, payloads, chunksize=1):
            for index, result in zip(indices, group_results):
                results[index] = result
            worker_stats[str(sidecar["pid"])] = sidecar
    unlinked = 0
    if transport is not None:
        unlinked = transport.unlink_all(
            {(key, tick) for plan in plans.values()
             for _, key, tick in plan.capture_levels})
    if telemetry is not None:
        telemetry["prefix_tree"] = _tree_telemetry(plans, prefix_depth)
        telemetry["workers"] = {
            pid: {"prefix_cache": sidecar["prefix_cache"],
                  "shm": sidecar["shm"],
                  "cycle_cache": sidecar.get("cycle_cache")}
            for pid, sidecar in sorted(worker_stats.items())}
        cycle_totals: Dict[str, int] = {}
        for sidecar in worker_stats.values():
            for name, value in (sidecar.get("cycle_cache") or {}).items():
                cycle_totals[name] = cycle_totals.get(name, 0) + value
        telemetry["cycle_cache"] = {"enabled": cycle_cache,
                                    **cycle_totals}
        shm_totals: Dict[str, int] = {}
        for sidecar in worker_stats.values():
            for name, value in (sidecar["shm"] or {}).items():
                shm_totals[name] = shm_totals.get(name, 0) + value
        if transport is not None:
            # Parent pre-build publishes count toward the totals too —
            # without them "every existing segment was published exactly
            # once" would look violated in the sidecar.
            for name, value in transport.stats().items():
                shm_totals[name] = shm_totals.get(name, 0) + value
        telemetry["shm"] = {"enabled": transport is not None,
                            "unlinked_segments": unlinked, **shm_totals}
    _close_bus(bus, results, telemetry)  # type: ignore[arg-type]
    return results  # type: ignore[return-value]


def run_campaign(scenarios: Sequence[Scenario], *,
                 workers: int = 1,
                 chunksize: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 check_interval: int = TIMEOUT_CHECK_INTERVAL,
                 prefix_cache: bool = True,
                 backend: str = "reference",
                 cycle_cache: bool = False,
                 prefix_depth: Optional[int] = None,
                 locality: bool = True,
                 shm: Optional[bool] = None,
                 telemetry: Optional[Dict] = None,
                 bus=None,
                 artifacts: Optional[ScenarioArtifacts] = None
                 ) -> List[ScenarioResult]:
    """Serial (`workers <= 1`) or pooled campaign execution.

    *bus* streams live telemetry (see :func:`run_serial` /
    :func:`run_pool`); *artifacts* dumps per-scenario files.  Both leave
    every deterministic output — campaign digest, trace digests, oracle
    verdicts — byte-identical to a run without them, as does
    *cycle_cache* (steady-state MTF memoization, off by default).
    """
    if workers <= 1:
        return run_serial(scenarios, timeout_s=timeout_s,
                          check_interval=check_interval,
                          prefix_cache=prefix_cache,
                          backend=backend, cycle_cache=cycle_cache,
                          prefix_depth=prefix_depth,
                          telemetry=telemetry, bus=bus,
                          artifacts=artifacts)
    return run_pool(scenarios, workers=workers, chunksize=chunksize,
                    timeout_s=timeout_s, check_interval=check_interval,
                    prefix_cache=prefix_cache,
                    backend=backend, cycle_cache=cycle_cache,
                    prefix_depth=prefix_depth,
                    locality=locality, shm=shm, telemetry=telemetry,
                    bus=bus, artifacts=artifacts)
