"""Campaign execution: serial and worker-pool scenario fan-out.

One scenario is one fully deterministic simulation; a campaign is many of
them.  :func:`run_scenario` is the single unit of work — build the config,
drive the event core through a :class:`~repro.fault.injector.FaultInjector`,
summarize the trace — and is what both the serial loop and the
``multiprocessing`` pool execute.  Faults, crashes and per-scenario
wall-clock timeouts degrade to recorded failure results; one bad scenario
never takes the campaign down.

Determinism invariant (tested): the deterministic report is byte-identical
for any worker count and any chunk size, because every scenario is
self-contained (config factory + seed), results are keyed by scenario id,
and nothing nondeterministic (wall time, delivery order, pid) enters the
deterministic record.

Prefix sharing (on by default, ``prefix_cache=False`` / ``--no-prefix-cache``
to disable): scenarios with a common configuration and seed fork from a
cached :class:`~repro.kernel.snapshot.SimulatorSnapshot` of their shared
fault-free prefix instead of re-simulating it (:mod:`repro.campaign.prefix`).
Forked runs are bit-identical to cold runs, so the determinism invariant
extends across the cache setting: same digests with it on or off.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import List, Optional, Sequence, Tuple

from ..fault.faults import ScheduleSwitchFault
from ..fault.injector import FaultInjector
from ..fdir.oracle import check_trace
from ..kernel.simulator import Simulator
from ..kernel.snapshot import SimulatorSnapshot
from ..kernel.trace import (
    DeadlineMissed,
    HealthMonitorEvent,
    MemoryFault,
    ScheduleSwitched,
)
from ..obs.derived import compact_metrics
from .results import (
    STATUS_CRASHED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ScenarioResult,
)
from .scenarios import Scenario

__all__ = [
    "run_scenario",
    "run_serial",
    "run_pool",
    "run_campaign",
    "autodetect_workers",
]

#: Default simulated ticks between wall-clock timeout polls inside a
#: scenario; override per call with ``check_interval``.
TIMEOUT_CHECK_INTERVAL = 20_000


def autodetect_workers() -> int:
    """Usable worker count: the scheduling affinity if the OS exposes it."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_scenario(scenario: Scenario, *,
                 timeout_s: Optional[float] = None,
                 check_interval: int = TIMEOUT_CHECK_INTERVAL,
                 from_snapshot: Optional[SimulatorSnapshot] = None,
                 backend: str = "reference") -> ScenarioResult:
    """Execute one scenario to completion, failure or timeout.

    Any exception — a broken config factory, a fault naming an unknown
    schedule, an internal invariant trip — is captured as a ``crashed``
    result; exceeding *timeout_s* of wall time yields a ``timeout`` result
    with the metrics gathered so far.  Either way the caller gets a
    :class:`ScenarioResult`, never a raised exception.

    *check_interval* bounds the simulated span between wall-clock timeout
    polls (and thus the timeout's detection granularity).

    *from_snapshot* forks the scenario from a checkpoint instead of a cold
    simulator: the snapshot must have been captured from the scenario's
    own configuration at or before its first fault/command tick, and the
    run covers the remaining ``scenario.ticks - snapshot.tick`` ticks.
    The result is bit-identical to a cold run (the snapshot layer's
    contract); only the nondeterministic ``forked_at_tick`` field records
    that a fork happened.

    *backend* selects the execution backend
    (:data:`repro.kernel.simulator.BACKENDS`); the fast backend is
    bit-identical to the reference, so campaign digests are independent
    of it.

    Unless the scenario opts out (``oracle=False``), the finished trace is
    audited by the TSP invariant oracle
    (:func:`repro.fdir.oracle.check_trace`); any violation downgrades an
    otherwise clean run to ``crashed`` with the violations in ``error``.
    """
    start = time.perf_counter()
    if check_interval < 1:
        raise ValueError(
            f"check_interval must be >= 1, got {check_interval}")
    forked_at = -1
    try:
        config = scenario.build_config()
        if from_snapshot is not None:
            simulator = from_snapshot.restore(config, backend=backend)
            forked_at = simulator.now
        else:
            simulator = Simulator(config, backend=backend)
        injector = FaultInjector(simulator)
        for tick, fault in scenario.faults:
            injector.schedule(tick, fault)
        for tick, schedule_id in scenario.schedule_commands:
            injector.schedule(tick, ScheduleSwitchFault(schedule_id))
        should_abort = None
        if timeout_s is not None:
            deadline = start + timeout_s
            should_abort = lambda: time.perf_counter() > deadline
        completed = injector.run_fast(
            scenario.ticks - simulator.now, should_abort=should_abort,
            check_interval=check_interval)
    except Exception as exc:
        return ScenarioResult(
            scenario_id=scenario.scenario_id,
            seed=scenario.seed,
            status=STATUS_CRASHED,
            error=f"{type(exc).__name__}: {exc}",
            wall_time_s=time.perf_counter() - start,
            forked_at_tick=forked_at,
        )
    trace = simulator.trace
    status = STATUS_OK if completed else STATUS_TIMEOUT
    error = "" if completed else \
        f"exceeded {timeout_s}s wall-clock budget at tick {simulator.now}"
    if completed and scenario.oracle:
        violations = check_trace(trace, config)
        if violations:
            status = STATUS_CRASHED
            error = (f"oracle: {len(violations)} invariant violation(s); "
                     + "; ".join(
                         f"{v.invariant}@{v.tick}: {v.detail}"
                         for v in violations[:3]))
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        seed=scenario.seed,
        status=status,
        ticks=simulator.now,
        deadline_misses=trace.count(DeadlineMissed),
        hm_events=trace.count(HealthMonitorEvent),
        schedule_switches=trace.count(ScheduleSwitched),
        memory_faults=trace.count(MemoryFault),
        faults_applied=len(injector.log),
        injections=tuple(
            (record.tick, type(record.fault).__name__, record.status)
            for record in injector.log),
        trace_events=len(trace),
        trace_digest=trace.digest(),
        occupancy=tuple(sorted(simulator.pmk.partition_ticks.items())),
        metrics=compact_metrics(trace),
        error=error,
        wall_time_s=time.perf_counter() - start,
        forked_at_tick=forked_at,
    )


#: Per-worker-process prefix cache, created lazily on the first prefix-
#: enabled scenario and reused across every ``pool.map`` chunk the worker
#: handles.  Module-level so it survives between tasks in the same worker.
_WORKER_PREFIX_CACHE = None


def _run_one(scenario: Scenario, *, timeout_s: Optional[float],
             check_interval: int, prefix_cache: bool,
             backend: str) -> ScenarioResult:
    """One unit of campaign work, with or without prefix sharing."""
    global _WORKER_PREFIX_CACHE
    if not prefix_cache:
        return run_scenario(scenario, timeout_s=timeout_s,
                            check_interval=check_interval,
                            backend=backend)
    from .prefix import SnapshotCache, run_with_prefix_cache

    if _WORKER_PREFIX_CACHE is None:
        _WORKER_PREFIX_CACHE = SnapshotCache()
    return run_with_prefix_cache(scenario, _WORKER_PREFIX_CACHE,
                                 timeout_s=timeout_s,
                                 check_interval=check_interval,
                                 backend=backend)


def _pool_worker(payload: Tuple[Scenario, Optional[float], int, bool, str]
                 ) -> ScenarioResult:
    scenario, timeout_s, check_interval, prefix_cache, backend = payload
    return _run_one(scenario, timeout_s=timeout_s,
                    check_interval=check_interval,
                    prefix_cache=prefix_cache,
                    backend=backend)


def run_serial(scenarios: Sequence[Scenario], *,
               timeout_s: Optional[float] = None,
               check_interval: int = TIMEOUT_CHECK_INTERVAL,
               prefix_cache: bool = True,
               backend: str = "reference") -> List[ScenarioResult]:
    """Run every scenario in this process, in order.

    With *prefix_cache* (the default) scenarios sharing a configuration
    and seed fork from a cached snapshot of their common fault-free
    prefix; results are bit-identical either way.
    """
    from .prefix import SnapshotCache, run_with_prefix_cache

    if not prefix_cache:
        return [run_scenario(scenario, timeout_s=timeout_s,
                             check_interval=check_interval,
                             backend=backend)
                for scenario in scenarios]
    cache = SnapshotCache()
    return [run_with_prefix_cache(scenario, cache, timeout_s=timeout_s,
                                  check_interval=check_interval,
                                  backend=backend)
            for scenario in scenarios]


def run_pool(scenarios: Sequence[Scenario], *,
             workers: Optional[int] = None,
             chunksize: Optional[int] = None,
             timeout_s: Optional[float] = None,
             check_interval: int = TIMEOUT_CHECK_INTERVAL,
             prefix_cache: bool = True,
             backend: str = "reference") -> List[ScenarioResult]:
    """Fan scenarios out over a ``multiprocessing`` pool.

    ``pool.map`` preserves input order, so the result list matches the
    scenario list index-for-index regardless of which worker ran what.
    Worker crashes are absorbed inside :func:`run_scenario`; only an
    interpreter-level death (signal, OOM kill) can still fail the pool.
    Each worker process keeps its own prefix cache (snapshots are cheap
    to hold, and sharing one across processes would serialize on it).
    """
    if workers is None:
        workers = autodetect_workers()
    if workers <= 1 or len(scenarios) <= 1:
        return run_serial(scenarios, timeout_s=timeout_s,
                          check_interval=check_interval,
                          prefix_cache=prefix_cache,
                          backend=backend)
    if chunksize is None:
        # Small chunks keep the pool load-balanced without paying per-item
        # IPC for every scenario; determinism never depends on this.
        chunksize = max(1, len(scenarios) // (workers * 4))
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    payloads = [(scenario, timeout_s, check_interval, prefix_cache, backend)
                for scenario in scenarios]
    with context.Pool(processes=workers) as pool:
        return pool.map(_pool_worker, payloads, chunksize=chunksize)


def run_campaign(scenarios: Sequence[Scenario], *,
                 workers: int = 1,
                 chunksize: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 check_interval: int = TIMEOUT_CHECK_INTERVAL,
                 prefix_cache: bool = True,
                 backend: str = "reference") -> List[ScenarioResult]:
    """Serial (`workers <= 1`) or pooled campaign execution."""
    if workers <= 1:
        return run_serial(scenarios, timeout_s=timeout_s,
                          check_interval=check_interval,
                          prefix_cache=prefix_cache,
                          backend=backend)
    return run_pool(scenarios, workers=workers, chunksize=chunksize,
                    timeout_s=timeout_s, check_interval=check_interval,
                    prefix_cache=prefix_cache,
                    backend=backend)
