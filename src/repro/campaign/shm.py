"""Shared-memory snapshot transport for prefix-sharing worker pools.

Without it, every worker process pays one cold build per prefix checkpoint
it needs (per-worker :class:`~repro.campaign.prefix.SnapshotCache`s do not
see each other).  With it, the first worker to build a checkpoint publishes
the snapshot's pickle-protocol-5 form — main stream plus out-of-band
buffers, via :meth:`SimulatorSnapshot.to_buffers` — into a named
``multiprocessing.shared_memory`` segment; sibling workers attach the
segment and unpickle straight out of the mapping (``pickle.loads`` over
memoryviews into the segment — no intermediate copy of the payload), which
turns N-workers × cold-build into 1 × build + (N-1) × attach.

The transport is strictly an optimization with *transparent degradation*:
every failure path — segment missing (publisher hasn't finished), torn
write (``ready`` flag unset), create race, platform without shared memory
— returns ``None``/``False`` and the caller falls back to the per-worker
build that PR 5 always did.  Correctness never depends on a fetch
succeeding, so no path ever blocks or waits on a peer.

Lifecycle (fork start method only, see :func:`shm_available`):

* the parent creates the transport — generating the run id that namespaces
  every segment — and touches a probe segment so the multiprocessing
  resource tracker exists *before* the pool forks (children then share the
  parent's tracker, keeping register/unregister calls balanced in one
  place);
* workers inherit the run id, publish checkpoints as they build them
  (create races resolve via ``FileExistsError`` — first writer wins) and
  keep every attached segment mapped for the life of the process (the
  unpickled snapshot may alias the mapping);
* after the pool closes, the parent — which knows every plannable
  ``(key, tick)`` from the divergence trie — attaches and unlinks each
  segment (:meth:`SnapshotTransport.unlink_all`), releasing the backing
  memory.

Segment names are deterministic functions of ``(run id, key, tick)`` and
kept short (POSIX shm names are capped at 31 bytes on some platforms).

The spawn start method is deliberately unsupported: each spawned process
runs its own resource tracker, and a tracker that registered a segment it
did not unlink "cleans it up" on exit — unlinking segments out from under
live siblings.  Under fork there is exactly one tracker, inherited.
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
import uuid
from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Optional, Tuple

from ..kernel.snapshot import SimulatorSnapshot
from ..types import Ticks

__all__ = ["SnapshotTransport", "shm_available"]

#: Header magic: identifies a segment as a snapshot transport payload.
_MAGIC = 0x52505346  # "RPSF"

#: Fixed header: magic u32, ready u32, main_len u64, nbuf u32
#: (little-endian, unaligned), then nbuf u64 buffer lengths, then the
#: main pickle stream, then the out-of-band buffers back to back.
_HEADER = struct.Struct("<IIQI")


def shm_available() -> bool:
    """True when the shared-memory transport can run on this host.

    Requires the ``fork`` start method (one inherited resource tracker —
    see the module docstring for why spawn's per-process trackers would
    unlink live segments) and a working ``multiprocessing.shared_memory``.
    """
    return "fork" in multiprocessing.get_all_start_methods()


class SnapshotTransport:
    """Publish/fetch prefix snapshots through named shared memory.

    One instance per process; workers in the same campaign share the
    parent's *run_id* (it namespaces the segments) but construct their
    own transport object post-fork.  All counters are nondeterministic
    sidecar material.
    """

    #: The fixed key set :meth:`stats` emits.  The governed telemetry
    #: namespace constrains ``worker/<n>/shm/<stat>`` to this set.
    STAT_KEYS = ("publishes", "publish_races", "publish_failures",
                 "attaches", "attach_failures", "fetch_misses",
                 "memo_hits")

    def __init__(self, run_id: Optional[str] = None, *,
                 probe: bool = True) -> None:
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:6]
        #: (key, tick) -> memoized live snapshot from a prior fetch.
        self._attached: Dict[Tuple[str, Ticks], SimulatorSnapshot] = {}
        #: Attached segments, kept mapped: the unpickled snapshots may
        #: alias these mappings (zero-copy), so they live as long as we do.
        self._segments: List[shared_memory.SharedMemory] = []
        self.publishes = 0
        self.publish_races = 0
        self.publish_failures = 0
        self.attaches = 0
        self.attach_failures = 0
        self.fetch_misses = 0
        self.memo_hits = 0
        if probe:
            self._spawn_tracker()

    def _spawn_tracker(self) -> None:
        """Force the resource tracker into existence (parent side, pre-fork)."""
        try:
            segment = shared_memory.SharedMemory(
                name=self._segment_name("probe", 0), create=True, size=1)
            segment.close()
            segment.unlink()
        except Exception:  # noqa: BLE001 — the probe is best-effort
            pass

    def _segment_name(self, key: str, tick: Ticks) -> str:
        # "rp" + 6 run-id chars + 10 key chars + tick digits stays well
        # under the 31-byte POSIX shm name cap.
        return f"rp{self.run_id}-{key[:10]}-{tick}"

    # ------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------ #

    def publish(self, key: str, tick: Ticks,
                snapshot: SimulatorSnapshot) -> bool:
        """Make *snapshot* attachable by sibling workers.  Best effort.

        First writer wins: a create race (sibling already publishing the
        same checkpoint) is counted and reported as False, not an error.
        The ready flag is written last, so a reader can never observe a
        torn payload as complete.
        """
        try:
            main, buffers = snapshot.to_buffers()
            lengths = struct.pack(f"<{len(buffers)}Q",
                                  *[len(b) for b in buffers])
            size = (_HEADER.size + len(lengths) + len(main)
                    + sum(len(b) for b in buffers))
            segment = shared_memory.SharedMemory(
                name=self._segment_name(key, tick), create=True, size=size)
        except FileExistsError:
            self.publish_races += 1
            return False
        except Exception:  # noqa: BLE001 — transport is best-effort
            self.publish_failures += 1
            return False
        try:
            buf = segment.buf
            _HEADER.pack_into(buf, 0, _MAGIC, 0, len(main), len(buffers))
            offset = _HEADER.size
            buf[offset:offset + len(lengths)] = lengths
            offset += len(lengths)
            buf[offset:offset + len(main)] = main
            offset += len(main)
            for payload in buffers:
                buf[offset:offset + len(payload)] = payload
                offset += len(payload)
            struct.pack_into("<I", buf, 4, 1)  # ready flag, written last
            del buf
            segment.close()
        except Exception:  # noqa: BLE001
            self.publish_failures += 1
            return False
        self.publishes += 1
        return True

    def fetch(self, key: str, tick: Ticks) -> Optional[SimulatorSnapshot]:
        """Attach a published checkpoint, zero-copy.  None on any failure.

        A successful fetch is memoized (and its segment kept mapped) for
        the life of this process, so repeated fetches of one checkpoint
        cost a dict lookup.
        """
        memo = self._attached.get((key, tick))
        if memo is not None:
            self.memo_hits += 1
            return memo
        try:
            segment = shared_memory.SharedMemory(
                name=self._segment_name(key, tick))
        except FileNotFoundError:
            self.fetch_misses += 1
            return None
        except Exception:  # noqa: BLE001
            self.attach_failures += 1
            return None
        try:
            buf = segment.buf
            magic, ready, main_len, nbuf = _HEADER.unpack_from(buf, 0)
            if magic != _MAGIC or ready != 1:
                raise ValueError("segment not ready")
            lengths = struct.unpack_from(f"<{nbuf}Q", buf, _HEADER.size)
            offset = _HEADER.size + 8 * nbuf
            main = buf[offset:offset + main_len]
            offset += main_len
            views = []
            for length in lengths:
                views.append(buf[offset:offset + length])
                offset += length
            snapshot = pickle.loads(main, buffers=views)
            if not isinstance(snapshot, SimulatorSnapshot):
                raise TypeError("segment does not hold a snapshot")
        except Exception:  # noqa: BLE001 — torn/foreign segment: degrade
            self.attach_failures += 1
            try:
                segment.close()
            except Exception:  # noqa: BLE001 — views may pin the mapping
                pass
            return None
        self._attached[(key, tick)] = snapshot
        self._segments.append(segment)
        self.attaches += 1
        return snapshot

    # ------------------------------------------------------------ #
    # parent side
    # ------------------------------------------------------------ #

    def unlink_all(self, levels: Iterable[Tuple[str, Ticks]]) -> int:
        """Unlink every published segment for *levels* (after pool close).

        Returns the number of segments actually unlinked.  Safe to call
        with levels nobody published — missing segments are skipped.
        """
        removed = 0
        for key, tick in levels:
            try:
                segment = shared_memory.SharedMemory(
                    name=self._segment_name(key, tick))
            except FileNotFoundError:
                continue
            except Exception:  # noqa: BLE001
                continue
            try:
                segment.close()
                segment.unlink()
                removed += 1
            except Exception:  # noqa: BLE001
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        """Counters for the nondeterministic reporting sidecar."""
        return {"publishes": self.publishes,
                "publish_races": self.publish_races,
                "publish_failures": self.publish_failures,
                "attaches": self.attaches,
                "attach_failures": self.attach_failures,
                "fetch_misses": self.fetch_misses,
                "memo_hits": self.memo_hits}
