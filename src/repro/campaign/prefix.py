"""Prefix-sharing campaign scheduling over simulator snapshots.

Campaign scenarios built from the same configuration and seed execute
*identically* until their first fault or schedule command — everything
before the first divergence point is shared, deterministic work.  A chaos
campaign injecting at tick ``10_000`` of fifty 20-MTF scenarios spends half
its budget simulating the same fault-free prefix fifty times.

This module removes that redundancy:

* :func:`scenario_fingerprint` — content digest of everything that shapes
  a scenario's pre-divergence execution (config factory, seed, kwargs,
  inline config document);
* :func:`divergence_tick` — the first tick at which a scenario stops being
  a pure prefix run (its earliest fault or schedule command);
* :class:`SnapshotCache` — bounded LRU of *pickled*
  :class:`~repro.kernel.snapshot.SimulatorSnapshot` payloads, keyed by
  ``(fingerprint, tick)``;
* :func:`run_with_prefix_cache` — the drop-in scenario executor: fork from
  the longest cached prefix at or before the divergence tick (extending a
  shorter cached prefix instead of starting cold when one exists), cache
  the snapshot at the divergence tick, and run the scenario's divergent
  suffix from the fork.

Correctness rests on the snapshot layer's bit-identity contract (tested by
the fork-equivalence matrix): a forked run's trace digest, metrics and
oracle verdict equal a cold run's, so the campaign digest is identical
with the cache on or off, at any worker count.  Fault scheduling needs no
snapshot support because prefixes are fault-free by construction: every
fault tick is ``>=`` the fork tick, so the forked injector schedules them
fresh, exactly as the cold run's injector did.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..kernel.snapshot import SimulatorSnapshot
from ..types import Ticks
from .scenarios import Scenario

__all__ = [
    "MIN_PREFIX_TICKS",
    "PREFIX_QUANTUM",
    "SnapshotCache",
    "divergence_tick",
    "run_with_prefix_cache",
    "scenario_fingerprint",
]

#: Prefixes shorter than this are not worth a capture/restore round trip.
MIN_PREFIX_TICKS: Ticks = 256

#: Snapshot ticks are quantized down to multiples of this, so scenarios
#: whose divergence ticks fall in the same quantum share one cache entry
#: (one capture + pickle, many forks) instead of each capturing its own.
#: The sub-quantum remainder is simply simulated inside the forked run.
PREFIX_QUANTUM: Ticks = 1024


def scenario_fingerprint(scenario: Scenario) -> str:
    """Digest of everything shaping a scenario's pre-divergence execution.

    Two scenarios with equal fingerprints run bit-identically until the
    earlier of their divergence ticks, so their prefixes are
    interchangeable.  Faults, schedule commands and the tick horizon are
    deliberately excluded — they only shape the suffix.
    """
    document = {
        "factory": scenario.factory,
        "seed": scenario.seed,
        "kwargs": dict(scenario.factory_kwargs),
        "config": (dict(scenario.config_doc)
                   if scenario.config_doc is not None else None),
    }
    canonical = json.dumps(document, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def divergence_tick(scenario: Scenario) -> Ticks:
    """First tick at which *scenario* stops being a pure prefix run.

    The earliest fault or schedule-command tick, clamped to the scenario
    horizon.  A fault at tick T applies before T's clock ISR, so a
    snapshot taken *at* tick T is still strictly pre-divergence.
    """
    events = [tick for tick, _ in scenario.faults]
    events += [tick for tick, _ in scenario.schedule_commands]
    first = min(events) if events else scenario.ticks
    return max(0, min(first, scenario.ticks))


class SnapshotCache:
    """Bounded LRU of prefix snapshots.

    Content-addressed by ``(fingerprint, tick)``.  Each entry holds the
    pickled payload (the canonical, explicitly-sized form) plus a memoized
    live :class:`SimulatorSnapshot`, so the hot path forks without paying
    an unpickle per scenario.  Sharing one live snapshot across forks is
    sound because ``restore`` copies every mutable container out of the
    snapshot state and never mutates it (pinned by the repeated-fork
    entries of the fork-equivalence matrix).

    Two independent LRU bounds apply: *capacity* (entry count) and
    *max_bytes* (sum of stored payload sizes; ``None`` = unbounded).
    With *compress_level* set, payloads are zlib-compressed at ``put`` —
    the byte budget then meters compressed sizes — and every consumer
    decompresses transparently through the magic-byte sniffing in
    :meth:`SimulatorSnapshot.from_bytes`.

    All counters (including the byte totals) describe cache behaviour
    only — they belong to the nondeterministic reporting sidecar, never
    to campaign digests.
    """

    def __init__(self, capacity: int = 16,
                 max_bytes: Optional[int] = None,
                 compress_level: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if compress_level is not None and not 0 <= compress_level <= 9:
            raise ValueError(
                f"compress_level must be in 0..9, got {compress_level}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.compress_level = compress_level
        # key -> [payload bytes, memoized SimulatorSnapshot or None]
        self._entries: "OrderedDict[Tuple[str, Ticks], list]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.total_bytes = 0
        self.stored_bytes = 0
        self.hit_bytes = 0
        self.evicted_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, fingerprint: str, tick: Ticks, payload: bytes,
            snapshot: Optional[SimulatorSnapshot] = None) -> None:
        """Insert (or refresh) the snapshot at ``(fingerprint, tick)``."""
        key = (fingerprint, tick)
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        if self.compress_level is not None:
            payload = zlib.compress(payload, self.compress_level)
        self._entries[key] = [payload, snapshot]
        self.stores += 1
        self.total_bytes += len(payload)
        self.stored_bytes += len(payload)
        while len(self._entries) > self.capacity or (
                self.max_bytes is not None
                and self.total_bytes > self.max_bytes
                and self._entries):
            _, evicted = self._entries.popitem(last=False)
            self.evictions += 1
            self.total_bytes -= len(evicted[0])
            self.evicted_bytes += len(evicted[0])

    def get(self, fingerprint: str, tick: Ticks) -> Optional[bytes]:
        """Exact payload lookup; counts a hit or miss, refreshes recency.

        The returned bytes may be zlib-compressed (when the cache runs a
        compression tier); :meth:`SimulatorSnapshot.from_bytes` sniffs
        and handles both forms.
        """
        entry = self._entries.get((fingerprint, tick))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self.hit_bytes += len(entry[0])
        self._entries.move_to_end((fingerprint, tick))
        return entry[0]

    def get_snapshot(self, fingerprint: str,
                     tick: Ticks) -> Optional[SimulatorSnapshot]:
        """Exact lookup as a live snapshot, unpickling at most once."""
        entry = self._entries.get((fingerprint, tick))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self.hit_bytes += len(entry[0])
        self._entries.move_to_end((fingerprint, tick))
        if entry[1] is None:
            entry[1] = SimulatorSnapshot.from_bytes(entry[0])
        return entry[1]

    def best_prefix(self, fingerprint: str,
                    max_tick: Ticks) -> Optional[Tuple[Ticks, bytes]]:
        """Longest cached prefix of *fingerprint* at or before *max_tick*.

        Advisory (used to extend a shorter prefix rather than rebuild
        from cold); does not touch the hit/miss counters.
        """
        best: Optional[Tuple[Ticks, bytes]] = None
        for (cached_fp, tick), entry in self._entries.items():
            if cached_fp != fingerprint or tick > max_tick:
                continue
            if best is None or tick > best[0]:
                best = (tick, entry[0])
        if best is not None:
            self._entries.move_to_end((fingerprint, best[0]))
        return best

    def stats(self) -> Dict[str, int]:
        """Counters for the nondeterministic reporting sidecar."""
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "stores": self.stores,
                "evictions": self.evictions,
                "total_bytes": self.total_bytes,
                "stored_bytes": self.stored_bytes,
                "hit_bytes": self.hit_bytes,
                "evicted_bytes": self.evicted_bytes}


def run_with_prefix_cache(scenario: Scenario, cache: SnapshotCache, *,
                          timeout_s: Optional[float] = None,
                          check_interval: int = 20_000,
                          quantum: Ticks = PREFIX_QUANTUM,
                          backend: str = "reference"):
    """Run *scenario*, sharing its fault-free prefix through *cache*.

    Scheduling policy: the snapshot tick is the scenario's divergence
    tick quantized down to a multiple of *quantum*, so scenarios whose
    divergence ticks land in the same quantum fork from one shared cache
    entry (the sub-quantum remainder is simulated inside the forked run,
    where it costs one event-core pass).  On a miss the prefix is built
    once — extending the longest shorter cached prefix when one exists,
    from cold otherwise — cached, and forked.  Prefix construction
    failures degrade to an uncached cold run: the cache is an
    optimization, never a correctness dependency.
    """
    from ..kernel.simulator import Simulator
    from .runner import run_scenario

    if quantum < 1:
        raise ValueError(f"quantum must be >= 1, got {quantum}")
    snap_tick = (divergence_tick(scenario) // quantum) * quantum
    if snap_tick < MIN_PREFIX_TICKS:
        return run_scenario(scenario, timeout_s=timeout_s,
                            check_interval=check_interval,
                            backend=backend)
    fingerprint = scenario_fingerprint(scenario)
    snapshot = cache.get_snapshot(fingerprint, snap_tick)
    if snapshot is None:
        base = cache.best_prefix(fingerprint, snap_tick)
        try:
            config = scenario.build_config()
            if base is not None:
                simulator = SimulatorSnapshot.from_bytes(
                    base[1]).restore(config, backend=backend)
            else:
                simulator = Simulator(config, backend=backend)
            simulator.run_fast(snap_tick - simulator.now)
            snapshot = SimulatorSnapshot.capture(simulator)
            cache.put(fingerprint, snap_tick, snapshot.to_bytes(), snapshot)
        except Exception:  # noqa: BLE001 — degrade to a cold run
            snapshot = None
    return run_scenario(scenario, timeout_s=timeout_s,
                        check_interval=check_interval,
                        from_snapshot=snapshot,
                        backend=backend)
