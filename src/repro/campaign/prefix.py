"""Prefix-sharing campaign scheduling over simulator snapshots.

Campaign scenarios built from the same configuration and seed execute
*identically* until their first fault or schedule command — everything
before the first divergence point is shared, deterministic work.  A chaos
campaign injecting at tick ``10_000`` of fifty 20-MTF scenarios spends half
its budget simulating the same fault-free prefix fifty times.  Scenarios
that additionally share their first *k* timeline events (same faults at the
same ticks) stay identical even longer: past the fault-free root, through
every shared injection, until the first event where their timelines
diverge.

This module removes that redundancy at every level of the divergence tree:

* :func:`scenario_fingerprint` — content digest of everything that shapes
  a scenario's pre-divergence execution (config factory, seed, kwargs,
  inline config document);
* :func:`divergence_tick` — the first tick at which a scenario stops being
  a pure prefix run (its earliest fault or schedule command);
* :func:`prefix_key` — the fingerprint extended with the scenario's first
  *depth* timeline events; equal keys mean bit-identical execution up to
  the next event, so interior checkpoints (snapshots taken *after* shared
  faults applied) are interchangeable too;
* :func:`prefix_levels` / :func:`build_divergence_trie` — the campaign-side
  planner: enumerate each scenario's usable fork levels, pin every level
  shared by >= 2 scenarios to one common capture tick, and hand each
  scenario a :class:`PrefixPlan` (which checkpoints to build, where to
  fork, which locality group it belongs to);
* :class:`SnapshotCache` — bounded LRU of *pickled*
  :class:`~repro.kernel.snapshot.SimulatorSnapshot` payloads, keyed by
  ``(prefix key, tick)``;
* :func:`run_with_prefix_cache` — the drop-in scenario executor: fork from
  the deepest cached ancestor (local cache first, then an optional
  shared-memory transport), build and publish any missing checkpoints on
  the way down, and run the scenario's divergent suffix from the fork.

Correctness rests on the snapshot layer's bit-identity contract (tested by
the fork-equivalence matrix): a forked run's trace digest, metrics and
oracle verdict equal a cold run's, so the campaign digest is identical
with the cache on or off, at any worker count and any trie depth.
Interior checkpoints carry the fault injector's applied log in the
snapshot's ``extras`` side-channel; a forked run seeds its injector from
it and schedules only the not-yet-applied remainder of the timeline, so
the injection log — which feeds the campaign digest — is bit-identical to
a cold run's.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..fault.faults import fault_to_dict
from ..kernel.snapshot import SimulatorSnapshot
from ..types import Ticks
from .scenarios import Scenario

__all__ = [
    "MIN_PREFIX_TICKS",
    "PREFIX_QUANTUM",
    "PrefixPlan",
    "SnapshotCache",
    "build_divergence_trie",
    "divergence_tick",
    "prefix_key",
    "prefix_levels",
    "run_with_prefix_cache",
    "scenario_fingerprint",
]

#: Prefixes shorter than this are not worth a capture/restore round trip.
MIN_PREFIX_TICKS: Ticks = 256

#: Snapshot ticks are quantized down to multiples of this, so scenarios
#: whose divergence ticks fall in the same quantum share one cache entry
#: (one capture + pickle, many forks) instead of each capturing its own.
#: The sub-quantum remainder is simply simulated inside the forked run.
PREFIX_QUANTUM: Ticks = 1024


def scenario_fingerprint(scenario: Scenario) -> str:
    """Digest of everything shaping a scenario's pre-divergence execution.

    Two scenarios with equal fingerprints run bit-identically until the
    earlier of their divergence ticks, so their prefixes are
    interchangeable.  Faults, schedule commands and the tick horizon are
    deliberately excluded — they only shape the suffix (and enter the
    deeper :func:`prefix_key` levels instead).
    """
    document = {
        "factory": scenario.factory,
        "seed": scenario.seed,
        "kwargs": dict(scenario.factory_kwargs),
        "config": (dict(scenario.config_doc)
                   if scenario.config_doc is not None else None),
    }
    canonical = json.dumps(document, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def divergence_tick(scenario: Scenario) -> Ticks:
    """First tick at which *scenario* stops being a pure prefix run.

    The earliest fault or schedule-command tick, clamped to the scenario
    horizon.  A fault at tick T applies before T's clock ISR, so a
    snapshot taken *at* tick T is still strictly pre-divergence.
    """
    events = [tick for tick, _ in scenario.faults]
    events += [tick for tick, _ in scenario.schedule_commands]
    first = min(events) if events else scenario.ticks
    return max(0, min(first, scenario.ticks))


def prefix_key(scenario: Scenario, depth: int) -> str:
    """Content key of the scenario's execution prefix through *depth* events.

    ``depth == 0`` is the fault-free root and returns
    :func:`scenario_fingerprint` unchanged (PR 5 cache entries and trie
    roots are the same namespace).  Deeper keys fold in the first *depth*
    entries of :meth:`Scenario.timeline` — ticks and full fault payloads —
    so two scenarios with equal ``prefix_key(s, d)`` execute
    bit-identically until their ``d``-th event (exclusive): same
    configuration and seed, same faults applied at the same ticks.
    """
    fingerprint = scenario_fingerprint(scenario)
    if depth <= 0:
        return fingerprint
    events = scenario.timeline()
    if depth > len(events):
        raise ValueError(
            f"{scenario.scenario_id}: depth {depth} exceeds the "
            f"{len(events)}-event timeline")
    document = [[tick, fault_to_dict(fault)]
                for tick, fault in events[:depth]]
    canonical = json.dumps(document, sort_keys=True, default=str)
    digest = hashlib.sha256(
        (fingerprint + "|" + canonical).encode("utf-8")).hexdigest()
    return digest[:16]


# ------------------------------------------------------------------ #
# the divergence trie
# ------------------------------------------------------------------ #


@dataclass(frozen=True)
class PrefixPlan:
    """One scenario's share of the campaign's divergence trie.

    ``capture_levels`` lists the shared checkpoints on this scenario's
    root-to-leaf path as ``(depth, prefix key, capture tick)`` in
    ascending depth: at level ``depth`` the first ``depth`` timeline
    events have been applied and the clock sits at ``capture tick``.
    Capture ticks are *pinned* by the planner to the minimum quantized
    boundary across every scenario sharing the key, so all sharers look
    up the exact same ``(key, tick)`` cache entry — no per-scenario
    quantization drift.  ``group_key`` (the deepest shared key, or the
    scenario id when nothing is shared) is the locality-dispatch handle:
    scenarios with equal group keys want the same worker.
    """

    scenario_id: str
    group_key: str
    capture_levels: Tuple[Tuple[int, str, Ticks], ...]

    @property
    def fork_levels(self) -> Tuple[Tuple[int, str, Ticks], ...]:
        """Capture levels deepest-first — the fork lookup order."""
        return tuple(reversed(self.capture_levels))


def prefix_levels(scenario: Scenario, *, quantum: Ticks = PREFIX_QUANTUM,
                  max_depth: Optional[int] = None
                  ) -> List[Tuple[int, str, Ticks]]:
    """Enumerate the scenario's usable fork levels.

    Level *d* means "the first *d* timeline events applied"; its boundary
    is the ``d``-th event's tick (the horizon past the last event) and its
    candidate capture tick is that boundary quantized down to *quantum*.
    A level is usable when the capture tick clears
    :data:`MIN_PREFIX_TICKS` and does not quantize below the last applied
    event (the checkpoint must sit *after* everything it claims to have
    applied).  *max_depth* truncates the enumeration (``0`` = root only).
    """
    if quantum < 1:
        raise ValueError(f"quantum must be >= 1, got {quantum}")
    if getattr(scenario, "is_constellation", False):
        # A constellation has no single-simulator prefix to checkpoint:
        # N snapshots plus fabric/protocol state is not a
        # SimulatorSnapshot.  No levels -> singleton locality group ->
        # always a cold run.
        return []
    events = scenario.timeline()
    horizon = scenario.ticks
    limit = len(events)
    if max_depth is not None:
        limit = min(limit, max(0, max_depth))
    levels: List[Tuple[int, str, Ticks]] = []
    for depth in range(limit + 1):
        boundary = events[depth][0] if depth < len(events) else horizon
        boundary = min(boundary, horizon)
        snap = (boundary // quantum) * quantum
        if snap < MIN_PREFIX_TICKS:
            continue
        if depth and snap < events[depth - 1][0]:
            continue
        levels.append((depth, prefix_key(scenario, depth), snap))
    return levels


def build_divergence_trie(scenarios: Sequence[Scenario], *,
                          quantum: Ticks = PREFIX_QUANTUM,
                          max_depth: Optional[int] = None
                          ) -> Dict[str, PrefixPlan]:
    """Plan the campaign's shared checkpoints: scenario id -> PrefixPlan.

    A level enters a scenario's plan only when >= 2 scenarios carry the
    same prefix key — singleton checkpoints would cost a capture + pickle
    and never be forked again.  Shared levels are pinned to the *minimum*
    quantized boundary across their sharers, which is always a valid
    capture tick for every sharer (the key pins the shared event ticks,
    every sharer's own boundary is at or past the last shared event, and
    capture ticks stay nondecreasing with depth).  Scenarios sharing
    nothing get an empty plan (a plain cold run — cheaper than caching a
    checkpoint nobody reuses).
    """
    per_scenario: Dict[str, List[Tuple[int, str, Ticks]]] = {}
    boundaries: Dict[str, List[Ticks]] = {}
    for scenario in scenarios:
        levels = prefix_levels(scenario, quantum=quantum,
                               max_depth=max_depth)
        per_scenario[scenario.scenario_id] = levels
        for _, key, snap in levels:
            boundaries.setdefault(key, []).append(snap)
    pinned = {key: min(snaps) for key, snaps in boundaries.items()
              if len(snaps) >= 2}
    plans: Dict[str, PrefixPlan] = {}
    for scenario in scenarios:
        capture: List[Tuple[int, str, Ticks]] = []
        group = scenario.scenario_id
        for depth, key, _ in per_scenario[scenario.scenario_id]:
            if key in pinned:
                capture.append((depth, key, pinned[key]))
                group = key
        plans[scenario.scenario_id] = PrefixPlan(
            scenario_id=scenario.scenario_id, group_key=group,
            capture_levels=tuple(capture))
    return plans


# ------------------------------------------------------------------ #
# the snapshot cache
# ------------------------------------------------------------------ #


class SnapshotCache:
    """Bounded LRU of prefix snapshots.

    Content-addressed by ``(prefix key, tick)``.  Each entry holds the
    pickled payload (the canonical, explicitly-sized form) plus a memoized
    live :class:`SimulatorSnapshot`, so the hot path forks without paying
    an unpickle per scenario.  Sharing one live snapshot across forks is
    sound because ``restore`` copies every mutable container out of the
    snapshot state and never mutates it (pinned by the repeated-fork
    entries of the fork-equivalence matrix).

    Two independent LRU bounds apply: *capacity* (entry count) and
    *max_bytes* (sum of stored payload sizes; ``None`` = unbounded).
    With *compress_level* set, payloads are zlib-compressed at ``put`` —
    the byte budget then meters compressed sizes — and every consumer
    decompresses transparently through the magic-byte sniffing in
    :meth:`SimulatorSnapshot.from_bytes`.

    A payload larger than *max_bytes* on its own is **rejected** (counted
    in ``rejects``) rather than inserted: inserting it would force every
    other entry out and still leave the budget blown, so the next insert
    would evict it in turn — an eviction-thrash loop where the cache holds
    at most one oversized entry and rebuilds everything else forever.
    Because every accepted payload fits the budget, eviction never needs
    to touch the entry just inserted.

    Re-``put`` of an existing key is an explicit **refresh** (counted in
    ``refreshes``, not ``stores``): the payload is replaced and the
    memoized snapshot reset, so a caller that rebuilt a prefix never
    leaves a stale payload behind.

    All counters (including the byte totals) describe cache behaviour
    only — they belong to the nondeterministic reporting sidecar, never
    to campaign digests.
    """

    #: The fixed key set :meth:`stats` emits.  The governed telemetry
    #: namespace constrains ``worker/<n>/cache/<stat>`` to this set.
    STAT_KEYS = ("entries", "hits", "misses", "stores", "refreshes",
                 "rejects", "evictions", "total_bytes", "stored_bytes",
                 "hit_bytes", "evicted_bytes")

    def __init__(self, capacity: int = 16,
                 max_bytes: Optional[int] = None,
                 compress_level: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if compress_level is not None and not 0 <= compress_level <= 9:
            raise ValueError(
                f"compress_level must be in 0..9, got {compress_level}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.compress_level = compress_level
        # key -> [payload bytes, memoized SimulatorSnapshot or None]
        self._entries: "OrderedDict[Tuple[str, Ticks], list]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.refreshes = 0
        self.rejects = 0
        self.evictions = 0
        self.total_bytes = 0
        self.stored_bytes = 0
        self.hit_bytes = 0
        self.evicted_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, fingerprint: str, tick: Ticks, payload: bytes,
            snapshot: Optional[SimulatorSnapshot] = None) -> bool:
        """Insert or refresh the snapshot at ``(fingerprint, tick)``.

        Returns False (and counts a reject) when the payload alone
        exceeds *max_bytes*; True otherwise.  An existing key is
        refreshed in place: payload replaced, memoized snapshot reset to
        *snapshot*, recency touched.
        """
        key = (fingerprint, tick)
        if self.compress_level is not None:
            payload = zlib.compress(payload, self.compress_level)
        if self.max_bytes is not None and len(payload) > self.max_bytes:
            self.rejects += 1
            return False
        entry = self._entries.get(key)
        if entry is not None:
            self.total_bytes -= len(entry[0])
            entry[0] = payload
            entry[1] = snapshot
            self.refreshes += 1
            self._entries.move_to_end(key)
        else:
            self._entries[key] = [payload, snapshot]
            self.stores += 1
        self.total_bytes += len(payload)
        self.stored_bytes += len(payload)
        while (len(self._entries) > self.capacity
               or (self.max_bytes is not None
                   and self.total_bytes > self.max_bytes)):
            oldest = next(iter(self._entries))
            if oldest == key:  # never evict the just-inserted entry
                break
            evicted = self._entries.pop(oldest)
            self.evictions += 1
            self.total_bytes -= len(evicted[0])
            self.evicted_bytes += len(evicted[0])
        return True

    def get(self, fingerprint: str, tick: Ticks) -> Optional[bytes]:
        """Exact payload lookup; counts a hit or miss, refreshes recency.

        The returned bytes may be zlib-compressed (when the cache runs a
        compression tier); :meth:`SimulatorSnapshot.from_bytes` sniffs
        and handles both forms.
        """
        entry = self._entries.get((fingerprint, tick))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self.hit_bytes += len(entry[0])
        self._entries.move_to_end((fingerprint, tick))
        return entry[0]

    def get_snapshot(self, fingerprint: str,
                     tick: Ticks) -> Optional[SimulatorSnapshot]:
        """Exact lookup as a live snapshot, unpickling at most once."""
        entry = self._entries.get((fingerprint, tick))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self.hit_bytes += len(entry[0])
        self._entries.move_to_end((fingerprint, tick))
        if entry[1] is None:
            entry[1] = SimulatorSnapshot.from_bytes(entry[0])
        return entry[1]

    def best_prefix(self, fingerprint: str,
                    max_tick: Ticks) -> Optional[Tuple[Ticks, bytes]]:
        """Longest cached prefix of *fingerprint* at or before *max_tick*.

        Advisory (used to extend a shorter prefix rather than rebuild
        from cold); does not touch the hit/miss counters but does refresh
        the winner's LRU recency (an entry still seeding new builds is an
        entry worth keeping).  Ties cannot arise — keys are unique per
        ``(fingerprint, tick)`` — and among candidates the *highest* tick
        at or below the cap wins.
        """
        best: Optional[Tuple[Ticks, bytes]] = None
        for (cached_fp, tick), entry in self._entries.items():
            if cached_fp != fingerprint or tick > max_tick:
                continue
            if best is None or tick > best[0]:
                best = (tick, entry[0])
        if best is not None:
            self._entries.move_to_end((fingerprint, best[0]))
        return best

    def stats(self) -> Dict[str, int]:
        """Counters for the nondeterministic reporting sidecar."""
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "stores": self.stores,
                "refreshes": self.refreshes, "rejects": self.rejects,
                "evictions": self.evictions,
                "total_bytes": self.total_bytes,
                "stored_bytes": self.stored_bytes,
                "hit_bytes": self.hit_bytes,
                "evicted_bytes": self.evicted_bytes}


# ------------------------------------------------------------------ #
# the prefix-sharing executor
# ------------------------------------------------------------------ #


def _build_plan_levels(scenario: Scenario, cache: SnapshotCache,
                       plan: PrefixPlan,
                       base_snapshot: Optional[SimulatorSnapshot],
                       base_depth: int, *, backend: str,
                       check_interval: int,
                       transport=None) -> Optional[SimulatorSnapshot]:
    """Build, cache and publish the plan's missing checkpoints.

    Starts from *base_snapshot* (a hit at *base_depth*), else from the
    longest cached fault-free root below the first capture tick, else
    cold; schedules timeline events incrementally so a checkpoint at
    level *d* has exactly the first *d* events applied and nothing deeper
    pending.  Each level boundary re-checks the shared-memory *transport*
    before simulating toward it, so workers racing through the same chain
    converge onto the first publisher's checkpoints instead of all
    building the full chain.  Returns the deepest checkpoint reached (or
    *base_snapshot* if nothing new was needed); returns None to degrade
    on any failure.
    """
    from ..fault.injector import FaultInjector
    from ..kernel.simulator import Simulator

    try:
        config = scenario.build_config()
        cursor = 0
        if base_snapshot is not None:
            simulator = base_snapshot.restore(config, backend=backend)
            cursor = base_depth
        else:
            root_depth, root_key, root_tick = plan.capture_levels[0]
            base = (cache.best_prefix(root_key, root_tick)
                    if root_depth == 0 else None)
            if base is not None:
                simulator = SimulatorSnapshot.from_bytes(
                    base[1]).restore(config, backend=backend)
            else:
                simulator = Simulator(config, backend=backend)
        injector = FaultInjector(simulator)
        if base_snapshot is not None and base_snapshot.extras:
            state = base_snapshot.extras.get("injector")
            if state is not None:
                injector.load_state_dict(state)
        events = scenario.timeline()
        deepest = base_snapshot
        for depth, key, tick in plan.capture_levels:
            if depth <= base_depth:
                continue  # at or behind the starting checkpoint
            if transport is not None:
                # Re-check shared memory at every level boundary: a
                # sibling worker racing through the same chain may have
                # published this checkpoint while we were simulating the
                # shallower span — attach and jump instead of rebuilding.
                fetched = transport.fetch(key, tick)
                if fetched is not None:
                    simulator = fetched.restore(config, backend=backend)
                    injector = FaultInjector(simulator)
                    if fetched.extras:
                        state = fetched.extras.get("injector")
                        if state is not None:
                            injector.load_state_dict(state)
                    cursor = depth
                    deepest = fetched
                    continue
            for event_tick, fault in events[cursor:depth]:
                injector.schedule(event_tick, fault)
            cursor = depth
            injector.run_fast(tick - simulator.now,
                              check_interval=check_interval)
            snapshot = SimulatorSnapshot.capture(
                simulator, extras={"injector": injector.state_dict()})
            cache.put(key, tick, snapshot.to_bytes(), snapshot)
            if transport is not None:
                transport.publish(key, tick, snapshot)
            deepest = snapshot
        return deepest
    except Exception:  # noqa: BLE001 — degrade to whatever we had
        return None


def run_with_prefix_cache(scenario: Scenario, cache: SnapshotCache, *,
                          timeout_s: Optional[float] = None,
                          check_interval: int = 20_000,
                          quantum: Ticks = PREFIX_QUANTUM,
                          backend: str = "reference",
                          cycle_cache: bool = False,
                          plan: Optional[PrefixPlan] = None,
                          transport=None,
                          publisher=None,
                          artifacts=None):
    """Run *scenario*, sharing its execution prefix through *cache*.

    Without a *plan* this is root-only sharing (the PR 5 behaviour): the
    snapshot tick is the scenario's divergence tick quantized down to a
    multiple of *quantum*, so scenarios whose divergence ticks land in
    the same quantum fork from one shared cache entry (the sub-quantum
    remainder is simulated inside the forked run, where it costs one
    event-core pass).  On a miss the prefix is built once — extending the
    longest shorter cached prefix when one exists, from cold otherwise —
    cached, and forked.

    With a *plan* (one scenario's slice of :func:`build_divergence_trie`)
    the lookup walks the scenario's fork levels deepest-first — local
    cache, then the optional shared-memory *transport* (an object with
    ``fetch(key, tick) -> snapshot|None`` and
    ``publish(key, tick, snapshot)``) — and forks from the deepest
    ancestor found, building, caching and publishing every missing
    checkpoint on the way.

    Prefix construction failures degrade to an uncached cold run: the
    cache is an optimization, never a correctness dependency.

    *cycle_cache* arms steady-state MTF memoization on the scenario's
    own run only — prefix *chain construction* always runs without it,
    so cached checkpoints are byte-identical whichever mode the
    scenarios forking from them use.
    """
    from ..kernel.simulator import Simulator
    from .runner import run_scenario

    if quantum < 1:
        raise ValueError(f"quantum must be >= 1, got {quantum}")
    if getattr(scenario, "is_constellation", False):
        # Constellations never fork from snapshots; run_scenario
        # dispatches to the constellation runner.
        return run_scenario(scenario, timeout_s=timeout_s,
                            check_interval=check_interval,
                            backend=backend, publisher=publisher,
                            artifacts=artifacts)
    if plan is not None:
        snapshot = None
        found_depth = -1
        for depth, key, tick in plan.fork_levels:
            snapshot = cache.get_snapshot(key, tick)
            if snapshot is None and transport is not None:
                snapshot = transport.fetch(key, tick)
            if snapshot is not None:
                found_depth = depth
                break
        if plan.capture_levels and \
                found_depth < plan.capture_levels[-1][0]:
            built = _build_plan_levels(
                scenario, cache, plan, snapshot, found_depth,
                backend=backend, check_interval=check_interval,
                transport=transport)
            if built is not None:
                snapshot = built
        return run_scenario(scenario, timeout_s=timeout_s,
                            check_interval=check_interval,
                            from_snapshot=snapshot,
                            backend=backend, cycle_cache=cycle_cache,
                            publisher=publisher,
                            artifacts=artifacts)
    snap_tick = (divergence_tick(scenario) // quantum) * quantum
    if snap_tick < MIN_PREFIX_TICKS:
        return run_scenario(scenario, timeout_s=timeout_s,
                            check_interval=check_interval,
                            backend=backend, cycle_cache=cycle_cache,
                            publisher=publisher,
                            artifacts=artifacts)
    fingerprint = scenario_fingerprint(scenario)
    snapshot = cache.get_snapshot(fingerprint, snap_tick)
    if snapshot is None:
        base = cache.best_prefix(fingerprint, snap_tick)
        try:
            config = scenario.build_config()
            if base is not None:
                simulator = SimulatorSnapshot.from_bytes(
                    base[1]).restore(config, backend=backend)
            else:
                simulator = Simulator(config, backend=backend)
            simulator.run_fast(snap_tick - simulator.now)
            snapshot = SimulatorSnapshot.capture(simulator)
            cache.put(fingerprint, snap_tick, snapshot.to_bytes(), snapshot)
        except Exception:  # noqa: BLE001 — degrade to a cold run
            snapshot = None
    return run_scenario(scenario, timeout_s=timeout_s,
                        check_interval=check_interval,
                        from_snapshot=snapshot,
                        backend=backend, cycle_cache=cycle_cache,
                        publisher=publisher,
                        artifacts=artifacts)
