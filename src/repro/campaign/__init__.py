"""Deterministic multi-scenario campaign engine.

Fans independent, fully deterministic scenarios (fault-injection sweeps,
seed sweeps, config sweeps) out over a ``multiprocessing`` worker pool and
aggregates compact per-scenario summaries — the reproduction's answer to
the repeatable TSP evaluation campaigns of the benchmarking literature.
"""

from .artifacts import ScenarioArtifacts, write_scenario_artifacts
from .prefix import (
    PrefixPlan,
    SnapshotCache,
    build_divergence_trie,
    prefix_key,
    run_with_prefix_cache,
    scenario_fingerprint,
)
from .results import (
    ScenarioResult,
    aggregate,
    canonical_execution_telemetry,
    deterministic_report,
    render_summary,
    report_json,
)
from .shm import SnapshotTransport, shm_available
from .runner import (
    autodetect_workers,
    run_campaign,
    run_pool,
    run_scenario,
    run_serial,
)
from .scenarios import (
    FACTORIES,
    Scenario,
    chaos_campaign,
    config_sweep_campaign,
    fault_matrix_campaign,
    load_campaign_spec,
    register_factory,
    scenario_from_dict,
    scenario_to_dict,
    seed_sweep_campaign,
)

__all__ = [
    "ScenarioArtifacts", "write_scenario_artifacts",
    "PrefixPlan", "SnapshotCache", "build_divergence_trie", "prefix_key",
    "run_with_prefix_cache", "scenario_fingerprint",
    "SnapshotTransport", "shm_available",
    "ScenarioResult", "aggregate", "canonical_execution_telemetry",
    "deterministic_report", "render_summary", "report_json",
    "autodetect_workers", "run_campaign", "run_pool", "run_scenario",
    "run_serial",
    "FACTORIES", "Scenario", "chaos_campaign", "config_sweep_campaign",
    "fault_matrix_campaign", "load_campaign_spec", "register_factory",
    "scenario_from_dict", "scenario_to_dict", "seed_sweep_campaign",
]
