"""Deterministic multi-scenario campaign engine.

Fans independent, fully deterministic scenarios (fault-injection sweeps,
seed sweeps, config sweeps) out over a ``multiprocessing`` worker pool and
aggregates compact per-scenario summaries — the reproduction's answer to
the repeatable TSP evaluation campaigns of the benchmarking literature.
"""

from .results import (
    ScenarioResult,
    aggregate,
    deterministic_report,
    render_summary,
    report_json,
)
from .runner import (
    autodetect_workers,
    run_campaign,
    run_pool,
    run_scenario,
    run_serial,
)
from .scenarios import (
    FACTORIES,
    Scenario,
    chaos_campaign,
    config_sweep_campaign,
    fault_matrix_campaign,
    load_campaign_spec,
    register_factory,
    scenario_from_dict,
    scenario_to_dict,
    seed_sweep_campaign,
)

__all__ = [
    "ScenarioResult", "aggregate", "deterministic_report", "render_summary",
    "report_json",
    "autodetect_workers", "run_campaign", "run_pool", "run_scenario",
    "run_serial",
    "FACTORIES", "Scenario", "chaos_campaign", "config_sweep_campaign",
    "fault_matrix_campaign", "load_campaign_spec", "register_factory",
    "scenario_from_dict", "scenario_to_dict", "seed_sweep_campaign",
]
