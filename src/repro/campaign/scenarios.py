"""Campaign scenario specifications and builders.

A :class:`Scenario` is a *picklable* description of one independent,
fully deterministic simulation: which system to build (a named config
factory plus kwargs, or a serialized :class:`~repro.config.schema.SystemConfig`
document), a seed, a tick horizon, scheduled faults and schedule-switch
commands.  Workers rebuild the live objects on their side of the process
boundary — process bodies are code and cannot cross it, which is why
factories are named rather than shipped.

The module also provides the campaign builders the benchmarking literature
asks for (de Magalhaes et al.: repeatable multi-scenario TSP campaigns;
Cheptsov & Khoroshilov: robustness across many injected-fault runs):

* :func:`fault_matrix_campaign` — the cross product of fault templates and
  injection times over the Sect. 6 prototype;
* :func:`seed_sweep_campaign` — the chaos workload (every fault class at
  once) across seeds;
* :func:`config_sweep_campaign` — generated systems from
  :mod:`repro.analysis.generator` across seeds;
* :func:`chaos_campaign` — randomized fault barrages against the
  FDIR-supervised prototype, audited by the TSP invariant oracle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..analysis.generator import generate_pst, random_requirements
from ..apps.fdir import HEARTBEAT_PROCESS
from ..apps.prototype import FAULTY_PROCESS, MTF, build_prototype
from ..config.builder import SystemBuilder
from ..config.loader import load_config
from ..config.schema import SystemConfig
from ..exceptions import ConfigurationError
from ..fault.faults import (
    Fault,
    MemoryViolationFault,
    MessageFloodFault,
    PartitionCrashFault,
    ProcessKillFault,
    ScheduleSwitchFault,
    SimulatedCrashFault,
    StartProcessFault,
    fault_from_dict,
    fault_to_dict,
)
from ..kernel.rng import SeededRng
from ..types import Ticks

__all__ = [
    "Scenario",
    "FACTORIES",
    "register_factory",
    "scenario_from_dict",
    "scenario_to_dict",
    "load_campaign_spec",
    "fault_matrix_campaign",
    "seed_sweep_campaign",
    "config_sweep_campaign",
    "chaos_campaign",
]


# ------------------------------------------------------------------ #
# config factories
# ------------------------------------------------------------------ #

#: name -> callable(seed, **kwargs) -> SystemConfig.  Names (not callables)
#: cross the worker-pool boundary, so entries must be importable module
#: state, registered at import time.
FACTORIES: Dict[str, Callable[..., SystemConfig]] = {}


def register_factory(name: str):
    """Register a campaign config factory under *name* (decorator)."""

    def decorate(factory: Callable[..., SystemConfig]):
        FACTORIES[name] = factory
        return factory

    return decorate


@register_factory("prototype")
def _prototype_config(seed: int = 0, **kwargs: Any) -> SystemConfig:
    """The Sect. 6 four-partition satellite prototype (Fig. 8)."""
    return build_prototype(seed=seed, **kwargs).config


@register_factory("generated")
def _generated_config(seed: int = 0, *, partitions: int = 4,
                      utilization: float = 0.6,
                      attempts: int = 32) -> SystemConfig:
    """A synthetic system: random requirements + first-fit PST skeleton.

    Requirements are drawn from the scenario seed; utilizations that defeat
    the first-fit generator retry with a derived sub-seed, deterministically,
    up to *attempts* times.
    """
    for attempt in range(attempts):
        rng = SeededRng(seed).fork(f"campaign-config-{attempt}")
        requirements = random_requirements(rng, partitions=partitions,
                                           utilization=utilization)
        table = generate_pst(requirements, schedule_id="generated")
        if table is not None:
            break
    else:
        raise ConfigurationError(
            f"no schedulable generated system for seed={seed} "
            f"in {attempts} attempts")
    builder = SystemBuilder()
    builder.seed(seed)
    for requirement in requirements:
        builder.partition(requirement.partition)
    schedule = builder.schedule("generated", mtf=table.major_time_frame)
    for requirement in requirements:
        schedule.require(requirement.partition, cycle=requirement.cycle,
                         duration=requirement.duration)
    for window in table.windows:
        schedule.window(window.partition, offset=window.offset,
                        duration=window.duration)
    builder.initial_schedule("generated")
    return builder.build()


@register_factory("broken")
def _broken_config(seed: int = 0, **kwargs: Any) -> SystemConfig:
    """A factory that always fails — the crash-capture testing aid."""
    raise ConfigurationError(
        f"broken factory invoked deliberately (seed={seed})")


# ------------------------------------------------------------------ #
# the scenario spec
# ------------------------------------------------------------------ #


@dataclass(frozen=True)
class Scenario:
    """One independent, deterministic simulation in a campaign.

    Fully picklable and JSON-serializable; a worker rebuilds the
    :class:`~repro.kernel.simulator.Simulator` from it and never ships
    live objects back.
    """

    scenario_id: str
    factory: str = "prototype"
    seed: int = 0
    ticks: Ticks = 0
    factory_kwargs: Mapping[str, Any] = field(default_factory=dict)
    config_doc: Optional[Mapping[str, Any]] = None
    faults: Tuple[Tuple[Ticks, Fault], ...] = ()
    schedule_commands: Tuple[Tuple[Ticks, str], ...] = ()
    #: Audit the finished trace with the TSP invariant oracle
    #: (:func:`repro.fdir.oracle.check_trace`); violations downgrade the
    #: result to ``crashed``.
    oracle: bool = True

    def __post_init__(self) -> None:
        if self.ticks < 0:
            raise ConfigurationError(
                f"{self.scenario_id}: negative tick horizon {self.ticks}")
        if self.config_doc is None and self.factory not in FACTORIES:
            raise ConfigurationError(
                f"{self.scenario_id}: unknown config factory "
                f"{self.factory!r} (known: {sorted(FACTORIES)})")

    def build_config(self) -> SystemConfig:
        """Materialize the scenario's :class:`SystemConfig` (worker side)."""
        if self.config_doc is not None:
            return load_config(self.config_doc)
        return FACTORIES[self.factory](seed=self.seed, **self.factory_kwargs)

    def timeline(self) -> Tuple[Tuple[Ticks, Fault], ...]:
        """Faults and schedule commands merged into one application order.

        Schedule commands become :class:`ScheduleSwitchFault` instances and
        the merged sequence is stable-sorted by tick, which reproduces the
        injector's heap order exactly: the injector pops ``(tick, seq)``
        with sequence numbers assigned faults-first (in list order), then
        commands — precisely what a stable sort of
        ``[*faults, *commands]`` by tick yields.  The prefix-sharing layer
        keys interior checkpoints on leading slices of this sequence.
        """
        merged = [(tick, fault) for tick, fault in self.faults]
        merged += [(tick, ScheduleSwitchFault(schedule_id))
                   for tick, schedule_id in self.schedule_commands]
        merged.sort(key=lambda entry: entry[0])
        return tuple(merged)


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """Encode *scenario* as a JSON-compatible campaign-spec entry."""
    record: Dict[str, Any] = {
        "id": scenario.scenario_id,
        "factory": scenario.factory,
        "seed": scenario.seed,
        "ticks": scenario.ticks,
    }
    if scenario.factory_kwargs:
        record["kwargs"] = dict(scenario.factory_kwargs)
    if scenario.config_doc is not None:
        record["config"] = dict(scenario.config_doc)
    if scenario.faults:
        record["faults"] = [dict(fault_to_dict(fault), tick=tick)
                            for tick, fault in scenario.faults]
    if scenario.schedule_commands:
        record["schedule_commands"] = [
            {"tick": tick, "schedule": schedule_id}
            for tick, schedule_id in scenario.schedule_commands]
    if not scenario.oracle:
        record["oracle"] = False
    return record


def scenario_from_dict(data: Mapping[str, Any]) -> Scenario:
    """Rebuild a :class:`Scenario` from a campaign-spec entry."""
    faults: List[Tuple[Ticks, Fault]] = []
    for entry in data.get("faults", ()):
        fields = dict(entry)
        tick = fields.pop("tick")
        faults.append((tick, fault_from_dict(fields)))
    commands = tuple((entry["tick"], entry["schedule"])
                     for entry in data.get("schedule_commands", ()))
    return Scenario(
        scenario_id=data["id"],
        factory=data.get("factory", "prototype"),
        seed=data.get("seed", 0),
        ticks=data["ticks"],
        factory_kwargs=dict(data.get("kwargs", {})),
        config_doc=data.get("config"),
        faults=tuple(faults),
        schedule_commands=commands,
        oracle=data.get("oracle", True),
    )


def load_campaign_spec(path: str) -> List[Scenario]:
    """Load a campaign spec document: ``{"scenarios": [entry, ...]}``.

    Entries carrying a ``nodes`` key are constellation scenarios
    (:func:`repro.constellation.scenarios.constellation_scenario_from_dict`);
    the two kinds mix freely in one spec — the campaign runner dispatches
    per scenario.
    """
    with open(path, "r", encoding="utf-8") as stream:
        document = json.load(stream)
    entries = document.get("scenarios")
    if not isinstance(entries, list) or not entries:
        raise ConfigurationError(
            f"{path}: campaign spec needs a non-empty 'scenarios' list")
    scenarios: List = []
    for entry in entries:
        if "nodes" in entry:
            from ..constellation.scenarios import \
                constellation_scenario_from_dict

            scenarios.append(constellation_scenario_from_dict(entry))
        else:
            scenarios.append(scenario_from_dict(entry))
    identifiers = [scenario.scenario_id for scenario in scenarios]
    if len(set(identifiers)) != len(identifiers):
        raise ConfigurationError(f"{path}: duplicate scenario ids")
    return scenarios


# ------------------------------------------------------------------ #
# campaign builders
# ------------------------------------------------------------------ #

#: (template name, fault constructor) pairs for the fault matrix.
_FAULT_TEMPLATES: Tuple[Tuple[str, Callable[[], Fault]], ...] = (
    ("start-faulty", lambda: StartProcessFault("P1", FAULTY_PROCESS)),
    ("mem-P2", lambda: MemoryViolationFault("P2")),
    ("mem-P4", lambda: MemoryViolationFault("P4")),
    ("crash-P2-warm", lambda: PartitionCrashFault("P2")),
    ("crash-P4-cold", lambda: PartitionCrashFault("P4", cold=True)),
    ("flood-alerts", lambda: MessageFloodFault("P4", "alert_out", count=100)),
    ("flood-telemetry", lambda: MessageFloodFault("P2", "tm_out", count=64)),
    ("kill-obdh", lambda: ProcessKillFault("P2", "obdh-storage")),
)

#: Within-MTF injection offsets: inside P1's window, at window boundaries,
#: mid-P4 slack and the last window of the Fig. 8 tables.
_INJECTION_OFFSETS: Tuple[Ticks, ...] = (50, 200, 375, 650, 1080, 1250)


def fault_matrix_campaign(*, count: int = 64, mtfs: int = 6,
                          seed: int = 0) -> List[Scenario]:
    """Cross fault templates with injection times over the prototype.

    Scenario *i* applies template ``i % len(templates)`` at MTF index and
    within-MTF offset walked deterministically from *i*; every third
    scenario additionally commands a mid-campaign switch to chi2, so the
    matrix covers fault x time x schedule interactions.  Seeds are offset
    by *seed* so whole matrices can themselves be swept.
    """
    if count < 1 or mtfs < 3:
        raise ConfigurationError(
            f"fault matrix needs count >= 1 and mtfs >= 3, "
            f"got count={count}, mtfs={mtfs}")
    scenarios: List[Scenario] = []
    for index in range(count):
        name, template = _FAULT_TEMPLATES[index % len(_FAULT_TEMPLATES)]
        stride = index // len(_FAULT_TEMPLATES)
        offset = _INJECTION_OFFSETS[stride % len(_INJECTION_OFFSETS)]
        mtf_index = 1 + (stride // len(_INJECTION_OFFSETS)) % (mtfs - 2)
        tick = mtf_index * MTF + offset
        commands: Tuple[Tuple[Ticks, str], ...] = ()
        if index % 3 == 0:
            commands = ((tick + MTF // 2, "chi2"),)
        scenarios.append(Scenario(
            scenario_id=f"fm-{index:04d}-{name}",
            factory="prototype",
            seed=seed + index,
            ticks=mtfs * MTF,
            faults=((tick, template()),),
            schedule_commands=commands,
        ))
    return scenarios


def seed_sweep_campaign(*, count: int = 16, mtfs: int = 8,
                        base_seed: int = 0) -> List[Scenario]:
    """The chaos workload (every fault class at once) across seeds.

    Mirrors ``tests/integration/test_chaos.py``: WCET overrun, memory
    attack, message flood, partition crash and a schedule switch in one
    run, repeated for *count* consecutive seeds.
    """
    if count < 1 or mtfs < 6:
        raise ConfigurationError(
            f"seed sweep needs count >= 1 and mtfs >= 6, "
            f"got count={count}, mtfs={mtfs}")
    scenarios: List[Scenario] = []
    for index in range(count):
        seed = base_seed + index
        scenarios.append(Scenario(
            scenario_id=f"seed-{seed:05d}",
            factory="prototype",
            seed=seed,
            ticks=mtfs * MTF,
            faults=(
                (1 * MTF, StartProcessFault("P1", FAULTY_PROCESS)),
                (2 * MTF + 100, MemoryViolationFault("P4")),
                (3 * MTF + 500, MessageFloodFault("P4", "alert_out",
                                                  count=100)),
                (4 * MTF + 50, PartitionCrashFault("P2")),
            ),
            schedule_commands=((5 * MTF, "chi2"),),
        ))
    return scenarios


#: The chaos-campaign fault arsenal: constructors drawing any free
#: parameters from the scenario's derived rng stream.  Deliberately
#: confined to P1, P2 and P4 so P3 (the TTC system partition) stays
#: fault-free and its windows remain assertable.
_CHAOS_ARSENAL: Tuple[Callable[[SeededRng], Fault], ...] = (
    lambda rng: StartProcessFault("P1", FAULTY_PROCESS),
    lambda rng: MemoryViolationFault("P2"),
    lambda rng: MemoryViolationFault("P4"),
    lambda rng: PartitionCrashFault("P2"),
    lambda rng: PartitionCrashFault("P4", cold=True),
    lambda rng: MessageFloodFault("P4", "alert_out",
                                  count=rng.randint(16, 128)),
    lambda rng: MessageFloodFault("P2", "tm_out",
                                  count=rng.randint(16, 64)),
    lambda rng: ProcessKillFault("P2", "obdh-storage"),
    # Silencing the heartbeat is the watchdog's reason to exist.
    lambda rng: ProcessKillFault("P4", HEARTBEAT_PROCESS),
)


def chaos_campaign(*, count: int = 50, mtfs: int = 10,
                   base_seed: int = 0, shared_seed: bool = False,
                   prefix_mtfs: int = 0,
                   shared_faults: int = 0,
                   crash_scenarios: int = 0) -> List[Scenario]:
    """Randomized fault barrages against the FDIR-supervised prototype.

    Each scenario derives its own rng stream from *base_seed* and draws
    3–6 faults (times and kinds) from :data:`_CHAOS_ARSENAL`, sometimes
    adding a mid-run commanded switch to ``chi2``.  The prototype runs
    with ``fdir_supervision=True`` — escalation, storm parking, probation
    and the P4 watchdog are all live — and every trace is audited by the
    TSP invariant oracle (``oracle=True``): the campaign's pass criterion
    is *no invariant ever breaks under supervision*, not merely "no
    crash".  Fully deterministic: the same *base_seed* yields the same
    scenarios, and thus the same campaign digest, for any worker count.

    *shared_seed* gives every scenario ``seed=base_seed`` instead of
    consecutive seeds (variety still comes from each scenario's own fault
    draw stream), and *prefix_mtfs* keeps the first that many MTFs
    fault-free — together they produce campaigns whose scenarios share a
    long common prefix, the workload prefix-sharing
    (:mod:`repro.campaign.prefix`) accelerates.  *shared_faults* goes one
    step further: that many leading faults are drawn *once* (from a
    ``chaos-shared`` stream of *base_seed*) into the first half of the
    injection span and prepended to every scenario, so scenarios share
    not just a fault-free root but a chain of identical applied faults —
    the deep shared-fault workload the divergence trie forks at interior
    checkpoints.  With ``shared_faults > 0`` the per-scenario draws (and
    any commanded switch) land strictly after the shared region, keeping
    the common prefix genuinely common.  The defaults reproduce the
    historical suite digests exactly.

    *crash_scenarios* appends a late
    :class:`~repro.fault.faults.SimulatedCrashFault` to the first that
    many scenarios — the deterministic, reproducible failures the flight
    recorder (and the CI ``telemetry-smoke`` job) needs a campaign to
    contain.  The fault lands after every drawn injection (at the end of
    the injection span), so the crashed scenarios still exercise their
    full barrage first.  The default of 0 changes nothing.
    """
    if count < 1 or mtfs < 4:
        raise ConfigurationError(
            f"chaos campaign needs count >= 1 and mtfs >= 4, "
            f"got count={count}, mtfs={mtfs}")
    if not 0 <= crash_scenarios <= count:
        raise ConfigurationError(
            f"crash_scenarios must be in [0, count], got "
            f"crash_scenarios={crash_scenarios} with count={count}")
    if not 0 <= prefix_mtfs <= mtfs - 3:
        raise ConfigurationError(
            f"prefix_mtfs must be in [0, mtfs - 3], got "
            f"prefix_mtfs={prefix_mtfs} with mtfs={mtfs}")
    if shared_faults < 0:
        raise ConfigurationError(
            f"shared_faults must be >= 0, got {shared_faults}")
    earliest = max(MTF // 2, prefix_mtfs * MTF)
    span_end = (mtfs - 2) * MTF
    shared: List[Tuple[Ticks, Fault]] = []
    divergent_from = earliest
    if shared_faults:
        # The shared chain covers the first seven eighths of the
        # injection span, drawn stratified (fault i in stratum i) so the
        # chain starts near *earliest* and its interior checkpoints are
        # spread deep into the run — the geometry the divergence trie
        # exploits (root-only sharing stops at the FIRST shared fault;
        # the trie forks past the LAST one).
        shared_end = earliest + 7 * (span_end - earliest) // 8
        if shared_end <= earliest or shared_end + 1 > span_end:
            raise ConfigurationError(
                f"shared_faults needs a wider injection span: "
                f"[{earliest}, {span_end}] cannot hold a shared region "
                f"(raise mtfs or lower prefix_mtfs)")
        shared_rng = SeededRng(base_seed).fork("chaos-shared")
        span = shared_end - earliest
        for index in range(shared_faults):
            build = shared_rng.choice(_CHAOS_ARSENAL)
            low = earliest + span * index // shared_faults
            high = earliest + span * (index + 1) // shared_faults
            tick = shared_rng.randint(low, high)
            shared.append((tick, build(shared_rng)))
        shared.sort(key=lambda entry: entry[0])
        divergent_from = shared_end + 1
    scenarios: List[Scenario] = []
    for index in range(count):
        rng = SeededRng(base_seed).fork(f"chaos-{index}")
        barrage = rng.randint(3, 6)
        faults: List[Tuple[Ticks, Fault]] = []
        for _ in range(barrage):
            build = rng.choice(_CHAOS_ARSENAL)
            tick = rng.randint(divergent_from, span_end)
            faults.append((tick, build(rng)))
        faults.sort(key=lambda entry: entry[0])
        commands: Tuple[Tuple[Ticks, str], ...] = ()
        if rng.chance(0.3):
            commands = ((rng.randint(max(MTF, divergent_from),
                                     span_end), "chi2"),)
        faults = shared + faults
        if index < crash_scenarios:
            faults.append((span_end, SimulatedCrashFault(
                detail=f"chaos-{base_seed + index:05d} crash drill")))
        scenarios.append(Scenario(
            scenario_id=f"chaos-{base_seed + index:05d}",
            factory="prototype",
            seed=base_seed if shared_seed else base_seed + index,
            ticks=mtfs * MTF,
            factory_kwargs={"fdir_supervision": True},
            faults=tuple(faults),
            schedule_commands=commands,
        ))
    return scenarios


def config_sweep_campaign(*, count: int = 16, partitions: int = 4,
                          utilization: float = 0.6, ticks: Ticks = 20_000,
                          base_seed: int = 0) -> List[Scenario]:
    """Generated systems (E11-style synthetic PSTs) across seeds.

    Each scenario builds its own random requirement set and first-fit PST
    via the ``generated`` factory and runs the scheduling skeleton for
    *ticks* — the campaign-scale version of the paper's automated
    parameter-definition aids.
    """
    if count < 1:
        raise ConfigurationError(f"config sweep needs count >= 1, "
                                 f"got {count}")
    return [
        Scenario(
            scenario_id=f"cfg-{base_seed + index:05d}",
            factory="generated",
            seed=base_seed + index,
            ticks=ticks,
            factory_kwargs={"partitions": partitions,
                            "utilization": utilization},
        )
        for index in range(count)
    ]
