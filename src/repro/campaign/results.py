"""Campaign results: per-scenario summaries and deterministic aggregation.

A :class:`ScenarioResult` is the compact record a worker ships back across
the process boundary instead of the full trace: counters, window occupancy
and the trace's content digest (:meth:`repro.kernel.trace.Trace.summary`).
Aggregation is *deterministic by construction*: results are keyed and
ordered by scenario id, wall-clock timings are kept out of the
deterministic report, and the whole campaign collapses to one
``campaign_digest`` — the invariant the pool runner is tested against
(identical bytes for any worker count and chunking).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ScenarioResult",
    "aggregate",
    "canonical_execution_telemetry",
    "deterministic_report",
    "report_json",
    "render_summary",
    "percentile",
]

#: The fixed top-level key set of the canonicalized ``timing.execution``
#: sidecar — every key always present (None when the runner produced no
#: such section), so sidecar diffs across runs compare like for like.
EXECUTION_TELEMETRY_KEYS = ("prefix_tree", "shm", "telemetry_stream",
                            "cycle_cache", "workers")

#: Scenario completion states.
STATUS_OK = "ok"
STATUS_CRASHED = "crashed"
STATUS_TIMEOUT = "timeout"


@dataclass(frozen=True)
class ScenarioResult:
    """What one scenario produced — everything the aggregate needs.

    ``wall_time_s`` and ``forked_at_tick`` are the only nondeterministic
    fields (cache contents depend on scheduling order, wall time on the
    host); every consumer of the determinism invariant must go through
    :meth:`to_dict` (which excludes them) or :func:`deterministic_report`.
    """

    scenario_id: str
    seed: int
    status: str
    ticks: int = 0
    deadline_misses: int = 0
    hm_events: int = 0
    schedule_switches: int = 0
    memory_faults: int = 0
    faults_applied: int = 0
    #: The injector's log, compacted to ``(tick, fault kind, status)`` —
    #: what was actually applied, correlatable with the trace.
    injections: Tuple[Tuple[int, str, str], ...] = ()
    trace_events: int = 0
    trace_digest: str = ""
    occupancy: Tuple[Tuple[str, int], ...] = ()
    #: Compact deterministic metric pairs (:func:`repro.obs.compact_metrics`).
    metrics: Tuple[Tuple[str, int], ...] = ()
    error: str = ""
    #: Per-node inter-node fabric counters for constellation scenarios:
    #: ``(("n0", (("sent", 12), ...)), ...)`` keyed by
    #: :data:`repro.constellation.comm.NODE_COMM_STAT_KEYS`.  Empty for
    #: single-node scenarios (and then absent from :meth:`to_dict`, so
    #: historical report bytes are unchanged).
    node_comm: Tuple[Tuple[str, Tuple[Tuple[str, int], ...]], ...] = ()
    wall_time_s: float = 0.0
    #: Tick this run forked from a cached prefix snapshot (``-1`` = cold
    #: run).  Which runs fork depends on cache state, not on the scenario,
    #: so this lives with the timing sidecar, never in the digest.
    forked_at_tick: int = -1

    @property
    def ok(self) -> bool:
        """True if the scenario ran to its horizon without failure."""
        return self.status == STATUS_OK

    def to_dict(self, *, include_timing: bool = False) -> Dict[str, Any]:
        """JSON-compatible record; timing only on request (nondeterministic)."""
        record: Dict[str, Any] = {
            "id": self.scenario_id,
            "seed": self.seed,
            "status": self.status,
            "ticks": self.ticks,
            "deadline_misses": self.deadline_misses,
            "hm_events": self.hm_events,
            "schedule_switches": self.schedule_switches,
            "memory_faults": self.memory_faults,
            "faults_applied": self.faults_applied,
            "injections": [
                {"tick": tick, "fault": kind, "status": status}
                for tick, kind, status in self.injections],
            "trace_events": self.trace_events,
            "trace_digest": self.trace_digest,
            "occupancy": {partition: ticks
                          for partition, ticks in self.occupancy},
            "metrics": {name: value for name, value in self.metrics},
            "error": self.error,
        }
        if self.node_comm:
            record["node_comm"] = {
                node: {name: value for name, value in stats}
                for node, stats in self.node_comm}
        if include_timing:
            record["wall_time_s"] = self.wall_time_s
            record["forked_at_tick"] = self.forked_at_tick
        return record


def percentile(values: Sequence[int], fraction: float) -> int:
    """Nearest-rank percentile of *values* (deterministic, no interpolation)."""
    if not values:
        return 0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], "
                         f"got {fraction}")
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


def _distribution(values: Sequence[int]) -> Dict[str, int]:
    return {
        "p50": percentile(values, 0.50),
        "p90": percentile(values, 0.90),
        "p99": percentile(values, 0.99),
        "max": max(values) if values else 0,
    }


def aggregate(results: Sequence[ScenarioResult]) -> Dict[str, Any]:
    """Deterministic campaign aggregate, keyed by scenario id order.

    Identical result sets produce byte-identical aggregates regardless of
    the order workers delivered them in — the pool runner's invariant.
    """
    ordered = sorted(results, key=lambda result: result.scenario_id)
    statuses: Dict[str, int] = {}
    for result in ordered:
        statuses[result.status] = statuses.get(result.status, 0) + 1
    totals = {
        "ticks": sum(r.ticks for r in ordered),
        "deadline_misses": sum(r.deadline_misses for r in ordered),
        "hm_events": sum(r.hm_events for r in ordered),
        "schedule_switches": sum(r.schedule_switches for r in ordered),
        "memory_faults": sum(r.memory_faults for r in ordered),
        "faults_applied": sum(r.faults_applied for r in ordered),
        "trace_events": sum(r.trace_events for r in ordered),
    }
    digest = hashlib.sha256("|".join(
        f"{r.scenario_id}:{r.status}:{r.trace_digest}:"
        + ";".join(f"{tick}@{kind}={status}"
                   for tick, kind, status in r.injections)
        for r in ordered).encode("utf-8")).hexdigest()[:16]
    # Cross-scenario distributions of the compact metric pairs each
    # worker computed (repro.obs.compact_metrics): folded in scenario-id
    # order, so the section inherits the byte-identity invariant.
    metric_samples: Dict[str, List[int]] = {}
    for result in ordered:
        for name, value in result.metrics:
            metric_samples.setdefault(name, []).append(value)
    metrics = {
        name: dict(_distribution(values), total=sum(values))
        for name, values in sorted(metric_samples.items())}
    return {
        "scenarios": len(ordered),
        "status": dict(sorted(statuses.items())),
        "totals": totals,
        "deadline_misses": _distribution(
            [r.deadline_misses for r in ordered]),
        "trace_events": _distribution([r.trace_events for r in ordered]),
        "metrics": metrics,
        "campaign_digest": digest,
    }


def deterministic_report(results: Sequence[ScenarioResult]
                         ) -> Dict[str, Any]:
    """Aggregate + per-scenario records, with every timing field excluded."""
    ordered = sorted(results, key=lambda result: result.scenario_id)
    return {
        "aggregate": aggregate(ordered),
        "scenarios": [result.to_dict() for result in ordered],
    }


def canonical_execution_telemetry(
        telemetry: Mapping[str, Any]) -> Dict[str, Any]:
    """Canonical form of the runner's execution-telemetry sidecar.

    The raw dict the runner fills is keyed by whatever execution produced
    — most damagingly, the per-worker section is keyed by *pid*, so two
    otherwise identical runs never diff clean.  Canonicalization pins the
    shape:

    * the top level always carries exactly
      :data:`EXECUTION_TELEMETRY_KEYS` (missing sections become None);
    * worker entries are renamed ``worker-00``, ``worker-01``, ... in
      sorted original-key order (pids are monotonic per campaign, so the
      renumbering is stable within a run and comparable across runs;
      the nondeterministic pid itself is preserved *inside* the entry);
    * everything else is passed through untouched.

    The values stay nondeterministic (they are timing-channel material);
    only the key structure is stabilized, which is what makes sidecar
    diffs meaningful.
    """
    canonical: Dict[str, Any] = {
        key: telemetry.get(key) for key in EXECUTION_TELEMETRY_KEYS}
    workers = telemetry.get("workers")
    if workers:
        renamed: Dict[str, Any] = {}
        for index, key in enumerate(sorted(workers)):
            entry = workers[key]
            if isinstance(entry, Mapping):
                entry = dict(entry)
                entry.setdefault("label", key)
            renamed[f"worker-{index:02d}"] = entry
        canonical["workers"] = renamed
    return canonical


def report_json(results: Sequence[ScenarioResult], *,
                include_timing: bool = False,
                meta: Optional[Mapping[str, Any]] = None,
                telemetry: Optional[Mapping[str, Any]] = None) -> str:
    """The campaign report as canonical JSON.

    Without *include_timing* (and *meta*) the bytes depend only on the
    scenario results — the form the determinism tests compare.
    *telemetry* (the runner's execution-telemetry dict: divergence-trie
    shape, per-worker cache counters, shared-memory transport stats,
    telemetry-stream counters) is nondeterministic sidecar material and
    only emitted with timing, in the stable key order of
    :func:`canonical_execution_telemetry`.
    """
    document: Dict[str, Any] = deterministic_report(results)
    if include_timing:
        ordered = sorted(results, key=lambda result: result.scenario_id)
        document["timing"] = {
            "total_wall_time_s": sum(r.wall_time_s for r in ordered),
            "per_scenario_wall_time_s": {
                r.scenario_id: r.wall_time_s for r in ordered},
            "prefix_cache": {
                "forked_scenarios": sum(
                    1 for r in ordered if r.forked_at_tick >= 0),
                "ticks_skipped": sum(
                    max(r.forked_at_tick, 0) for r in ordered),
                "per_scenario_forked_at": {
                    r.scenario_id: r.forked_at_tick for r in ordered},
            },
        }
        if telemetry:
            document["timing"]["execution"] = \
                canonical_execution_telemetry(telemetry)
    if meta:
        document["meta"] = dict(meta)
    return json.dumps(document, sort_keys=True, indent=2)


def render_summary(results: Sequence[ScenarioResult]) -> str:
    """Human-readable campaign summary (the CLI's stdout)."""
    summary = aggregate(results)
    lines = [
        f"campaign: {summary['scenarios']} scenarios, "
        + ", ".join(f"{count} {status}"
                    for status, count in summary["status"].items()),
        f"  simulated ticks : {summary['totals']['ticks']}",
        f"  deadline misses : {summary['totals']['deadline_misses']} "
        f"(p50 {summary['deadline_misses']['p50']}, "
        f"max {summary['deadline_misses']['max']})",
        f"  HM events       : {summary['totals']['hm_events']}",
        f"  schedule switches: {summary['totals']['schedule_switches']}",
        f"  memory faults   : {summary['totals']['memory_faults']}",
        f"  faults applied  : {summary['totals']['faults_applied']}",
        f"  campaign digest : {summary['campaign_digest']}",
    ]
    failures = [r for r in sorted(results, key=lambda r: r.scenario_id)
                if not r.ok]
    for result in failures[:10]:
        lines.append(f"  FAILED {result.scenario_id} "
                     f"[{result.status}]: {result.error}")
    if len(failures) > 10:
        lines.append(f"  ... and {len(failures) - 10} more failures")
    return "\n".join(lines)
