"""Payload mockup: an imaging instrument with onboard compression (Sect. 1).

Payload subsystems are the flexible, lower-criticality side of the SWaP
consolidation story: here an imaging pipeline producing frames and a
compression stage, optionally hosted on a *generic* (non-real-time) POS —
the Sect. 2.5 coexistence scenario — since it has no hard deadlines
(``deadline = INFINITE_TIME``; the partition can be scheduled with d = 0 or
slack windows).

Processes:

* ``payload-imaging`` — periodic frame acquisition;
* ``payload-compress`` — batch compression of acquired frames (no
  deadline; runs in leftover window time).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..apex.interface import ApexInterface, ProcessContext
from ..config.builder import PartitionBuilder
from ..pos.effects import Call, Compute
from ..types import INFINITE_TIME, Ticks

__all__ = ["PayloadStats", "configure"]


class PayloadStats:
    """Frames acquired/compressed (test observability)."""

    def __init__(self) -> None:
        self.frames_acquired = 0
        self.frames_compressed = 0


def _imaging_body(work: Ticks, stats: PayloadStats):
    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            yield Compute(work)
            stats.frames_acquired += 1
            buffer = ctx.apex.buffer("frames")
            yield Call(buffer.send, (b"frame-%d" % stats.frames_acquired,))
            yield Call(ctx.apex.periodic_wait)

    return factory


def _compress_body(work_per_frame: Ticks, stats: PayloadStats):
    def factory(ctx: ProcessContext) -> Iterator:
        from ..types import INFINITE_TIME as FOREVER

        buffer = ctx.apex.buffer("frames")
        while True:
            result = yield Call(buffer.receive, (FOREVER,))
            if result.is_ok:
                yield Compute(work_per_frame)
                stats.frames_compressed += 1

    return factory


def configure(builder: PartitionBuilder, *, cycle: Ticks, duty: Ticks,
              stats: Optional[PayloadStats] = None,
              generic_pos: bool = False) -> PayloadStats:
    """Declare the payload processes on *builder*; returns the stats object.

    ``generic_pos=True`` hosts the partition on the round-robin
    non-real-time POS (Sect. 2.5).
    """
    if stats is None:
        stats = PayloadStats()
    imaging = max(duty // 4, 1)
    compress = max(duty // 6, 1)
    if generic_pos:
        builder.pos("generic", quantum=3)
    builder.process("payload-imaging", period=cycle, deadline=cycle,
                    priority=2, wcet=imaging)
    builder.process("payload-compress", priority=6, periodic=False)
    builder.body("payload-imaging", _imaging_body(imaging, stats))
    builder.body("payload-compress", _compress_body(compress, stats))

    def init(apex: ApexInterface) -> None:
        from ..types import PartitionMode

        apex.create_buffer("frames", max_messages=32, max_message_size=64)
        for process in ("payload-imaging", "payload-compress"):
            apex.start(process).expect(f"starting {process}")
        apex.set_partition_mode(PartitionMode.NORMAL)

    builder.init_hook(init)
    return stats
