"""AOCS — Attitude and Orbit Control Subsystem mockup (Sects. 1, 6).

The AOCS is the canonical hard-real-time avionics function of Sect. 1's
inventory.  The mockup runs three processes (the prototype partitions hold
"one to three mockup processes, which period is a multiple of the
respective partition's cycle duration" — Sect. 6):

* ``aocs-sensing`` — sensor acquisition and fusion (highest priority);
* ``aocs-control`` — the control law; publishes the attitude quaternion on
  the ``attitude_out`` sampling port each cycle;
* ``aocs-momentum`` — slower momentum management, at twice the cycle.
"""

from __future__ import annotations

import struct
from typing import Iterator

from ..apex.interface import ProcessContext
from ..config.builder import PartitionBuilder
from ..pos.effects import Call, Compute
from ..types import PortDirection, Ticks

__all__ = ["ATTITUDE_PORT", "configure", "attitude_payload"]

#: Sampling port on which the control process publishes attitude data.
ATTITUDE_PORT = "attitude_out"


def attitude_payload(job: int, ctx: ProcessContext) -> bytes:
    """A plausible attitude record: job counter plus a drifting quaternion."""
    drift = (job % 360) / 360.0
    return struct.pack("<Ifff", job, drift, 1.0 - drift, 0.5 * drift)


def _sensing_body(work: Ticks):
    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            yield Compute(work)
            yield Call(ctx.apex.periodic_wait)

    return factory


def _control_body(work: Ticks):
    def factory(ctx: ProcessContext) -> Iterator:
        job = 0
        while True:
            yield Compute(work)
            job += 1
            yield Call(ctx.apex.sampling_port(ATTITUDE_PORT).write,
                       (attitude_payload(job, ctx),))
            if job % 8 == 0:
                yield Call(ctx.log, (f"aocs-control: cycle {job}",))
            yield Call(ctx.apex.periodic_wait)

    return factory


def _momentum_body(work: Ticks):
    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            yield Compute(work)
            yield Call(ctx.apex.periodic_wait)

    return factory


def configure(builder: PartitionBuilder, *, cycle: Ticks,
              duty: Ticks) -> PartitionBuilder:
    """Declare the AOCS processes on *builder*.

    *cycle* is the partition's activation cycle ``eta``; *duty* its duration
    ``d`` per cycle.  Process WCETs are sized to fit inside ``duty`` with
    headroom; periods are multiples of the cycle (Sect. 6).
    """
    sensing = max(duty // 5, 1)
    control = max(duty // 4, 1)
    momentum = max(duty // 8, 1)
    builder.process("aocs-sensing", period=cycle, deadline=cycle,
                    priority=1, wcet=sensing)
    builder.process("aocs-control", period=cycle, deadline=cycle,
                    priority=2, wcet=control)
    builder.process("aocs-momentum", period=2 * cycle, deadline=2 * cycle,
                    priority=3, wcet=momentum)
    builder.body("aocs-sensing", _sensing_body(sensing))
    builder.body("aocs-control", _control_body(control))
    builder.body("aocs-momentum", _momentum_body(momentum))

    def init(apex) -> None:
        from ..types import PartitionMode

        apex.create_sampling_port(ATTITUDE_PORT, PortDirection.SOURCE)
        for process in ("aocs-sensing", "aocs-control", "aocs-momentum"):
            apex.start(process).expect(f"starting {process}")
        apex.set_partition_mode(PartitionMode.NORMAL)

    builder.init_hook(init)
    return builder
