"""Framework for mockup satellite applications (Sect. 6).

The paper's prototype runs, in each partition, "an RTEMS-based mockup
application representative of typical functions present in a satellite
system".  This module provides the building blocks those mockups share:
parameterized periodic worker bodies, port-driven producer/consumer bodies,
and small helpers for writing application code against the APEX interface.

All bodies are generator factories with the standard signature
``factory(ctx: ProcessContext)`` (see :mod:`repro.apex.interface`).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..apex.interface import ProcessContext
from ..apex.types import ReturnCode
from ..pos.effects import Call, Compute
from ..types import Ticks

__all__ = [
    "spin_forever",
    "periodic_worker",
    "jittery_periodic_worker",
    "sampling_producer",
    "sampling_consumer",
    "queuing_producer",
    "queuing_consumer",
    "overrunning_worker",
    "one_shot",
]


def spin_forever(ctx: ProcessContext) -> Iterator:
    """A body that computes forever — never blocks, never completes.

    Useful as a background hog or as a deadline-carrying spinner in tests
    and benchmarks (pass directly as a body factory).
    """
    while True:
        yield Compute(1_000_000)


def periodic_worker(work: Ticks, *, label: str = "",
                    log_every: int = 0) -> Callable[[ProcessContext], Iterator]:
    """A process that computes *work* ticks per period, then waits for release.

    ``log_every = n`` emits one traced message every n-th job (0 = never);
    the messages surface in the partition's VITRAL window.
    """

    def factory(ctx: ProcessContext) -> Iterator:
        job = 0
        while True:
            yield Compute(work)
            job += 1
            if log_every and job % log_every == 0:
                yield Call(ctx.log, (f"{label or ctx.process}: job {job}",))
            yield Call(ctx.apex.periodic_wait)

    return factory


def jittery_periodic_worker(base_work: Ticks, jitter: Ticks, *,
                            label: str = ""
                            ) -> Callable[[ProcessContext], Iterator]:
    """Periodic worker whose execution time varies in
    ``[base_work, base_work + jitter]`` using the process's seeded RNG —
    deterministic per (system seed, partition, process)."""

    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            work = base_work + (ctx.rng.randint(0, jitter) if jitter else 0)
            yield Compute(work)
            yield Call(ctx.apex.periodic_wait)

    return factory


def overrunning_worker(work: Ticks, budget: Ticks
                       ) -> Callable[[ProcessContext], Iterator]:
    """The Sect. 6 *faulty process*: every iteration replenishes a deadline
    of *budget* ticks, then computes *work* > budget — guaranteeing a
    deadline miss that Algorithm 3 detects at the partition's next tick
    announcement (typically its next dispatch)."""

    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            yield Call(ctx.apex.replenish, (budget,))
            yield Compute(work)

    return factory


def one_shot(work: Ticks, *, message: str = ""
             ) -> Callable[[ProcessContext], Iterator]:
    """A process that computes once, optionally logs, and terminates."""

    def factory(ctx: ProcessContext) -> Iterator:
        yield Compute(work)
        if message:
            yield Call(ctx.log, (message,))

    return factory


def sampling_producer(port: str, *, work: Ticks,
                      payload: Callable[[int, ProcessContext], bytes]
                      ) -> Callable[[ProcessContext], Iterator]:
    """Periodic producer writing *payload(job, ctx)* to a sampling port."""

    def factory(ctx: ProcessContext) -> Iterator:
        job = 0
        while True:
            yield Compute(work)
            job += 1
            yield Call(ctx.apex.sampling_port(port).write,
                       (payload(job, ctx),))
            yield Call(ctx.apex.periodic_wait)

    return factory


def sampling_consumer(port: str, *, work: Ticks,
                      on_sample: Optional[
                          Callable[[bytes, bool, ProcessContext], None]] = None
                      ) -> Callable[[ProcessContext], Iterator]:
    """Periodic consumer reading a sampling port; *on_sample* receives
    ``(payload, validity, ctx)`` for each successful read."""

    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            yield Compute(work)
            result = yield Call(ctx.apex.sampling_port(port).read)
            if result.is_ok and on_sample is not None:
                payload, valid = result.value
                on_sample(payload, valid, ctx)
            yield Call(ctx.apex.periodic_wait)

    return factory


def queuing_producer(port: str, *, work: Ticks,
                     payload: Callable[[int, ProcessContext], bytes]
                     ) -> Callable[[ProcessContext], Iterator]:
    """Periodic producer sending *payload(job, ctx)* on a queuing port."""

    def factory(ctx: ProcessContext) -> Iterator:
        job = 0
        while True:
            yield Compute(work)
            job += 1
            yield Call(ctx.apex.queuing_port(port).send,
                       (payload(job, ctx),))
            yield Call(ctx.apex.periodic_wait)

    return factory


def queuing_consumer(port: str, *, work_per_message: Ticks,
                     on_message: Optional[
                         Callable[[bytes, ProcessContext], None]] = None,
                     drain_limit: int = 8
                     ) -> Callable[[ProcessContext], Iterator]:
    """Periodic consumer draining up to *drain_limit* messages per period."""

    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            for _ in range(drain_limit):
                result = yield Call(ctx.apex.queuing_port(port).receive)
                if not result.is_ok:
                    break
                yield Compute(work_per_message)
                if on_message is not None:
                    on_message(result.value, ctx)
            yield Call(ctx.apex.periodic_wait)

    return factory
