"""OBDH — Onboard Data Handling mockup (Sects. 1, 6).

Collects attitude samples published by the AOCS, packs housekeeping
telemetry frames, and forwards them to the TTC partition on a queuing port
— the "some payload subsystems may need to read AOCS data" flow of
Sect. 2.1.

Processes:

* ``obdh-housekeeping`` — reads the ``attitude_in`` sampling port, builds a
  telemetry frame, sends it on ``tm_out``;
* ``obdh-storage`` — background mass-memory bookkeeping.
"""

from __future__ import annotations

import struct
from typing import Iterator

from ..apex.interface import ProcessContext
from ..config.builder import PartitionBuilder
from ..pos.effects import Call, Compute
from ..types import PortDirection, Ticks

__all__ = ["ATTITUDE_IN_PORT", "TELEMETRY_PORT", "configure"]

#: Destination sampling port receiving AOCS attitude data.
ATTITUDE_IN_PORT = "attitude_in"

#: Source queuing port carrying telemetry frames to TTC.
TELEMETRY_PORT = "tm_out"


def _housekeeping_body(work: Ticks):
    def factory(ctx: ProcessContext) -> Iterator:
        frame = 0
        while True:
            yield Compute(work)
            sample = yield Call(ctx.apex.sampling_port(ATTITUDE_IN_PORT).read)
            frame += 1
            if sample.is_ok:
                payload, valid = sample.value
                header = struct.pack("<IB", frame, 1 if valid else 0)
                yield Call(ctx.apex.queuing_port(TELEMETRY_PORT).send,
                           (header + payload,))
            else:
                # No attitude yet: send an empty housekeeping frame.
                yield Call(ctx.apex.queuing_port(TELEMETRY_PORT).send,
                           (struct.pack("<IB", frame, 2),))
            yield Call(ctx.apex.periodic_wait)

    return factory


def _storage_body(work: Ticks):
    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            yield Compute(work)
            yield Call(ctx.apex.periodic_wait)

    return factory


def configure(builder: PartitionBuilder, *, cycle: Ticks,
              duty: Ticks) -> PartitionBuilder:
    """Declare the OBDH processes on *builder* (see :mod:`repro.apps.aocs`
    for the cycle/duty convention)."""
    housekeeping = max(duty // 4, 1)
    storage = max(duty // 6, 1)
    builder.process("obdh-housekeeping", period=cycle, deadline=cycle,
                    priority=1, wcet=housekeeping)
    builder.process("obdh-storage", period=2 * cycle, deadline=2 * cycle,
                    priority=4, wcet=storage)
    builder.body("obdh-housekeeping", _housekeeping_body(housekeeping))
    builder.body("obdh-storage", _storage_body(storage))

    def init(apex) -> None:
        from ..types import PartitionMode

        apex.create_sampling_port(ATTITUDE_IN_PORT, PortDirection.DESTINATION)
        apex.create_queuing_port(TELEMETRY_PORT, PortDirection.SOURCE)
        for process in ("obdh-housekeeping", "obdh-storage"):
            apex.start(process).expect(f"starting {process}")
        apex.set_partition_mode(PartitionMode.NORMAL)

    builder.init_hook(init)
    return builder
