"""FDIR — Fault Detection, Isolation and Recovery mockup (Sects. 1, 6).

Monitors the AOCS attitude feed (the "transmit data to FDIR" flow of
Sect. 2.1): stale or missing samples increment an anomaly counter; crossing
the threshold raises an alert on the ``alert_out`` queuing port and reports
an application error to Health Monitoring.

Processes:

* ``fdir-monitor`` — the anomaly watcher described above;
* ``fdir-logger`` — slow background consolidation;
* ``fdir-heartbeat`` (optional) — kicks the partition's PMK-level
  watchdog every cycle (APEX KICK_WATCHDOG), so a hung or crashed P4 is
  *detected* by the FDIR supervision layer rather than merely observed.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..apex.interface import ApexInterface, ProcessContext
from ..config.builder import PartitionBuilder
from ..pos.effects import Call, Compute
from ..types import PortDirection, Ticks

__all__ = ["ATTITUDE_MON_PORT", "ALERT_PORT", "HEARTBEAT_PROCESS",
           "FdirStats", "configure"]

#: Destination sampling port monitoring AOCS attitude.
ATTITUDE_MON_PORT = "attitude_mon"

#: Source queuing port raising alerts toward TTC.
ALERT_PORT = "alert_out"

#: Name of the optional watchdog-kicking process.
HEARTBEAT_PROCESS = "fdir-heartbeat"


class FdirStats:
    """Counters exposed for tests and the demo."""

    def __init__(self) -> None:
        self.samples_ok = 0
        self.samples_stale = 0
        self.samples_missing = 0
        self.alerts_raised = 0


def _monitor_body(work: Ticks, stats: FdirStats, threshold: int):
    def factory(ctx: ProcessContext) -> Iterator:
        anomalies = 0
        while True:
            yield Compute(work)
            sample = yield Call(
                ctx.apex.sampling_port(ATTITUDE_MON_PORT).read)
            if not sample.is_ok:
                stats.samples_missing += 1
                anomalies += 1
            else:
                _, valid = sample.value
                if valid:
                    stats.samples_ok += 1
                    anomalies = 0
                else:
                    stats.samples_stale += 1
                    anomalies += 1
            if anomalies >= threshold:
                stats.alerts_raised += 1
                anomalies = 0
                yield Call(ctx.apex.queuing_port(ALERT_PORT).send,
                           (b"FDIR:attitude-anomaly",))
                yield Call(ctx.log, ("fdir: attitude anomaly alert",))
            yield Call(ctx.apex.periodic_wait)

    return factory


def _logger_body(work: Ticks):
    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            yield Compute(work)
            yield Call(ctx.apex.periodic_wait)

    return factory


def _heartbeat_body(work: Ticks):
    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            yield Compute(work)
            # NOT_AVAILABLE (no watchdog configured) is deliberately
            # ignored: the heartbeat is harmless without a supervisor.
            yield Call(ctx.apex.kick_watchdog)
            yield Call(ctx.apex.periodic_wait)

    return factory


def configure(builder: PartitionBuilder, *, cycle: Ticks, duty: Ticks,
              stats: Optional[FdirStats] = None,
              anomaly_threshold: int = 3,
              heartbeat: bool = False) -> FdirStats:
    """Declare the FDIR processes on *builder*; returns the stats object.

    With ``heartbeat=True`` an additional high-priority process kicks the
    partition's PMK watchdog once per cycle.
    """
    if stats is None:
        stats = FdirStats()
    monitor = max(duty // 4, 1)
    logger = max(duty // 8, 1)
    builder.process("fdir-monitor", period=cycle, deadline=cycle,
                    priority=1, wcet=monitor)
    builder.process("fdir-logger", period=2 * cycle, deadline=2 * cycle,
                    priority=5, wcet=logger)
    builder.body("fdir-monitor",
                 _monitor_body(monitor, stats, anomaly_threshold))
    builder.body("fdir-logger", _logger_body(logger))
    processes = ["fdir-monitor", "fdir-logger"]
    if heartbeat:
        beat = max(duty // 10, 1)
        builder.process(HEARTBEAT_PROCESS, period=cycle, deadline=cycle,
                        priority=0, wcet=beat)
        builder.body(HEARTBEAT_PROCESS, _heartbeat_body(beat))
        processes.insert(0, HEARTBEAT_PROCESS)

    def init(apex: ApexInterface) -> None:
        from ..types import PartitionMode

        apex.create_sampling_port(ATTITUDE_MON_PORT,
                                  PortDirection.DESTINATION)
        apex.create_queuing_port(ALERT_PORT, PortDirection.SOURCE)
        for process in processes:
            apex.start(process).expect(f"starting {process}")
        apex.set_partition_mode(PartitionMode.NORMAL)

    builder.init_hook(init)
    return stats
