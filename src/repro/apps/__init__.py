"""Mockup satellite applications and the Sect. 6 prototype system."""

from . import aocs, fdir, obdh, payload, ttc
from .base import (
    jittery_periodic_worker,
    one_shot,
    overrunning_worker,
    periodic_worker,
    queuing_consumer,
    queuing_producer,
    sampling_consumer,
    sampling_producer,
)
from .prototype import (
    FAULTY_PROCESS,
    MTF,
    PrototypeHandles,
    build_prototype,
    inject_faulty_process,
    make_simulator,
)

__all__ = [
    "aocs", "fdir", "obdh", "payload", "ttc",
    "jittery_periodic_worker", "one_shot", "overrunning_worker",
    "periodic_worker", "queuing_consumer", "queuing_producer",
    "sampling_consumer", "sampling_producer",
    "FAULTY_PROCESS", "MTF", "PrototypeHandles", "build_prototype",
    "inject_faulty_process", "make_simulator",
]
