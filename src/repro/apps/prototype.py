"""The Sect. 6 prototype system: four partitions, two PSTs, fault injection.

This module encodes, verbatim, the demonstration configuration of the
paper's prototype implementation (Fig. 8):

.. code-block:: text

    P = {P1, P2, P3, P4}
    Q1 = Q2 = {<P1,1300,200>, <P2,650,100>, <P3,650,100>, <P4,1300,100>}
    chi1 = <MTF=1300, {<P1,0,200>, <P2,200,100>, <P3,300,100>, <P4,400,600>,
                       <P2,1000,100>, <P3,1100,100>, <P4,1200,100>}>
    chi2 = <MTF=1300, {<P1,0,200>, <P4,200,100>, <P3,300,100>, <P2,400,600>,
                       <P4,1000,100>, <P3,1100,100>, <P2,1200,100>}>

Each partition runs a mockup application "representative of typical
functions present in a satellite system": P1 hosts the AOCS, P2 the OBDH,
P3 the TTC (the authorized system partition able to switch schedules) and
P4 the FDIR.  Every mockup process's period is a multiple of its
partition's cycle (Sect. 6).

The *faulty process* of the paper's demonstration lives dormant in P1:
its configured WCET (150) fits its declared deadline budget (200), but its
actual behaviour overruns — "its WCET was underestimated at system
configuration and integration time" (Sect. 5) — so, once injected
(started), its deadline violation "is detected and reported every time
(except the first) that P1 is scheduled and dispatched to execute".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apex.interface import ApexInterface
from ..config.builder import SystemBuilder
from ..config.schema import SystemConfig
from ..kernel.simulator import Simulator
from ..types import PartitionMode, PortDirection, ScheduleChangeAction
from . import aocs, fdir, obdh, ttc
from .base import overrunning_worker

__all__ = ["PrototypeHandles", "MTF", "FAULTY_PROCESS", "build_prototype",
           "make_simulator", "inject_faulty_process", "STEADY_MTF",
           "build_steady_prototype", "make_steady_simulator"]

#: Major time frame of both prototype schedules (Fig. 8).
MTF = 1300

#: Name of the injectable faulty process hosted by P1.
FAULTY_PROCESS = "p1-faulty"

#: Budget the faulty process replenishes each iteration (its declared
#: time capacity), and the work it actually performs.
FAULTY_BUDGET = 200
FAULTY_WORK = 300


@dataclass
class PrototypeHandles:
    """Observability handles into the prototype's applications."""

    config: SystemConfig
    ttc_stats: "ttc.DownlinkStats"
    fdir_stats: "fdir.FdirStats"


def build_prototype(*, seed: int = 0, deadline_store: str = "list",
                    change_action_policy: str = "first_dispatch",
                    p1_change_action: ScheduleChangeAction =
                    ScheduleChangeAction.IGNORE,
                    fdir_supervision: bool = False) -> PrototypeHandles:
    """Build the Sect. 6 system configuration.

    ``p1_change_action`` optionally arms a ScheduleChangeAction for P1 on
    both schedules (the paper's demo uses none; tests use this hook).

    ``fdir_supervision`` attaches the FDIR supervision layer: a P1
    deadline-miss escalation chain (process restart -> partition restart
    -> degraded ``chi2`` switch -> partition stop), restart-storm
    parking, recovery probation back to ``chi1``, and a P4 heartbeat
    watchdog (P4 gains a ``fdir-heartbeat`` process).  The default build
    is unchanged — without supervision no new processes or events exist.
    """
    builder = SystemBuilder()
    builder.seed(seed)
    builder.deadline_store(deadline_store)
    builder.change_action_policy(change_action_policy)

    # P1's integration-time HM policy for deadline misses is the Sect. 5
    # recovery action "stopping the faulty process, and reinitializing it
    # from the entry address": the restarted process re-registers a fresh
    # deadline, overruns again, and is re-detected — so the violation is
    # "detected and reported every time (except the first) that P1 is
    # scheduled and dispatched to execute" (Sect. 6).
    from ..hm.tables import HmTables
    from ..types import ErrorCode, RecoveryAction

    builder.hm_tables(HmTables(partition_actions={
        "P1": {ErrorCode.DEADLINE_MISSED:
               RecoveryAction.STOP_AND_RESTART_PROCESS},
    }))

    # --- partitions and their mockup applications ------------------- #
    p1 = builder.partition("P1")
    aocs.configure(p1, cycle=MTF, duty=200)
    # The faulty process's declared WCET (40) passes every offline check —
    # it is "underestimated at system configuration and integration time"
    # (Sect. 5); the body actually computes FAULTY_WORK=300 per budget.
    p1.process(FAULTY_PROCESS, period=MTF, deadline=FAULTY_BUDGET,
               priority=9, wcet=40)
    p1.body(FAULTY_PROCESS, overrunning_worker(FAULTY_WORK, FAULTY_BUDGET))

    obdh.configure(builder.partition("P2"), cycle=650, duty=100)
    ttc_stats = ttc.configure(builder.partition("P3"), cycle=650, duty=100)
    fdir_stats = fdir.configure(builder.partition("P4"), cycle=MTF, duty=100,
                                heartbeat=fdir_supervision)

    if fdir_supervision:
        from ..fdir.policy import EscalationRule, EscalationStep, FdirConfig
        from ..types import ErrorCode, RecoveryAction

        builder.fdir(FdirConfig(
            rules=(
                # The Sect. 6 faulty process misses once per MTF while
                # armed; three misses within four frames climb one rung.
                EscalationRule(
                    code=ErrorCode.DEADLINE_MISSED, partition="P1",
                    window=4 * MTF, threshold=3,
                    chain=(
                        EscalationStep(RecoveryAction.RESTART_PARTITION),
                        EscalationStep(RecoveryAction.SWITCH_SCHEDULE,
                                       schedule="chi2"),
                        EscalationStep(RecoveryAction.STOP_PARTITION),
                    )),
            ),
            storm_window=3 * MTF, storm_limit=3,
            probation=8 * MTF,
            watchdogs={"P4": 4 * MTF},
        ))

    # --- interpartition channels ------------------------------------ #
    builder.sampling_channel(
        "attitude", source=("P1", aocs.ATTITUDE_PORT),
        destinations=(("P2", obdh.ATTITUDE_IN_PORT),
                      ("P4", fdir.ATTITUDE_MON_PORT)),
        max_message_size=64, refresh_period=2 * MTF)
    builder.queuing_channel(
        "telemetry", source=("P2", obdh.TELEMETRY_PORT),
        destination=("P3", ttc.TELEMETRY_IN_PORT),
        max_message_size=128, max_nb_messages=32)
    builder.queuing_channel(
        "alerts", source=("P4", fdir.ALERT_PORT),
        destination=("P3", ttc.ALERT_IN_PORT),
        max_message_size=64, max_nb_messages=8)

    # --- the two PSTs of Fig. 8 ------------------------------------- #
    chi1 = builder.schedule("chi1", mtf=MTF)
    chi2 = builder.schedule("chi2", mtf=MTF)
    for chi in (chi1, chi2):
        chi.require("P1", cycle=1300, duration=200)
        chi.require("P2", cycle=650, duration=100)
        chi.require("P3", cycle=650, duration=100)
        chi.require("P4", cycle=1300, duration=100)
        if p1_change_action is not ScheduleChangeAction.IGNORE:
            chi.on_switch("P1", p1_change_action)
    chi1.window("P1", offset=0, duration=200) \
        .window("P2", offset=200, duration=100) \
        .window("P3", offset=300, duration=100) \
        .window("P4", offset=400, duration=600) \
        .window("P2", offset=1000, duration=100) \
        .window("P3", offset=1100, duration=100) \
        .window("P4", offset=1200, duration=100)
    chi2.window("P1", offset=0, duration=200) \
        .window("P4", offset=200, duration=100) \
        .window("P3", offset=300, duration=100) \
        .window("P2", offset=400, duration=600) \
        .window("P4", offset=1000, duration=100) \
        .window("P3", offset=1100, duration=100) \
        .window("P2", offset=1200, duration=100)
    builder.initial_schedule("chi1")

    return PrototypeHandles(config=builder.build(), ttc_stats=ttc_stats,
                            fdir_stats=fdir_stats)


def make_simulator(handles: Optional[PrototypeHandles] = None,
                   backend: str = "reference",
                   cycle_cache: bool = False,
                   **kwargs) -> Simulator:
    """Convenience: build (or reuse) a prototype config and wrap it in a
    simulator.  *backend* selects the execution backend, *cycle_cache*
    opts into steady-state MTF memoization."""
    if handles is None:
        handles = build_prototype(**kwargs)
    return Simulator(handles.config, backend=backend,
                     cycle_cache=cycle_cache)


#: Major time frame of the steady-state cruise configuration.
STEADY_MTF = 1300

#: Constant attitude record published every cruise frame (a parked
#: momentum-dumped attitude: unit quaternion, zero drift).
_CRUISE_ATTITUDE = b"\x00\x00\x00\x00" + b"\x00\x00\x80\x3f" * 3

#: Constant housekeeping telemetry frame forwarded to the TTC.
_CRUISE_TELEMETRY = b"HK:nominal,att=unit,wheels=parked"


def _cruise_attitude(job: int, ctx) -> bytes:
    return _CRUISE_ATTITUDE


def _cruise_telemetry(job: int, ctx) -> bytes:
    return _CRUISE_TELEMETRY


def build_steady_prototype(*, seed: int = 0) -> SystemConfig:
    """Build the long-horizon *cruise mode* configuration.

    The Sect. 6 demo system is deliberately never frame-periodic — job
    counters ride in every payload, the AOCS quaternion drifts, log
    messages fire on an 8-job cadence, and the momentum process runs at
    twice the MTF.  This variant models the operational regime those
    transients settle into: a satellite in cruise, every process period
    equal to its partition cycle, every payload a constant record, no
    rng draws and no job-indexed behaviour.  From the second frame on,
    each major time frame is a byte-predictable repeat of the previous
    one — the steady state the cycle cache (DESIGN decision 13) detects
    and replays, and the workload behind ``bench_event_core
    --steady-mtfs``.

    The schedule and channel topology mirror ``chi1`` of Fig. 8 so the
    cruise workload exercises the same kernel machinery (two windows per
    partition cycle, a sampling fan-out, a queuing pipeline) as the
    faulty-demo configuration.
    """
    from .base import (periodic_worker, queuing_consumer, queuing_producer,
                       sampling_consumer, sampling_producer)

    builder = SystemBuilder()
    builder.seed(seed)

    def _partition(name, processes, init_ports):
        part = builder.partition(name)
        for process, period, work, priority, factory in processes:
            part.process(process, period=period, deadline=period,
                         priority=priority, wcet=work)
            part.body(process, factory)

        def init(apex, _ports=init_ports, _procs=processes):
            apex_module = apex
            for port, direction, kind in _ports:
                if kind == "sampling":
                    apex_module.create_sampling_port(port, direction)
                else:
                    apex_module.create_queuing_port(port, direction)
            for process, *_ in _procs:
                apex_module.start(process).expect(f"starting {process}")
            apex_module.set_partition_mode(PartitionMode.NORMAL)

        part.init_hook(init)

    _partition("P1", [
        ("aocs-sensing", STEADY_MTF, 40, 1, periodic_worker(40)),
        ("aocs-control", STEADY_MTF, 50, 2,
         sampling_producer(aocs.ATTITUDE_PORT, work=50,
                           payload=_cruise_attitude)),
    ], [(aocs.ATTITUDE_PORT, PortDirection.SOURCE, "sampling")])
    _partition("P2", [
        ("obdh-housekeeping", 650, 25, 1,
         sampling_consumer(obdh.ATTITUDE_IN_PORT, work=25)),
        ("obdh-telemetry", 650, 25, 2,
         queuing_producer(obdh.TELEMETRY_PORT, work=25,
                          payload=_cruise_telemetry)),
    ], [(obdh.ATTITUDE_IN_PORT, PortDirection.DESTINATION, "sampling"),
        (obdh.TELEMETRY_PORT, PortDirection.SOURCE, "queuing")])
    _partition("P3", [
        ("ttc-telemetry", 650, 10, 1,
         queuing_consumer(ttc.TELEMETRY_IN_PORT, work_per_message=10,
                          drain_limit=4)),
    ], [(ttc.TELEMETRY_IN_PORT, PortDirection.DESTINATION, "queuing")])
    _partition("P4", [
        ("fdir-monitor", STEADY_MTF, 30, 1,
         sampling_consumer(fdir.ATTITUDE_MON_PORT, work=30)),
    ], [(fdir.ATTITUDE_MON_PORT, PortDirection.DESTINATION, "sampling")])

    builder.sampling_channel(
        "attitude", source=("P1", aocs.ATTITUDE_PORT),
        destinations=(("P2", obdh.ATTITUDE_IN_PORT),
                      ("P4", fdir.ATTITUDE_MON_PORT)),
        max_message_size=64, refresh_period=STEADY_MTF)
    builder.queuing_channel(
        "telemetry", source=("P2", obdh.TELEMETRY_PORT),
        destination=("P3", ttc.TELEMETRY_IN_PORT),
        max_message_size=128, max_nb_messages=32)

    cruise = builder.schedule("cruise", mtf=STEADY_MTF)
    cruise.require("P1", cycle=1300, duration=200)
    cruise.require("P2", cycle=650, duration=100)
    cruise.require("P3", cycle=650, duration=100)
    cruise.require("P4", cycle=1300, duration=100)
    cruise.window("P1", offset=0, duration=200) \
        .window("P2", offset=200, duration=100) \
        .window("P3", offset=300, duration=100) \
        .window("P4", offset=400, duration=600) \
        .window("P2", offset=1000, duration=100) \
        .window("P3", offset=1100, duration=100) \
        .window("P4", offset=1200, duration=100)
    builder.initial_schedule("cruise")
    return builder.build()


def make_steady_simulator(backend: str = "reference",
                          cycle_cache: bool = False, *,
                          seed: int = 0) -> Simulator:
    """Build the cruise-mode configuration wrapped in a simulator."""
    return Simulator(build_steady_prototype(seed=seed), backend=backend,
                     cycle_cache=cycle_cache)


def inject_faulty_process(simulator: Simulator) -> None:
    """Activate the faulty process on P1 — the paper demo's keyboard action.

    START registers the process's first deadline (now + its declared time
    capacity); its body then overruns every replenished budget.  Injection
    before P1's own initialization has run (which is what registers bodies)
    wires the body directly from the integration configuration.
    """
    apex = simulator.apex("P1")
    if not apex.has_body(FAULTY_PROCESS):
        runtime = simulator.runtime("P1")
        apex.register_body(FAULTY_PROCESS,
                           runtime.config.bodies[FAULTY_PROCESS])
    apex.start(FAULTY_PROCESS).expect("injecting faulty process")
