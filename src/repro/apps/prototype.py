"""The Sect. 6 prototype system: four partitions, two PSTs, fault injection.

This module encodes, verbatim, the demonstration configuration of the
paper's prototype implementation (Fig. 8):

.. code-block:: text

    P = {P1, P2, P3, P4}
    Q1 = Q2 = {<P1,1300,200>, <P2,650,100>, <P3,650,100>, <P4,1300,100>}
    chi1 = <MTF=1300, {<P1,0,200>, <P2,200,100>, <P3,300,100>, <P4,400,600>,
                       <P2,1000,100>, <P3,1100,100>, <P4,1200,100>}>
    chi2 = <MTF=1300, {<P1,0,200>, <P4,200,100>, <P3,300,100>, <P2,400,600>,
                       <P4,1000,100>, <P3,1100,100>, <P2,1200,100>}>

Each partition runs a mockup application "representative of typical
functions present in a satellite system": P1 hosts the AOCS, P2 the OBDH,
P3 the TTC (the authorized system partition able to switch schedules) and
P4 the FDIR.  Every mockup process's period is a multiple of its
partition's cycle (Sect. 6).

The *faulty process* of the paper's demonstration lives dormant in P1:
its configured WCET (150) fits its declared deadline budget (200), but its
actual behaviour overruns — "its WCET was underestimated at system
configuration and integration time" (Sect. 5) — so, once injected
(started), its deadline violation "is detected and reported every time
(except the first) that P1 is scheduled and dispatched to execute".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apex.interface import ApexInterface
from ..config.builder import SystemBuilder
from ..config.schema import SystemConfig
from ..kernel.simulator import Simulator
from ..types import PartitionMode, PortDirection, ScheduleChangeAction
from . import aocs, fdir, obdh, ttc
from .base import overrunning_worker

__all__ = ["PrototypeHandles", "MTF", "FAULTY_PROCESS", "build_prototype",
           "make_simulator", "inject_faulty_process"]

#: Major time frame of both prototype schedules (Fig. 8).
MTF = 1300

#: Name of the injectable faulty process hosted by P1.
FAULTY_PROCESS = "p1-faulty"

#: Budget the faulty process replenishes each iteration (its declared
#: time capacity), and the work it actually performs.
FAULTY_BUDGET = 200
FAULTY_WORK = 300


@dataclass
class PrototypeHandles:
    """Observability handles into the prototype's applications."""

    config: SystemConfig
    ttc_stats: "ttc.DownlinkStats"
    fdir_stats: "fdir.FdirStats"


def build_prototype(*, seed: int = 0, deadline_store: str = "list",
                    change_action_policy: str = "first_dispatch",
                    p1_change_action: ScheduleChangeAction =
                    ScheduleChangeAction.IGNORE,
                    fdir_supervision: bool = False) -> PrototypeHandles:
    """Build the Sect. 6 system configuration.

    ``p1_change_action`` optionally arms a ScheduleChangeAction for P1 on
    both schedules (the paper's demo uses none; tests use this hook).

    ``fdir_supervision`` attaches the FDIR supervision layer: a P1
    deadline-miss escalation chain (process restart -> partition restart
    -> degraded ``chi2`` switch -> partition stop), restart-storm
    parking, recovery probation back to ``chi1``, and a P4 heartbeat
    watchdog (P4 gains a ``fdir-heartbeat`` process).  The default build
    is unchanged — without supervision no new processes or events exist.
    """
    builder = SystemBuilder()
    builder.seed(seed)
    builder.deadline_store(deadline_store)
    builder.change_action_policy(change_action_policy)

    # P1's integration-time HM policy for deadline misses is the Sect. 5
    # recovery action "stopping the faulty process, and reinitializing it
    # from the entry address": the restarted process re-registers a fresh
    # deadline, overruns again, and is re-detected — so the violation is
    # "detected and reported every time (except the first) that P1 is
    # scheduled and dispatched to execute" (Sect. 6).
    from ..hm.tables import HmTables
    from ..types import ErrorCode, RecoveryAction

    builder.hm_tables(HmTables(partition_actions={
        "P1": {ErrorCode.DEADLINE_MISSED:
               RecoveryAction.STOP_AND_RESTART_PROCESS},
    }))

    # --- partitions and their mockup applications ------------------- #
    p1 = builder.partition("P1")
    aocs.configure(p1, cycle=MTF, duty=200)
    # The faulty process's declared WCET (40) passes every offline check —
    # it is "underestimated at system configuration and integration time"
    # (Sect. 5); the body actually computes FAULTY_WORK=300 per budget.
    p1.process(FAULTY_PROCESS, period=MTF, deadline=FAULTY_BUDGET,
               priority=9, wcet=40)
    p1.body(FAULTY_PROCESS, overrunning_worker(FAULTY_WORK, FAULTY_BUDGET))

    obdh.configure(builder.partition("P2"), cycle=650, duty=100)
    ttc_stats = ttc.configure(builder.partition("P3"), cycle=650, duty=100)
    fdir_stats = fdir.configure(builder.partition("P4"), cycle=MTF, duty=100,
                                heartbeat=fdir_supervision)

    if fdir_supervision:
        from ..fdir.policy import EscalationRule, EscalationStep, FdirConfig
        from ..types import ErrorCode, RecoveryAction

        builder.fdir(FdirConfig(
            rules=(
                # The Sect. 6 faulty process misses once per MTF while
                # armed; three misses within four frames climb one rung.
                EscalationRule(
                    code=ErrorCode.DEADLINE_MISSED, partition="P1",
                    window=4 * MTF, threshold=3,
                    chain=(
                        EscalationStep(RecoveryAction.RESTART_PARTITION),
                        EscalationStep(RecoveryAction.SWITCH_SCHEDULE,
                                       schedule="chi2"),
                        EscalationStep(RecoveryAction.STOP_PARTITION),
                    )),
            ),
            storm_window=3 * MTF, storm_limit=3,
            probation=8 * MTF,
            watchdogs={"P4": 4 * MTF},
        ))

    # --- interpartition channels ------------------------------------ #
    builder.sampling_channel(
        "attitude", source=("P1", aocs.ATTITUDE_PORT),
        destinations=(("P2", obdh.ATTITUDE_IN_PORT),
                      ("P4", fdir.ATTITUDE_MON_PORT)),
        max_message_size=64, refresh_period=2 * MTF)
    builder.queuing_channel(
        "telemetry", source=("P2", obdh.TELEMETRY_PORT),
        destination=("P3", ttc.TELEMETRY_IN_PORT),
        max_message_size=128, max_nb_messages=32)
    builder.queuing_channel(
        "alerts", source=("P4", fdir.ALERT_PORT),
        destination=("P3", ttc.ALERT_IN_PORT),
        max_message_size=64, max_nb_messages=8)

    # --- the two PSTs of Fig. 8 ------------------------------------- #
    chi1 = builder.schedule("chi1", mtf=MTF)
    chi2 = builder.schedule("chi2", mtf=MTF)
    for chi in (chi1, chi2):
        chi.require("P1", cycle=1300, duration=200)
        chi.require("P2", cycle=650, duration=100)
        chi.require("P3", cycle=650, duration=100)
        chi.require("P4", cycle=1300, duration=100)
        if p1_change_action is not ScheduleChangeAction.IGNORE:
            chi.on_switch("P1", p1_change_action)
    chi1.window("P1", offset=0, duration=200) \
        .window("P2", offset=200, duration=100) \
        .window("P3", offset=300, duration=100) \
        .window("P4", offset=400, duration=600) \
        .window("P2", offset=1000, duration=100) \
        .window("P3", offset=1100, duration=100) \
        .window("P4", offset=1200, duration=100)
    chi2.window("P1", offset=0, duration=200) \
        .window("P4", offset=200, duration=100) \
        .window("P3", offset=300, duration=100) \
        .window("P2", offset=400, duration=600) \
        .window("P4", offset=1000, duration=100) \
        .window("P3", offset=1100, duration=100) \
        .window("P2", offset=1200, duration=100)
    builder.initial_schedule("chi1")

    return PrototypeHandles(config=builder.build(), ttc_stats=ttc_stats,
                            fdir_stats=fdir_stats)


def make_simulator(handles: Optional[PrototypeHandles] = None,
                   backend: str = "reference",
                   **kwargs) -> Simulator:
    """Convenience: build (or reuse) a prototype config and wrap it in a
    simulator.  *backend* selects the execution backend."""
    if handles is None:
        handles = build_prototype(**kwargs)
    return Simulator(handles.config, backend=backend)


def inject_faulty_process(simulator: Simulator) -> None:
    """Activate the faulty process on P1 — the paper demo's keyboard action.

    START registers the process's first deadline (now + its declared time
    capacity); its body then overruns every replenished budget.  Injection
    before P1's own initialization has run (which is what registers bodies)
    wires the body directly from the integration configuration.
    """
    apex = simulator.apex("P1")
    if not apex.has_body(FAULTY_PROCESS):
        runtime = simulator.runtime("P1")
        apex.register_body(FAULTY_PROCESS,
                           runtime.config.bodies[FAULTY_PROCESS])
    apex.start(FAULTY_PROCESS).expect("injecting faulty process")
