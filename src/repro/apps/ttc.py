"""TTC — Telemetry, Tracking and Command mockup (Sects. 1, 6).

Drains the telemetry queue filled by OBDH and "downlinks" the frames
(accounted, not transmitted — the ground segment is outside the module),
and receives FDIR alerts for priority downlink.

The TTC partition is the prototype's *system partition*: it is authorized
to invoke the mode-based schedule services (Sect. 4.2), mirroring the
operational practice of mode changes arriving via telecommand.

Processes:

* ``ttc-telemetry`` — drains ``tm_in``, counts frames and bytes;
* ``ttc-telecommand`` — processes (simulated) ground commands; when a
  pending schedule request is queued via
  :meth:`DownlinkStats.queue_schedule_command`, it issues
  SET_MODULE_SCHEDULE.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..apex.interface import ApexInterface, ProcessContext
from ..config.builder import PartitionBuilder
from ..pos.effects import Call, Compute
from ..types import PortDirection, Ticks

__all__ = ["TELEMETRY_IN_PORT", "ALERT_IN_PORT", "DownlinkStats",
           "configure"]

#: Destination queuing port receiving OBDH telemetry.
TELEMETRY_IN_PORT = "tm_in"

#: Destination queuing port receiving FDIR alerts.
ALERT_IN_PORT = "alert_in"


class DownlinkStats:
    """Frames/bytes accounted by the telemetry process, plus the ground
    command queue (test observability and control)."""

    def __init__(self) -> None:
        self.frames = 0
        self.bytes = 0
        self.alerts = 0
        self.pending_commands: List[str] = []
        self.command_results: List[str] = []

    def queue_schedule_command(self, schedule_id: str) -> None:
        """Enqueue a ground telecommand asking the TTC to switch the module
        schedule — the reproduction's stand-in for the VITRAL keyboard
        interaction of Sect. 6."""
        self.pending_commands.append(schedule_id)


def _telemetry_body(work: Ticks, stats: DownlinkStats):
    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            for _ in range(8):
                result = yield Call(
                    ctx.apex.queuing_port(TELEMETRY_IN_PORT).receive)
                if not result.is_ok:
                    break
                stats.frames += 1
                stats.bytes += len(result.value)
                yield Compute(work)
            yield Call(ctx.apex.periodic_wait)

    return factory


def _telecommand_body(work: Ticks, stats: DownlinkStats):
    def factory(ctx: ProcessContext) -> Iterator:
        while True:
            yield Compute(work)
            alert = yield Call(ctx.apex.queuing_port(ALERT_IN_PORT).receive)
            if alert.is_ok:
                stats.alerts += 1
                yield Call(ctx.log,
                           (f"ttc: alert downlinked ({alert.value!r})",))
            if stats.pending_commands:
                schedule_id = stats.pending_commands.pop(0)
                result = yield Call(ctx.apex.set_module_schedule,
                                    (schedule_id,))
                stats.command_results.append(result.code.value)
                yield Call(ctx.log,
                           (f"ttc: schedule switch to {schedule_id!r} "
                            f"-> {result.code.value}",))
            yield Call(ctx.apex.periodic_wait)

    return factory


def configure(builder: PartitionBuilder, *, cycle: Ticks, duty: Ticks,
              stats: Optional[DownlinkStats] = None) -> DownlinkStats:
    """Declare the TTC processes on *builder*; returns the stats object."""
    if stats is None:
        stats = DownlinkStats()
    telemetry = max(duty // 8, 1)
    telecommand = max(duty // 6, 1)
    builder.system_partition()
    builder.process("ttc-telemetry", period=cycle, deadline=cycle,
                    priority=2, wcet=duty // 2)
    builder.process("ttc-telecommand", period=cycle, deadline=cycle,
                    priority=1, wcet=telecommand)
    builder.body("ttc-telemetry", _telemetry_body(telemetry, stats))
    builder.body("ttc-telecommand", _telecommand_body(telecommand, stats))

    def init(apex: ApexInterface) -> None:
        from ..types import PartitionMode

        apex.create_queuing_port(TELEMETRY_IN_PORT, PortDirection.DESTINATION)
        apex.create_queuing_port(ALERT_IN_PORT, PortDirection.DESTINATION)
        for process in ("ttc-telemetry", "ttc-telecommand"):
            apex.start(process).expect(f"starting {process}")
        apex.set_partition_mode(PartitionMode.NORMAL)

    builder.init_hook(init)
    return stats
