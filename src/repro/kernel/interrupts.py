"""Interrupt vector management for the simulated platform.

The system clock interrupt drives everything in AIR: the PMK's Partition
Scheduler and Dispatcher execute in the clock interrupt service routine
(ISR), and the PAL's surrogate tick-announcement (Fig. 7) — including
deadline verification (Algorithm 3) — runs there too.  This module provides
the vector table that binds them, and enforces the ownership rule from
Sect. 2.5: the clock vector belongs to the PMK, and guest attempts to rebind
or mask it are trapped, not honoured.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import ClockTamperingError, SimulationError
from ..types import Ticks

__all__ = ["Vector", "InterruptController", "IsrRegistration"]


class Vector(enum.Enum):
    """Interrupt vectors of the simulated platform."""

    CLOCK = "clock"
    MEMORY_FAULT = "memoryFault"
    ILLEGAL_INSTRUCTION = "illegalInstruction"
    EXTERNAL_IO = "externalIo"


@dataclass(frozen=True)
class IsrRegistration:
    """Bookkeeping for one installed interrupt service routine."""

    vector: Vector
    owner: str
    handler: Callable[[], None]


class InterruptController:
    """Vector table with PMK-owned clock vector.

    Handlers are installed with an *owner* label.  Only the owner ``"PMK"``
    may bind :attr:`Vector.CLOCK`; any other owner attempting it triggers
    the paravirtualization trap (recorded, and raised as
    :class:`ClockTamperingError` so the POS adaptation layer can route it to
    Health Monitoring).  Multiple handlers may chain on a vector; they run
    in installation order.
    """

    PMK_OWNER = "PMK"

    def __init__(self) -> None:
        self._handlers: Dict[Vector, List[IsrRegistration]] = {
            vector: [] for vector in Vector}
        self._masked: Dict[Vector, bool] = {vector: False for vector in Vector}
        self._dispatch_counts: Dict[Vector, int] = {vector: 0 for vector in Vector}

    def install(self, vector: Vector, handler: Callable[[], None], *,
                owner: str) -> IsrRegistration:
        """Bind *handler* to *vector* on behalf of *owner*.

        Raises :class:`ClockTamperingError` if a non-PMK owner touches the
        clock vector (Sect. 2.5 protection).
        """
        if vector is Vector.CLOCK and owner != self.PMK_OWNER:
            raise ClockTamperingError(
                f"{owner!r} attempted to install a handler on the clock "
                f"vector; only the PMK owns it",
                partition=owner, operation="install_clock_isr")
        registration = IsrRegistration(vector=vector, owner=owner,
                                       handler=handler)
        self._handlers[vector].append(registration)
        return registration

    def uninstall(self, registration: IsrRegistration) -> None:
        """Remove a previously installed handler."""
        try:
            self._handlers[registration.vector].remove(registration)
        except ValueError:
            raise SimulationError(
                f"handler by {registration.owner!r} on "
                f"{registration.vector.value} is not installed") from None

    def mask(self, vector: Vector, *, owner: str) -> None:
        """Mask *vector*.  The clock vector may only be masked by the PMK."""
        if vector is Vector.CLOCK and owner != self.PMK_OWNER:
            raise ClockTamperingError(
                f"{owner!r} attempted to mask the clock interrupt",
                partition=owner, operation="mask_clock")
        self._masked[vector] = True

    def unmask(self, vector: Vector) -> None:
        """Unmask *vector*."""
        self._masked[vector] = False

    def is_masked(self, vector: Vector) -> bool:
        """True if *vector* is currently masked."""
        return self._masked[vector]

    def raise_interrupt(self, vector: Vector) -> int:
        """Deliver *vector*: run its handler chain unless masked.

        Returns the number of handlers that ran.
        """
        if self._masked[vector]:
            return 0
        chain = tuple(self._handlers[vector])
        for registration in chain:
            registration.handler()
        self._dispatch_counts[vector] += 1
        return len(chain)

    def handlers_on(self, vector: Vector) -> Tuple[IsrRegistration, ...]:
        """Currently installed handlers on *vector*, in chain order."""
        return tuple(self._handlers[vector])

    def dispatch_count(self, vector: Vector) -> int:
        """How many times *vector* has been delivered (unmasked)."""
        return self._dispatch_counts[vector]

    def account_bypassed(self, vector: Vector, count: int) -> None:
        """Settle *count* deliveries performed outside the vector table.

        The fast execution backend calls the PMK clock ISR directly when
        the clock wiring is provably default (single unmasked PMK
        handler); this keeps :meth:`dispatch_count` identical to what the
        reference backend would report.
        """
        self._dispatch_counts[vector] += count
