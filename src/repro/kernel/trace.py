"""Structured execution tracing for the simulated AIR system.

Every observable action of the runtime — partition dispatches, schedule
switches, deadline misses, Health Monitor decisions, memory faults, process
state changes — is recorded as a typed event.  The trace is the primary
instrument for the paper's experiments: the prototype of Sect. 6 demonstrates
its claims by *observing* scheduler and HM behaviour, and the tests/benches
of this reproduction assert on these events.

Events are hashable dataclasses sharing the :class:`TraceEvent` base (a
``tick`` timestamp plus a ``kind`` string for cheap filtering); they are
treated as immutable by convention — construction cost is on the clock-ISR
hot path, so the classes skip ``frozen``'s per-field ``object.__setattr__``
overhead and use ``slots`` (no per-instance dict to allocate, faster field
access).  :class:`Trace` is an append-only collector with query helpers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
    TypeVar,
)

from ..types import Ticks

__all__ = [
    "TraceEvent",
    "PartitionDispatched",
    "PartitionWindowStarted",
    "IdleWindowStarted",
    "ScheduleSwitchRequested",
    "ScheduleSwitched",
    "ScheduleChangeActionApplied",
    "ProcessDispatched",
    "ProcessStateChanged",
    "ProcessCompleted",
    "DeadlineRegistered",
    "DeadlineUnregistered",
    "DeadlineMissed",
    "HealthMonitorEvent",
    "EscalationStepped",
    "PartitionParked",
    "EscalationRecovered",
    "WatchdogExpired",
    "MemoryFault",
    "ClockTamperTrapped",
    "PortMessageSent",
    "PortMessageReceived",
    "PartitionModeChanged",
    "ApplicationMessage",
    "Trace",
    "EXTRA_TICK_FIELDS",
    "rebase_event",
    "rebase_plan",
    "tick_fields",
]

E = TypeVar("E", bound="TraceEvent")


@dataclass(unsafe_hash=True, slots=True)
class TraceEvent:
    """Base class: something that happened at simulated time ``tick``."""

    tick: Ticks

    @property
    def kind(self) -> str:
        """Short event-kind label (the class name)."""
        return type(self).__name__


# ------------------------------------------------------------------ #
# partition-level scheduling events
# ------------------------------------------------------------------ #


@dataclass(unsafe_hash=True, slots=True)
class PartitionDispatched(TraceEvent):
    """The Partition Dispatcher switched contexts (Algorithm 2, else-branch)."""

    previous: Optional[str]
    heir: Optional[str]


@dataclass(unsafe_hash=True, slots=True)
class PartitionWindowStarted(TraceEvent):
    """A partition's execution time window opened."""

    partition: str
    schedule: str
    window_offset: Ticks
    window_duration: Ticks


@dataclass(unsafe_hash=True, slots=True)
class IdleWindowStarted(TraceEvent):
    """An idle gap (no partition scheduled) opened."""

    schedule: str
    duration: Ticks


@dataclass(unsafe_hash=True, slots=True)
class ScheduleSwitchRequested(TraceEvent):
    """SET_MODULE_SCHEDULE accepted a pending switch (Sect. 4.2)."""

    requested_by: str
    from_schedule: str
    to_schedule: str


@dataclass(unsafe_hash=True, slots=True)
class ScheduleSwitched(TraceEvent):
    """A pending switch took effect at an MTF boundary (Algorithm 1, l. 4-6)."""

    from_schedule: str
    to_schedule: str


@dataclass(unsafe_hash=True, slots=True)
class ScheduleChangeActionApplied(TraceEvent):
    """A partition's ScheduleChangeAction ran at its first post-switch
    dispatch (Algorithm 2, line 9)."""

    partition: str
    action: str
    schedule: str


@dataclass(unsafe_hash=True, slots=True)
class PartitionModeChanged(TraceEvent):
    """A partition's operating mode M_m(t) changed (eq. (3))."""

    partition: str
    previous_mode: str
    new_mode: str


# ------------------------------------------------------------------ #
# process-level events
# ------------------------------------------------------------------ #


@dataclass(unsafe_hash=True, slots=True)
class ProcessDispatched(TraceEvent):
    """The partition's POS selected a new heir process (eq. (14))."""

    partition: str
    previous: Optional[str]
    heir: Optional[str]


@dataclass(unsafe_hash=True, slots=True)
class ProcessStateChanged(TraceEvent):
    """A process moved between eq. (13) states."""

    partition: str
    process: str
    previous_state: str
    new_state: str
    reason: str = ""


@dataclass(unsafe_hash=True, slots=True)
class ProcessCompleted(TraceEvent):
    """A process body ran to completion (returned)."""

    partition: str
    process: str


# ------------------------------------------------------------------ #
# deadline events (Sect. 5)
# ------------------------------------------------------------------ #


@dataclass(unsafe_hash=True, slots=True)
class DeadlineRegistered(TraceEvent):
    """The PAL registered/updated a process deadline (Fig. 6)."""

    partition: str
    process: str
    deadline_time: Ticks


@dataclass(unsafe_hash=True, slots=True)
class DeadlineUnregistered(TraceEvent):
    """The PAL removed a process's deadline (process stopped)."""

    partition: str
    process: str


@dataclass(unsafe_hash=True, slots=True)
class DeadlineMissed(TraceEvent):
    """Algorithm 3 detected a deadline violation — membership in V(t), eq. (24)."""

    partition: str
    process: str
    deadline_time: Ticks
    detection_latency: Ticks


# ------------------------------------------------------------------ #
# health monitoring / containment events
# ------------------------------------------------------------------ #


@dataclass(unsafe_hash=True, slots=True)
class HealthMonitorEvent(TraceEvent):
    """The Health Monitor classified an error and chose an action (Sect. 2.4)."""

    level: str
    code: str
    partition: Optional[str]
    process: Optional[str]
    action: str
    detail: str = ""


@dataclass(unsafe_hash=True, slots=True)
class EscalationStepped(TraceEvent):
    """The FDIR supervisor advanced an escalation chain one rung
    (persistence threshold crossed within its window)."""

    partition: Optional[str]
    code: str
    rung: int
    action: str


@dataclass(unsafe_hash=True, slots=True)
class PartitionParked(TraceEvent):
    """Restart-storm throttling gave up on a crash-looping partition:
    no further restarts will be ordered for it."""

    partition: str
    restarts: int


@dataclass(unsafe_hash=True, slots=True)
class EscalationRecovered(TraceEvent):
    """A clean probation interval elapsed in degraded mode; the supervisor
    switched back to the nominal schedule and reset escalation state."""

    schedule: str


@dataclass(unsafe_hash=True, slots=True)
class WatchdogExpired(TraceEvent):
    """A partition's heartbeat watchdog went silent past its window."""

    partition: str
    last_kick: Ticks


@dataclass(unsafe_hash=True, slots=True)
class MemoryFault(TraceEvent):
    """The simulated MMU refused a cross-boundary access (Fig. 3)."""

    partition: str
    address: int
    access: str
    detail: str = ""


@dataclass(unsafe_hash=True, slots=True)
class ClockTamperTrapped(TraceEvent):
    """The paravirtualization layer trapped a guest clock operation (Sect. 2.5)."""

    partition: str
    operation: str


# ------------------------------------------------------------------ #
# communication / application events
# ------------------------------------------------------------------ #


@dataclass(unsafe_hash=True, slots=True)
class PortMessageSent(TraceEvent):
    """A message entered an interpartition channel."""

    partition: str
    port: str
    size: int


@dataclass(unsafe_hash=True, slots=True)
class PortMessageReceived(TraceEvent):
    """A message was delivered from an interpartition channel."""

    partition: str
    port: str
    size: int
    latency: Ticks


@dataclass(unsafe_hash=True, slots=True)
class ApplicationMessage(TraceEvent):
    """Free-form output from an application (rendered by VITRAL windows)."""

    partition: str
    process: Optional[str]
    text: str


# ------------------------------------------------------------------ #
# the collector
# ------------------------------------------------------------------ #


class Trace:
    """Append-only event log with query helpers.

    The trace is unbounded by default; pass ``capacity`` to keep only the
    most recent events (a ring buffer) for long-running simulations.  The
    store is a :class:`collections.deque` so a bounded trace evicts in O(1)
    instead of the O(n) ``del list[0]``.

    Observers registered with :meth:`subscribe` see every event as it is
    recorded (live instrumentation, e.g. the metrics registry); with no
    observers the only recording overhead beyond the append is one
    truthiness check.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._capacity = capacity
        self._dropped = 0
        self._observers: Tuple[Callable[[TraceEvent], None], ...] = ()
        # digest()/summary() memoization: (length, dropped, last tick) is
        # enough to detect growth of an append-only log without touching
        # the record() hot path; wholesale mutators (clear/restore) bump
        # the generation counter to defeat coincidental key collisions.
        self._memo_generation = 0
        self._memo_key: Optional[tuple] = None
        self._memo_json: Optional[str] = None
        self._memo_digest: Optional[str] = None
        self._memo_summary: Optional[Dict[str, object]] = None
        # Canonical JSON of already-encoded events, kept as joined chunks
        # (each chunk covers a contiguous batch, entries comma-separated)
        # with a watermark of how many events they cover.  Built lazily
        # and append-only; only maintained for unbounded traces (eviction
        # would desynchronize it).  Carried through snapshot()/restore()
        # so a run forked from a checkpoint re-encodes only its own tail
        # when digesting the full trace.
        self._encoded: List[str] = []
        self._encoded_count = 0

    def _current_memo_key(self) -> tuple:
        events = self._events
        return (self._memo_generation, len(events), self._dropped,
                events[-1].tick if events else None)

    def record(self, event: TraceEvent) -> None:
        """Append *event*; evict the oldest if capacity is bounded."""
        events = self._events
        if events.maxlen is not None and len(events) == events.maxlen:
            self._dropped += 1
        events.append(event)
        if self._observers:
            for observer in self._observers:
                observer(event)

    # -------------------------------------------------------------- #
    # live observers
    # -------------------------------------------------------------- #

    def subscribe(self, observer: Callable[[TraceEvent], None]) -> None:
        """Register *observer* to be called with every recorded event."""
        if observer not in self._observers:
            self._observers = self._observers + (observer,)

    def unsubscribe(self, observer: Callable[[TraceEvent], None]) -> None:
        """Remove *observer*; a no-op if it is not registered."""
        self._observers = tuple(
            o for o in self._observers if o != observer)

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """All retained events, oldest first."""
        return tuple(self._events)

    @property
    def dropped(self) -> int:
        """Number of events evicted due to the capacity bound."""
        return self._dropped

    def of_type(self, event_type: Type[E]) -> Tuple[E, ...]:
        """All events of exactly (or a subclass of) *event_type*."""
        return tuple(e for e in self._events if isinstance(e, event_type))

    def where(self, predicate: Callable[[TraceEvent], bool]) -> Tuple[TraceEvent, ...]:
        """All events satisfying *predicate*."""
        return tuple(e for e in self._events if predicate(e))

    def last(self, event_type: Type[E]) -> Optional[E]:
        """Most recent event of *event_type*, or None."""
        for event in reversed(self._events):
            if isinstance(event, event_type):
                return event
        return None

    def count(self, event_type: Type[E]) -> int:
        """Number of events of *event_type*."""
        return sum(1 for e in self._events if isinstance(e, event_type))

    def _lower_bound(self, tick: Ticks) -> int:
        """First index whose event has ``tick >= tick`` (binary search).

        Events are appended in nondecreasing tick order, so the tick
        sequence is sorted.  Hand-rolled rather than :mod:`bisect` because
        ``bisect(..., key=...)`` needs Python >= 3.10 and deque indexing
        (block hops, not pointer arithmetic) is cheap enough for O(log n)
        probes.
        """
        events = self._events
        lo, hi = 0, len(events)
        while lo < hi:
            mid = (lo + hi) // 2
            if events[mid].tick < tick:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def between(self, start: Ticks, end: Ticks) -> Tuple[TraceEvent, ...]:
        """Events with ``start <= tick < end`` (binary search, not a scan)."""
        if end <= start:
            return ()
        lo = self._lower_bound(start)
        hi = self._lower_bound(end)
        return tuple(islice(self._events, lo, hi))

    def clear(self) -> None:
        """Drop all retained events (the drop counter is kept)."""
        self._events.clear()
        self._encoded = []
        self._encoded_count = 0
        self._memo_generation += 1

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> Dict[str, object]:
        """Capture the retained events and drop counter as pure data.

        Events are tuple-encoded — ``(kind, *field values)`` — instead of
        pickling the dataclass instances themselves: plain tuples of
        scalars serialize in a fraction of the time and bytes of an object
        graph with per-instance class references (snapshot format v2).
        """
        state: Dict[str, object] = {
            "events": [(type(event).__name__,)
                       + tuple(getattr(event, name)
                               for name in _field_names(type(event)))
                       for event in self._events],
            "dropped": self._dropped}
        if self._capacity is None and not self._dropped:
            # Ship the canonical event JSON alongside the raw tuples: a
            # trace restored from this capture digests its shared prefix
            # without re-encoding it.  Amortized free — each event is
            # encoded at most once over the trace's whole lifetime.
            state["encoded"] = ",".join(self._encode_pending())
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Replace the log wholesale with a :meth:`snapshot` capture.

        Observers are untouched (they are structural wiring, not state);
        the capacity bound stays whatever this trace was built with.
        """
        self._events = deque(
            (_EVENT_TYPES[encoded[0]](*encoded[1:])
             for encoded in state["events"]),
            maxlen=self._capacity)
        self._dropped = state["dropped"]
        prior = state.get("encoded")
        if (self._capacity is None and not self._dropped
                and isinstance(prior, str)):
            # The capture encoded exactly the events it shipped, so the
            # adopted chunk's watermark is everything just restored.
            self._encoded = [prior] if prior else []
            self._encoded_count = len(self._events)
        else:
            self._encoded = []
            self._encoded_count = 0
        self._memo_generation += 1

    # -------------------------------------------------------------- #
    # export
    # -------------------------------------------------------------- #

    def to_dicts(self) -> List[dict]:
        """Every retained event as a JSON-compatible dict (``kind`` field
        added for dispatch on the consuming side).

        Events are flat slotted dataclasses of scalars, so this reads the
        cached per-class field-name tuple directly instead of paying
        ``dataclasses.asdict``'s recursive deep copy — an order of
        magnitude on digest-heavy campaign paths, with byte-identical
        JSON.
        """
        out = []
        names_by_type = _FIELD_NAMES
        for event in self._events:
            event_type = type(event)
            names = names_by_type.get(event_type)
            if names is None:
                names = _field_names(event_type)
            record = {name: getattr(event, name) for name in names}
            record["kind"] = event_type.__name__
            out.append(record)
        return out

    def save_jsonl(self, path: str) -> int:
        """Write the trace as JSON Lines (one event per line) to *path*.

        The ground-analysis-friendly format: greppable, streamable,
        loadable into any tooling.  Returns the number of events written.
        """
        events = self.to_dicts()
        with open(path, "w", encoding="utf-8") as stream:
            for record in events:
                stream.write(json.dumps(record, sort_keys=True) + "\n")
        return len(events)

    def _encode_pending(self) -> List[str]:
        """Canonical JSON chunks covering every retained event.

        Only the events beyond the already-encoded watermark are encoded
        (one batched ``json.dumps`` over the whole tail — the C encoder
        in a single call, not one dispatch per event); earlier chunks
        (including a prefix adopted from :meth:`restore`) are reused
        verbatim.  Joining the chunks with ``","`` is byte-identical to
        the events array of the one-shot :meth:`to_json` document.
        Callers must hold the unbounded-trace invariant (``capacity is
        None``) — eviction would silently desynchronize the watermark.
        """
        events = self._events
        count = self._encoded_count
        if count < len(events):
            names_by_type = _FIELD_NAMES
            records = []
            for event in islice(events, count, None):
                event_type = type(event)
                names = names_by_type.get(event_type)
                if names is None:
                    names = _field_names(event_type)
                record = {name: getattr(event, name) for name in names}
                record["kind"] = event_type.__name__
                records.append(record)
            chunk = json.dumps(records, sort_keys=True,
                               separators=(",", ":"))[1:-1]
            if chunk:
                self._encoded.append(chunk)
            self._encoded_count = len(events)
        return self._encoded

    def to_json(self) -> str:
        """The full trace as one canonical JSON document.

        Canonical means ``sort_keys`` and no insignificant whitespace, so
        equal traces serialize to equal bytes; :meth:`from_json` inverts it.
        Unbounded traces assemble the document from the lazily-maintained
        per-event encodings (see :meth:`_encode_pending`) — byte-identical
        to the one-shot ``json.dumps`` but incremental, so a trace restored
        from a checkpoint only pays for the events recorded after the fork.
        """
        key = self._current_memo_key()
        if self._memo_json is not None and self._memo_key == key:
            return self._memo_json
        if self._capacity is None and not self._dropped:
            text = '{"dropped":%d,"events":[%s]}' % (
                self._dropped, ",".join(self._encode_pending()))
        else:
            text = json.dumps({"dropped": self._dropped,
                               "events": self.to_dicts()},
                              sort_keys=True, separators=(",", ":"))
        if self._memo_key != key:
            self._memo_key = key
            self._memo_digest = None
            self._memo_summary = None
        self._memo_json = text
        return text

    @classmethod
    def from_json(cls, text: str,
                  capacity: Optional[int] = None) -> "Trace":
        """Rebuild a trace from :meth:`to_json` output.

        Each event dict's ``kind`` field selects the event class; the
        remaining fields are its constructor arguments.
        """
        document = json.loads(text)
        trace = cls(capacity=capacity)
        for record in document["events"]:
            trace.record(_event_from_dict(record))
        trace._dropped += document.get("dropped", 0)
        return trace

    @classmethod
    def load_jsonl(cls, path: str,
                   capacity: Optional[int] = None) -> "Trace":
        """Rebuild a trace from a :meth:`save_jsonl` file (one event per
        line; blank lines are skipped)."""
        trace = cls(capacity=capacity)
        with open(path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    trace.record(_event_from_dict(json.loads(line)))
        return trace

    def digest(self) -> str:
        """Stable content digest of the retained events (hex, 16 chars).

        Two traces with identical retained events (and drop counts) have
        identical digests — the compact equivalence token that crosses the
        campaign worker-pool boundary instead of the full event list.

        Memoized: repeated calls on an unchanged trace return the cached
        value without rescanning the event log (campaigns digest the same
        finished trace from several reporting paths).
        """
        key = self._current_memo_key()
        if self._memo_digest is not None and self._memo_key == key:
            return self._memo_digest
        digest = hashlib.sha256(
            self.to_json().encode("utf-8")).hexdigest()[:16]
        # to_json() has synchronized _memo_key to `key`.
        self._memo_digest = digest
        return digest

    def summary(self) -> Dict[str, object]:
        """Compact, JSON-compatible description of the trace.

        Per-kind event counts, the covered tick range, the drop counter and
        the content :meth:`digest` — everything a campaign aggregate needs,
        at a fixed size regardless of trace length.
        """
        key = self._current_memo_key()
        if self._memo_summary is not None and self._memo_key == key:
            return dict(self._memo_summary)
        counts: Dict[str, int] = {}
        for event in self._events:
            kind = event.kind
            counts[kind] = counts.get(kind, 0) + 1
        summary = {
            "events": len(self._events),
            "dropped": self._dropped,
            "counts": dict(sorted(counts.items())),
            "first_tick": self._events[0].tick if self._events else None,
            "last_tick": self._events[-1].tick if self._events else None,
            "digest": self.digest(),
        }
        if self._memo_key == self._current_memo_key():
            self._memo_summary = dict(summary)
        return summary

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


def _event_from_dict(record: dict) -> TraceEvent:
    """Reconstruct one event from its :meth:`Trace.to_dicts` form."""
    fields = dict(record)
    kind = fields.pop("kind")
    try:
        event_type = _EVENT_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown trace event kind {kind!r}")
    return event_type(**fields)


def _event_types() -> Dict[str, Type[TraceEvent]]:
    registry: Dict[str, Type[TraceEvent]] = {}
    pending = list(TraceEvent.__subclasses__())
    while pending:
        event_type = pending.pop()
        # ``@dataclass(slots=True)`` replaces each class; until a GC
        # pass, the discarded pre-decorator original still shows up in
        # ``__subclasses__()``.  Resolve through the defining module so
        # the registry always holds the live binding — events must be
        # reconstructed as instances of the class the observers'
        # ``type(event)`` dispatch tables reference.
        module = sys.modules.get(event_type.__module__)
        registry[event_type.__name__] = getattr(
            module, event_type.__name__, event_type)
        pending.extend(event_type.__subclasses__())
    return registry


#: kind label -> event class, for :meth:`Trace.from_json` reconstruction.
_EVENT_TYPES = _event_types()

#: event class -> field-name tuple, in definition order (slots classes have
#: no ``__dict__``; export and snapshot encoding read fields through this).
_FIELD_NAMES: Dict[Type[TraceEvent], Tuple[str, ...]] = {}


def _field_names(event_type: Type[TraceEvent]) -> Tuple[str, ...]:
    names = _FIELD_NAMES.get(event_type)
    if names is None:
        names = tuple(f.name for f in dataclasses.fields(event_type))
        _FIELD_NAMES[event_type] = names
    return names


#: Absolute-tick fields carried by event classes *beyond* the universal
#: ``tick`` stamp.  The cycle cache (DESIGN decision 13) translates recorded
#: event deltas forward by a whole number of major time frames; every field
#: listed here shifts with the translation, while everything else
#: (durations, window offsets, latencies, counts, labels) is
#: time-origin-relative and is carried verbatim.
EXTRA_TICK_FIELDS: Dict[Type[TraceEvent], Tuple[str, ...]] = {
    DeadlineRegistered: ("deadline_time",),
    DeadlineMissed: ("deadline_time",),
    WatchdogExpired: ("last_kick",),
}

#: event class -> frozenset of every absolute-tick field name (cache).
_TICK_FIELD_SETS: Dict[Type[TraceEvent], frozenset] = {}


def tick_fields(event_type: Type[TraceEvent]) -> frozenset:
    """Every absolute-tick field of *event_type* (``tick`` + extras)."""
    fields = _TICK_FIELD_SETS.get(event_type)
    if fields is None:
        fields = frozenset(
            ("tick",) + EXTRA_TICK_FIELDS.get(event_type, ()))
        _TICK_FIELD_SETS[event_type] = fields
    return fields


def rebase_event(event: TraceEvent, offset: Ticks) -> TraceEvent:
    """A copy of *event* with every absolute-tick field shifted by *offset*.

    Relative quantities (latencies, durations, window offsets) are carried
    verbatim — rebasing a steady-state cycle's event delta by a multiple of
    the MTF must produce exactly the events a stepped run would have
    recorded one cycle later.
    """
    event_type = type(event)
    shifted = tick_fields(event_type)
    kwargs = {}
    for name in _field_names(event_type):
        value = getattr(event, name)
        if name in shifted and value is not None:
            value = value + offset
        kwargs[name] = value
    return event_type(**kwargs)


def rebase_plan(event: TraceEvent
                ) -> Tuple[Type[TraceEvent], Tuple, Tuple[int, ...]]:
    """Precompiled form of :func:`rebase_event` for hot replay loops.

    Returns ``(type, args, tick_indices)``: the event's field values in
    positional order plus the indices of the non-``None`` absolute-tick
    fields among them.  ``type(*args')`` with the indexed positions
    shifted reproduces ``rebase_event(event, offset)`` without per-call
    field introspection.
    """
    event_type = type(event)
    shifted = tick_fields(event_type)
    names = _field_names(event_type)
    args = tuple(getattr(event, name) for name in names)
    indices = tuple(index for index, name in enumerate(names)
                    if name in shifted and args[index] is not None)
    return event_type, args, indices
