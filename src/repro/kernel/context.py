"""Execution contexts for partition context switching (Algorithm 2).

A real PMK saves and restores processor state (registers, MMU configuration)
on every partition preemption point.  In the simulation, a partition's
"processor state" is the identity of its running process plus an opaque
scratch area owned by its POS; the :class:`ContextBank` implements the
``SAVECONTEXT``/``RESTORECONTEXT`` pair of Algorithm 2 (lines 4 and 8) and
tracks the per-partition ``lastTick`` bookkeeping used to compute
``elapsedTicks`` (lines 5-6), which the PAL later uses to announce the
passage of time to the POS (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..exceptions import SimulationError
from ..types import Ticks

__all__ = ["PartitionContext", "ContextBank"]


@dataclass
class PartitionContext:
    """Saved state of one partition between its execution windows.

    Attributes
    ----------
    partition:
        Owning partition name.
    last_tick:
        Algorithm 2's ``lastTick``: the final tick during which the
        partition held the processor (set on save, line 5).
    running_process:
        Name of the process that held the CPU when the context was saved;
        restored verbatim so execution resumes exactly where it stopped.
    scratch:
        Opaque POS-owned state (e.g. scheduler bookkeeping) carried across
        windows.  The PMK never interprets it — spatial separation applies
        to the kernel's own data structures too.
    save_count / restore_count:
        Instrumentation for tests and benches.
    """

    partition: str
    last_tick: Ticks = 0
    running_process: Optional[str] = None
    scratch: Dict[str, object] = field(default_factory=dict)
    save_count: int = 0
    restore_count: int = 0


class ContextBank:
    """Holds every partition's saved context; enforces single-owner switching.

    The bank refuses to restore a context that is already live (double
    dispatch) and to save one that is not — both would indicate a scheduler
    bug, and the paper's robustness argument rests on the dispatcher being
    exactly right.
    """

    def __init__(self) -> None:
        self._contexts: Dict[str, PartitionContext] = {}
        self._live: Optional[str] = None

    def register(self, partition: str) -> PartitionContext:
        """Create the context slot for *partition* (done once, at startup)."""
        if partition in self._contexts:
            raise SimulationError(
                f"context for partition {partition!r} already registered")
        context = PartitionContext(partition=partition)
        self._contexts[partition] = context
        return context

    def context_of(self, partition: str) -> PartitionContext:
        """The saved (or live) context of *partition*."""
        try:
            return self._contexts[partition]
        except KeyError:
            raise SimulationError(
                f"no context registered for partition {partition!r}") from None

    @property
    def live_partition(self) -> Optional[str]:
        """Partition whose context is currently loaded on the (virtual) CPU."""
        return self._live

    def save(self, partition: str, *, tick: Ticks,
             running_process: Optional[str]) -> PartitionContext:
        """SAVECONTEXT(activePartition.context) — Algorithm 2, line 4.

        Also applies line 5: ``activePartition.lastTick <- ticks - 1``
        (the caller passes ``tick`` as the *current* tick; the partition's
        last owned tick was the one before the preemption point).
        """
        if self._live != partition:
            raise SimulationError(
                f"cannot save context of {partition!r}: live partition is "
                f"{self._live!r}")
        context = self.context_of(partition)
        context.last_tick = tick - 1
        context.running_process = running_process
        context.save_count += 1
        self._live = None
        return context

    def restore(self, partition: str) -> PartitionContext:
        """RESTORECONTEXT(heirPartition.context) — Algorithm 2, line 8."""
        if self._live is not None:
            raise SimulationError(
                f"cannot restore context of {partition!r}: partition "
                f"{self._live!r} is still live (missing save)")
        context = self.context_of(partition)
        context.restore_count += 1
        self._live = partition
        return context

    def release(self) -> None:
        """Mark the CPU as running no partition (idle gap), without a save.

        Used when transitioning into an idle window from system start,
        where there is no active partition context to save.
        """
        self._live = None

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture every partition context and the live marker as pure data.

        ``scratch`` is POS-owned plain data; it is copied shallowly (the
        POSs in this model only store scalars there, if anything).
        """
        return {
            "live": self._live,
            "contexts": {
                name: {"last_tick": ctx.last_tick,
                       "running_process": ctx.running_process,
                       "scratch": dict(ctx.scratch),
                       "save_count": ctx.save_count,
                       "restore_count": ctx.restore_count}
                for name, ctx in self._contexts.items()},
        }

    def restore_state(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture onto registered contexts.

        (Named ``restore_state`` because :meth:`restore` is Algorithm 2's
        RESTORECONTEXT.)
        """
        self._live = state["live"]
        for name, ctx_state in state["contexts"].items():
            context = self.context_of(name)
            context.last_tick = ctx_state["last_tick"]
            context.running_process = ctx_state["running_process"]
            context.scratch = dict(ctx_state["scratch"])
            context.save_count = ctx_state["save_count"]
            context.restore_count = ctx_state["restore_count"]
