"""Steady-state MTF cycle memoization (DESIGN.md decision 13).

The span-ceiling ablation (EXPERIMENTS.md E19) showed the event core's
remaining cost is the per-MTF semantic machinery itself: once every
provably-uniform span is batched, a healthy workload still executes ~18
stepped ticks and ~18 span boundaries of pure Python *per major time
frame* — and in steady state every one of those frames is a byte-
predictable repeat of the previous one.  The paper's strict temporal and
spatial partitioning (eqs. (1)-(24)) makes that repetition provable:
MTF-boundary state is a pure function of MTF-boundary state, so a frame
whose start state matches the previous frame's start state *up to a
constant time shift* must reproduce the previous frame shifted by one
MTF.  This module exploits exactly that.

How it works
------------

At each MTF boundary the cache computes a **time-rebased fingerprint**
of the full deterministic simulator state: sha256 over a canonical byte
encoding of the existing per-component ``snapshot()`` captures, where

* **absolute-tick leaves** (process wake-ups, armed deadlines, watchdog
  arming, envelope send times, context save stamps …) are encoded as
  their offset from the boundary tick, so values that march forward by
  exactly one MTF per frame compare equal;
* **monotonic-counter leaves** (tick/occupancy/sequence/arrival
  counters) are excluded from the digest and collected separately —
  their per-frame *deltas* must be uniform, their absolute values are
  free to grow;
* **everything else** (modes, rungs, queued payloads, rng streams,
  histories, resume logs) is encoded verbatim — any change blocks the
  cache by construction.

Three verification layers keep replay honest:

1. the fingerprint fixed point itself: two consecutive boundaries must
   produce identical digests (stale absolute values — an unkicked
   watchdog, a pending chi2 switch, an armed deadline crossing the
   boundary — break the fixed point and conservatively block caching);
2. at template build, the two fingerprint-equal frames are compared in
   full: uniform counter deltas, field-exact trace-event deltas (rebased
   by one MTF), identical generator-resume sequences (captured by a POS
   probe), and resume-log growth consistent with those resumes;
3. every replayed frame re-drives the *live* process generators with the
   recorded send values and verifies each yielded effect — a divergent
   body rolls the frame back and falls out to live execution.

A replayed frame is then: verified generator sends, the recorded trace
delta re-recorded with rebased ticks (observers — the deterministic
metrics registry — fire exactly as live), and one ``time.skip(MTF)``.
Live component state is resynchronized from an advanced copy of the
boundary snapshot when replay hands control back to the event loop.

All statistics live in :data:`CYCLE_CACHE_STAT_KEYS` and are host-side
(nondeterministic) telemetry, governed under the ``timing.execution``
sidecar like every other execution-mode counter.
"""

from __future__ import annotations

import dataclasses
import hashlib
from enum import Enum
from itertools import islice
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..exceptions import SimulationError
from ..types import Ticks
from .trace import rebase_event, rebase_plan

__all__ = ["CycleCache", "CYCLE_CACHE_STAT_KEYS", "state_fingerprint"]

#: Host-side cycle-cache statistics, in the order the telemetry registry
#: governs them (``worker/<n>/cycle_cache/<stat>``).
CYCLE_CACHE_STAT_KEYS = ("hits", "misses", "invalidations",
                         "fingerprint_ns", "bytes")

# --------------------------------------------------------------------- #
# leaf classification
# --------------------------------------------------------------------- #

_RAW, _TIME, _TIME_MOD, _COUNTER = range(4)

#: Snapshot keys whose integer values are absolute simulation ticks that
#: advance with time in steady state (encoded relative to the boundary).
_TIME_KEYS = frozenset({
    "wake_at", "deadline_time", "next_release", "sent_at", "last_tick",
    "ticks", "probation_deadline",
})

#: Snapshot keys whose integer values are monotonic counters: excluded
#: from the digest, delta-verified at template build.
_COUNTER_KEYS = frozenset({
    "ticks_executed", "idle_ticks", "announced_ticks", "checks",
    "comparisons", "save_count", "restore_count", "access_count",
    "release_count", "activation_count", "kicks", "expiries",
    "overflow_count", "ready_sequence", "sequence", "ready_since",
    "arrival",
})

#: Parent keys whose *every* integer child is a counter (stats blocks,
#: per-partition occupancy ticks).
_COUNTER_PARENTS = frozenset({"stats", "partition_ticks"})

#: Subtrees carried and compared verbatim: histories and opaque values
#: whose inner fields must never be rebased even when their names collide
#: with the live-state key sets above (e.g. ``deadline_time`` inside a
#: recorded violation, ``tick`` inside a tamper-attempt record).
_RAW_SUBTREES = frozenset({
    "model", "rng", "backoff_rng", "pending_result", "tamper_attempts",
    "violations", "log", "occurrences", "storm", "parked", "restarts",
    "scratch",
})

#: Parents under which an ``"entries"`` list is a wait queue
#: (``(arrival-ordinal, process-name)`` pairs).
_WAIT_QUEUE_PARENTS = frozenset({"queue", "waiters"})

#: Consecutive fingerprint misses tolerated before probing backs off.
_BACKOFF_AFTER = 8

#: Maximum boundaries skipped between probe groups once backed off.
_MAX_STRIDE = 32


def _classify(key: Any, parent: Any) -> int:
    if parent in _COUNTER_PARENTS:
        return _COUNTER
    if key in _TIME_KEYS:
        return _TIME
    if key == "last_schedule_switch":
        return _TIME_MOD
    if key in _COUNTER_KEYS:
        return _COUNTER
    return _RAW


class _Unsupported(Exception):
    """State contains a value the canonical encoding cannot handle."""


# --------------------------------------------------------------------- #
# canonical fingerprint encoding
# --------------------------------------------------------------------- #

class _Fingerprinter:
    """One fingerprint walk: canonical bytes -> sha256, per component.

    The byte grammar is deliberately explicit and versioned by the test
    suite's pinned digests: every value is tagged (``N`` none, ``T``/``F``
    bool, ``i`` int, ``t`` boundary-relative tick, ``m`` MTF-phase tick,
    ``c`` counter placeholder, ``f`` float, ``s`` str, ``b`` bytes, ``l``
    list, ``u`` tuple, ``d`` dict, ``E`` enum, ``D`` dataclass, ``C``
    callable, ``R``/``L`` resume-log reset/slice) so two states cannot
    collide across type or structure differences.  Dict items are encoded
    in insertion order — snapshot construction order, which is fixed by
    code, making digests stable across processes and interpreters.
    """

    def __init__(self, *, origin: Ticks, mtf: Ticks,
                 full_logs: bool = False) -> None:
        self.origin = origin
        self.mtf = mtf
        self.full_logs = full_logs
        #: previous boundary's (partition, process) -> resume-log length,
        #: supplied per component before :meth:`encode_component`.
        self.prev_lens: Dict[Tuple[str, str], int] = {}
        #: (partition, process) -> resume-log length at this boundary.
        self.new_lens: Dict[Tuple[str, str], int] = {}
        self.counters: Dict[str, int] = {}
        self.had_time = False
        self.slices_empty = True
        self._buffer = bytearray()
        self._stack: List[str] = []
        self._partition = ""
        self._process = ""

    # -- component entry point ------------------------------------- #

    def encode_component(self, name: str, value: Any,
                         prev_lens: Optional[Dict[Tuple[str, str], int]]
                         = None) -> Tuple[bytes, int]:
        """Encode one component; returns ``(digest, byte_count)``."""
        self._buffer.clear()
        self.prev_lens = prev_lens if prev_lens is not None else {}
        self.new_lens = {}
        self.counters = {}
        self.had_time = False
        self.slices_empty = True
        self._stack = [name]
        if name.startswith("partition:"):
            self._partition = name[len("partition:"):]
        else:
            self._partition = ""
        self._walk(value, name, None, False)
        data = bytes(self._buffer)
        return hashlib.sha256(data).digest(), len(data)

    # -- recursion -------------------------------------------------- #

    def _path(self) -> str:
        return "/".join(self._stack)

    def _walk(self, value: Any, key: Any, parent: Any, raw: bool) -> None:
        out = self._buffer
        if value is None:
            out += b"N"
            return
        if value is True:
            out += b"T"
            return
        if value is False:
            out += b"F"
            return
        kind = type(value)
        if kind is int:
            cls = _RAW if raw else _classify(key, parent)
            if cls is _TIME:
                self.had_time = True
                out += b"t%d" % (value - self.origin)
            elif cls is _TIME_MOD:
                out += b"m%d" % ((value - self.origin) % self.mtf)
            elif cls is _COUNTER:
                self.counters[self._path()] = value
                out += b"c"
            else:
                out += b"i%d" % value
            return
        if kind is str:
            encoded = value.encode("utf-8")
            out += b"s%d:" % len(encoded)
            out += encoded
            return
        if kind is bytes:
            out += b"b%d:" % len(value)
            out += value
            return
        if kind is float:
            out += b"f%s" % repr(value).encode("ascii")
            return
        if kind is dict:
            self._walk_dict(value, key, raw)
            return
        if kind is list:
            out += b"l%d:" % len(value)
            stack = self._stack
            for index, item in enumerate(value):
                stack.append(str(index))
                self._walk(item, None, key, raw)
                stack.pop()
            return
        if kind is tuple:
            out += b"u%d:" % len(value)
            stack = self._stack
            for index, item in enumerate(value):
                stack.append(str(index))
                self._walk(item, None, key, raw)
                stack.pop()
            return
        if isinstance(value, Enum):
            out += b"E%s.%s;" % (type(value).__qualname__.encode("utf-8"),
                                 value.name.encode("utf-8"))
            return
        if dataclasses.is_dataclass(value):
            out += b"D%s;" % type(value).__qualname__.encode("utf-8")
            stack = self._stack
            for field in dataclasses.fields(value):
                stack.append(field.name)
                self._walk(getattr(value, field.name), field.name, None, raw)
                stack.pop()
            return
        if callable(value):
            out += b"C%s.%s;" % (
                getattr(value, "__module__", "?").encode("utf-8"),
                getattr(value, "__qualname__",
                        type(value).__qualname__).encode("utf-8"))
            return
        raise _Unsupported(f"cycle cache cannot encode {type(value)!r} "
                           f"at {self._path()}")

    def _walk_dict(self, value: Dict[Any, Any], key: Any,
                   raw: bool) -> None:
        out = self._buffer
        out += b"d%d:" % len(value)
        stack = self._stack
        in_tcbs = key == "tcbs" and not raw
        for k, v in value.items():
            encoded_key = repr(k).encode("utf-8")
            out += b"k%d:" % len(encoded_key)
            out += encoded_key
            stack.append(str(k))
            if in_tcbs:
                self._process = str(k)
            if raw:
                self._walk(v, k, key, True)
            elif k in _RAW_SUBTREES:
                self._walk(v, k, key, True)
            elif k == "resume_log" and type(v) is list:
                self._encode_resume_log(v)
            elif k == "armed" and type(v) is dict:
                self._encode_armed(v)
            elif (k == "entries" and key in _WAIT_QUEUE_PARENTS
                    and type(v) is list):
                self._encode_wait_entries(v)
            elif k == "entries" and key == "store" and type(v) is list:
                self._encode_store_entries(v)
            elif k == "in_flight" and type(v) is list:
                self._encode_in_flight(v)
            else:
                self._walk(v, k, key, False)
            stack.pop()
        if in_tcbs:
            self._process = ""

    # -- special shapes --------------------------------------------- #

    def _encode_resume_log(self, log: List[Any]) -> None:
        """Growing-log encoding: only the growth since the previous probe
        is content-compared; two boundaries match when their *new* resume
        entries match (the prefix is the generator's already-verified
        history).  An unknown or shrunken previous length is a reset
        marker, which can never match a slice encoding — the boundary
        after a pipeline (re)start is deliberately incomparable."""
        out = self._buffer
        lkey = (self._partition, self._process)
        length = len(log)
        self.new_lens[lkey] = length
        if self.full_logs:
            out += b"R%d:" % length
            start = 0
        else:
            prev = self.prev_lens.get(lkey)
            if prev is None or prev > length:
                out += b"R%d" % length
                return
            start = prev
            out += b"L%d:" % (length - start)
        if length > start:
            self.slices_empty = False
        stack = self._stack
        for index in range(start, length):
            stack.append(str(index))
            self._walk(log[index], None, "resume_log", True)
            stack.pop()

    def _encode_armed(self, armed: Dict[Any, Any]) -> None:
        """Watchdog arming: ``{name: (last_kick, deadline)}`` — both
        absolute ticks, rebased like any other live timer."""
        out = self._buffer
        out += b"d%d:" % len(armed)
        origin = self.origin
        for k, v in armed.items():
            encoded_key = repr(k).encode("utf-8")
            out += b"k%d:" % len(encoded_key)
            out += encoded_key
            last_kick, deadline = v
            self.had_time = True
            out += b"u2:t%d t%d" % (last_kick - origin, deadline - origin)

    def _encode_wait_entries(self, entries: List[Any]) -> None:
        """Wait-queue entries: ``(arrival-ordinal, process-name)``."""
        out = self._buffer
        out += b"l%d:" % len(entries)
        stack = self._stack
        for index, (arrival, name) in enumerate(entries):
            stack.append("%d/arrival" % index)
            self.counters[self._path()] = arrival
            stack.pop()
            encoded = name.encode("utf-8")
            out += b"u2:cs%d:" % len(encoded)
            out += encoded

    def _encode_store_entries(self, entries: List[Any]) -> None:
        """Deadline-store entries: ``(process, deadline_time, sequence)``."""
        out = self._buffer
        out += b"l%d:" % len(entries)
        origin = self.origin
        stack = self._stack
        for index, (process, deadline_time, sequence) in enumerate(entries):
            encoded = process.encode("utf-8")
            self.had_time = True
            out += b"u3:s%d:" % len(encoded)
            out += encoded
            out += b"t%dc" % (deadline_time - origin)
            stack.append("%d/seq" % index)
            self.counters[self._path()] = sequence
            stack.pop()

    def _encode_in_flight(self, entries: List[Any]) -> None:
        """Network-link in-flight entries:
        ``(arrival-tick, sequence, envelope, tag)``."""
        out = self._buffer
        origin = self.origin
        out += b"l%d:" % len(entries)
        stack = self._stack
        for index, (arrival, sequence, envelope, tag) in enumerate(entries):
            self.had_time = True
            out += b"u4:t%d" % (arrival - origin)
            out += b"c"
            stack.append("%d/seq" % index)
            self.counters[self._path()] = sequence
            stack.pop()
            stack.append("%d/env" % index)
            self._walk(envelope, None, "in_flight", False)
            stack.pop()
            self._walk(tag, None, "in_flight", True)


# --------------------------------------------------------------------- #
# state advancement (replay resynchronization)
# --------------------------------------------------------------------- #

class _Advancer:
    """Pure rewrite of a boundary snapshot *n* frames into the future.

    Mirrors the fingerprint walk's classification exactly (the identity
    matrices in CI are the cross-check): absolute ticks gain ``n * MTF``,
    counters gain ``n *`` their verified per-frame delta (looked up by
    the same path the fingerprint walk recorded), resume logs append the
    verified per-frame slice ``n`` times, raw subtrees are carried by
    reference.  Consumption of every counter path is tracked so a walk
    mismatch surfaces as a template rejection, never as silent state
    corruption.
    """

    def __init__(self, *, shift: Ticks, cycles: int,
                 deltas: Dict[str, int],
                 slices: Dict[Tuple[str, str], Tuple[Any, ...]]) -> None:
        self.shift = shift
        self.cycles = cycles
        self.deltas = deltas
        self.slices = slices
        self.consumed: set = set()
        self._stack: List[str] = []
        self._partition = ""
        self._process = ""

    def advance_component(self, name: str, value: Any) -> Any:
        self._stack = [name]
        if name.startswith("partition:"):
            self._partition = name[len("partition:"):]
        else:
            self._partition = ""
        return self._walk(value, name, None, False)

    def _path(self) -> str:
        return "/".join(self._stack)

    def _counter(self, value: int) -> int:
        path = self._path()
        self.consumed.add(path)
        delta = self.deltas.get(path)
        if delta is None:
            raise _Unsupported(f"no counter delta recorded for {path}")
        return value + self.cycles * delta

    def _walk(self, value: Any, key: Any, parent: Any, raw: bool) -> Any:
        if raw or value is None or value is True or value is False:
            return value
        kind = type(value)
        if kind is int:
            cls = _classify(key, parent)
            if cls is _TIME:
                return value + self.shift
            if cls is _COUNTER:
                return self._counter(value)
            return value  # RAW and TIME_MOD ints are frame-invariant
        if kind in (str, bytes, float):
            return value
        if kind is dict:
            return self._walk_dict(value, key)
        if kind is list:
            stack = self._stack
            result = []
            for index, item in enumerate(value):
                stack.append(str(index))
                result.append(self._walk(item, None, key, False))
                stack.pop()
            return result
        if kind is tuple:
            stack = self._stack
            result = []
            for index, item in enumerate(value):
                stack.append(str(index))
                result.append(self._walk(item, None, key, False))
                stack.pop()
            return tuple(result)
        if isinstance(value, Enum):
            return value
        if dataclasses.is_dataclass(value):
            stack = self._stack
            kwargs = {}
            for field in dataclasses.fields(value):
                stack.append(field.name)
                kwargs[field.name] = self._walk(
                    getattr(value, field.name), field.name, None, False)
                stack.pop()
            return dataclasses.replace(value, **kwargs)
        return value

    def _walk_dict(self, value: Dict[Any, Any], key: Any) -> Dict[Any, Any]:
        stack = self._stack
        in_tcbs = key == "tcbs"
        result: Dict[Any, Any] = {}
        for k, v in value.items():
            stack.append(str(k))
            if in_tcbs:
                self._process = str(k)
            if k in _RAW_SUBTREES:
                result[k] = v
            elif k == "resume_log" and type(v) is list:
                result[k] = self._advance_resume_log(v)
            elif k == "armed" and type(v) is dict:
                result[k] = {
                    name: (last_kick + self.shift, deadline + self.shift)
                    for name, (last_kick, deadline) in v.items()}
            elif (k == "entries" and key in _WAIT_QUEUE_PARENTS
                    and type(v) is list):
                result[k] = self._advance_wait_entries(v)
            elif k == "entries" and key == "store" and type(v) is list:
                result[k] = self._advance_store_entries(v)
            elif k == "in_flight" and type(v) is list:
                result[k] = self._advance_in_flight(v)
            else:
                result[k] = self._walk(v, k, key, False)
            stack.pop()
        if in_tcbs:
            self._process = ""
        return result

    def _advance_resume_log(self, log: List[Any]) -> List[Any]:
        slice_ = self.slices.get((self._partition, self._process))
        if not slice_:
            return log
        return log + list(slice_) * self.cycles

    def _advance_wait_entries(self, entries: List[Any]) -> List[Any]:
        stack = self._stack
        result = []
        for index, (arrival, name) in enumerate(entries):
            stack.append("%d/arrival" % index)
            result.append((self._counter(arrival), name))
            stack.pop()
        return result

    def _advance_store_entries(self, entries: List[Any]) -> List[Any]:
        stack = self._stack
        result = []
        for index, (process, deadline_time, sequence) in enumerate(entries):
            stack.append("%d/seq" % index)
            result.append((process, deadline_time + self.shift,
                           self._counter(sequence)))
            stack.pop()
        return result

    def _advance_in_flight(self, entries: List[Any]) -> List[Any]:
        stack = self._stack
        result = []
        for index, (arrival, sequence, envelope, tag) in enumerate(entries):
            stack.append("%d/seq" % index)
            sequence = self._counter(sequence)
            stack.pop()
            stack.append("%d/env" % index)
            envelope = self._walk(envelope, None, "in_flight", False)
            stack.pop()
            result.append((arrival + self.shift, sequence, envelope, tag))
        return result


# --------------------------------------------------------------------- #
# component decomposition
# --------------------------------------------------------------------- #

def _components(state: dict, time_state: dict) -> List[Tuple[str, Any]]:
    """Split a PMK snapshot (+ time snapshot) into fingerprint components.

    The split is the dirty-reuse granularity: partitions are one
    component each, the rng stream is isolated (so steady frames that
    draw nothing reuse its digest), and the remaining module-level
    captures keep their snapshot keys.  The ``rng`` capture is wrapped
    one level so both walks treat its internals as a raw subtree.
    """
    components: List[Tuple[str, Any]] = [
        ("time", time_state),
        ("rng", {"rng": state["rng"]}),
        ("core", {"stopped": state["stopped"],
                  "module_restarts": state["module_restarts"],
                  "ticks_executed": state["ticks_executed"],
                  "idle_ticks": state["idle_ticks"]}),
        ("partition_ticks", state["partition_ticks"]),
        ("scheduler", state["scheduler"]),
        ("contexts", state["contexts"]),
        ("dispatcher", state["dispatcher"]),
        ("mmu", state["mmu"]),
        ("router", state["router"]),
        ("health_monitor", state["health_monitor"]),
        ("fdir", state["fdir"]),
    ]
    for name, partition_state in state["partitions"].items():
        components.append(("partition:" + name, partition_state))
    return components


# --------------------------------------------------------------------- #
# boundary records and cycle templates
# --------------------------------------------------------------------- #

class _Record:
    """Per-component fingerprint record, reusable while the component's
    raw snapshot is unchanged and contains no boundary-relative ticks."""

    __slots__ = ("raw", "digest", "counters", "lens", "had_time",
                 "slices_empty")

    def __init__(self, raw: Any, digest: bytes, counters: Dict[str, int],
                 lens: Dict[Tuple[str, str], int], had_time: bool,
                 slices_empty: bool) -> None:
        self.raw = raw
        self.digest = digest
        self.counters = counters
        self.lens = lens
        self.had_time = had_time
        self.slices_empty = slices_empty


class _Boundary:
    """Everything one probed MTF boundary contributes to the pipeline."""

    __slots__ = ("now", "mtf", "fp", "records", "counters", "state",
                 "trace_len")

    def __init__(self, now: Ticks, mtf: Ticks, fp: bytes,
                 records: Dict[str, _Record], counters: Dict[str, int],
                 state: dict, trace_len: int) -> None:
        self.now = now
        self.mtf = mtf
        self.fp = fp
        self.records = records
        self.counters = counters
        self.state = state
        self.trace_len = trace_len


class _Template:
    """A verified steady-state frame, ready for replay."""

    __slots__ = ("fp", "mtf", "recorded_start", "sends", "events",
                 "compiled", "deltas", "slices")

    def __init__(self, fp: bytes, mtf: Ticks, recorded_start: Ticks,
                 sends: List[Tuple[Any, Any, Any]],
                 events: Tuple[Any, ...], deltas: Dict[str, int],
                 slices: Dict[Tuple[str, str], Tuple[Any, ...]]) -> None:
        self.fp = fp
        self.mtf = mtf
        self.recorded_start = recorded_start
        self.sends = sends
        self.events = events
        #: Per-event ``(type, positional args, tick indices)`` — replay
        #: reconstructs rebased events by direct construction instead of
        #: per-event field introspection.
        self.compiled = tuple(rebase_plan(event) for event in events)
        self.deltas = deltas
        self.slices = slices


# --------------------------------------------------------------------- #
# the cache
# --------------------------------------------------------------------- #

class CycleCache:
    """Fingerprint-keyed whole-MTF replay for one simulator instance.

    Opt-in (``Simulator(config, cycle_cache=True)``), orthogonal to the
    execution backend, and bit-identity-preserving by construction: every
    observable the determinism contract covers — trace bytes, metrics
    digests, deterministic counters, oracle verdicts — is reproduced
    exactly, which the fast-skip/fork/chaos identity matrices assert.
    """

    def __init__(self, simulator: Any) -> None:
        self._sim = simulator
        self.stats: Dict[str, int] = {key: 0 for key in
                                      CYCLE_CACHE_STAT_KEYS}
        # Bounded traces evict events (the delta splice would corrupt the
        # document) and memory emulation probes host state per executed
        # tick; both are permanently incompatible with replay.
        self._disabled = (simulator.trace._capacity is not None
                          or bool(simulator.pmk._memory_probes))
        self._prev1: Optional[_Boundary] = None
        self._prev2: Optional[_Boundary] = None
        self._template: Optional[_Template] = None
        self._entries: List[Tuple[str, str, Any, Any]] = []
        self._entries_prev: Optional[List[Tuple[str, str, Any, Any]]] = None
        self._hook_armed = False
        self._miss_streak = 0
        self._stride = 1
        self._skip = 0
        # Cheap probe gate (see _gate_open): absolute counter signature
        # at the last boundary seen, and the last inter-boundary delta.
        self._gate_last: Optional[Tuple[Ticks, tuple]] = None
        self._gate_delta: Optional[tuple] = None

    # -- driver entry point ------------------------------------------ #

    def on_boundary(self, now: Ticks, target: Ticks) -> int:
        """Called by the ``run_fast`` loops each iteration.

        Returns the number of whole MTFs replayed (0 = step live).  When
        nonzero, the simulator clock, trace, metrics observers and every
        live component have already been advanced to the post-replay
        boundary.
        """
        if self._disabled:
            return 0
        pmk = self._sim.pmk
        if pmk.profiler is not None:
            # Replayed frames are invisible to the host-time profiler;
            # keep profiled runs fully live.
            self._reset_pipeline()
            return 0
        scheduler = pmk.scheduler
        mtf = scheduler.current.mtf
        if (now - scheduler.last_schedule_switch) % mtf:
            return 0  # not an MTF boundary
        if self._skip > 0:
            self._skip -= 1
            self._reset_pipeline()
            return 0
        if not self._gate_open(now, mtf):
            # The last two inter-boundary counter deltas disagree, so the
            # frame provably is not on a 1-MTF cycle — skip the (orders
            # of magnitude more expensive) fingerprint probe.  This keeps
            # the cache's cost on never-steady workloads down to a few
            # integer compares per boundary.
            self._reset_pipeline()
            return 0
        started = perf_counter_ns()
        try:
            boundary = self._probe(now, mtf)
        except _Unsupported:
            self._disable()
            return 0
        finally:
            self.stats["fingerprint_ns"] += perf_counter_ns() - started
        entries = self._entries
        self._entries = []
        self._arm_hook()
        prev1, prev2 = self._prev1, self._prev2
        consecutive = (prev1 is not None and prev1.mtf == mtf
                       and prev1.now + mtf == now)
        template = self._template
        if (template is not None and template.mtf == mtf
                and template.fp == boundary.fp):
            replayed = self._replay(boundary, template, now, target)
            if replayed:
                return replayed
            self._rotate(boundary, entries, consecutive)
            return 0
        if not consecutive:
            self._rotate(boundary, entries, consecutive=False)
            return 0
        if boundary.fp != prev1.fp:
            self.stats["misses"] += 1
            self._back_off()
            self._rotate(boundary, entries, consecutive=True)
            return 0
        self._miss_streak = 0
        self._stride = 1
        matched_pair = (prev2 is not None and prev2.mtf == mtf
                        and prev2.now + mtf == prev1.now
                        and prev2.fp == prev1.fp
                        and self._entries_prev is not None)
        if matched_pair:
            template = self._build_template(prev2, prev1, boundary,
                                            self._entries_prev, entries)
            if template is not None:
                self._template = template
                replayed = self._replay(boundary, template, now, target)
                if replayed:
                    return replayed
            else:
                self.stats["invalidations"] += 1
                self._back_off()
        self._rotate(boundary, entries, consecutive=True)
        return 0

    # -- pipeline bookkeeping ---------------------------------------- #

    def _rotate(self, boundary: _Boundary,
                entries: List[Tuple[str, str, Any, Any]],
                consecutive: bool) -> None:
        self._prev2 = self._prev1 if consecutive else None
        self._prev1 = boundary
        self._entries_prev = entries if consecutive else None

    def _reset_pipeline(self) -> None:
        self._prev1 = None
        self._prev2 = None
        self._entries_prev = None
        self._entries = []
        self._disarm_hook()

    def _back_off(self) -> None:
        self._miss_streak += 1
        if self._miss_streak >= _BACKOFF_AFTER:
            self._skip = self._stride
            self._stride = min(self._stride * 2, _MAX_STRIDE)

    # -- cheap probe gate --------------------------------------------- #

    def _gate_absolute(self) -> tuple:
        pmk = self._sim.pmk
        trace = self._sim.trace
        # Insertion order of partition_ticks is stable within a run, so
        # the values tuple compares positionally (no sort needed); the
        # key tuple rides along to guard against partition set changes.
        return (pmk.ticks_executed, pmk.idle_ticks,
                len(trace._events) + trace._dropped,
                tuple(pmk.partition_ticks),
                tuple(pmk.partition_ticks.values()))

    def _gate_open(self, now: Ticks, mtf: Ticks) -> bool:
        """Whether this boundary is worth a full fingerprint probe.

        A steady 1-MTF cycle advances every execution counter by the
        same amount each frame, so two consecutive *equal* inter-boundary
        deltas of a handful of cheap counters (ticks executed, idle
        ticks, trace growth, per-partition occupancy) are a necessary
        condition for a fingerprint fixed point.  Workloads that are
        never frame-periodic (varying log cadence, multi-MTF component
        periods, fault handling) fail the delta comparison immediately
        and never pay for a snapshot+hash probe.  Purely a cost filter:
        a false *pass* just means the fingerprint itself decides.
        """
        absolute = self._gate_absolute()
        last = self._gate_last
        self._gate_last = (now, absolute)
        if last is None or last[0] + mtf != now:
            self._gate_delta = None
            return False
        previous = last[1]
        if absolute[3] != previous[3]:  # partition set changed
            self._gate_delta = None
            return False
        delta = (absolute[0] - previous[0], absolute[1] - previous[1],
                 absolute[2] - previous[2],
                 tuple(value - prior for value, prior
                       in zip(absolute[4], previous[4])))
        matched = delta == self._gate_delta
        self._gate_delta = delta
        return matched

    def _disable(self) -> None:
        self.stats["invalidations"] += 1
        self._disabled = True
        self._template = None
        self._reset_pipeline()

    def _arm_hook(self) -> None:
        if self._hook_armed:
            return
        for runtime in self._sim.pmk.runtimes.values():
            runtime.pos._cycle_probe = self._on_resume
        self._hook_armed = True

    def _disarm_hook(self) -> None:
        if not self._hook_armed:
            return
        for runtime in self._sim.pmk.runtimes.values():
            runtime.pos._cycle_probe = None
        self._hook_armed = False

    def _on_resume(self, partition: str, process: str, send: Any,
                   effect: Any) -> None:
        self._entries.append((partition, process, send, effect))

    # -- fingerprinting ----------------------------------------------- #

    def _probe(self, now: Ticks, mtf: Ticks) -> _Boundary:
        sim = self._sim
        state = sim.pmk.snapshot()
        time_state = sim.time.snapshot()
        prev1 = self._prev1
        prev_records = prev1.records if prev1 is not None else {}
        walker = _Fingerprinter(origin=now, mtf=mtf)
        records: Dict[str, _Record] = {}
        counters: Dict[str, int] = {}
        digest = hashlib.sha256()
        for name, value in _components(state, time_state):
            prev = prev_records.get(name)
            if (prev is not None and not prev.had_time
                    and prev.slices_empty and prev.raw == value):
                # Unchanged pure-data component with no boundary-relative
                # leaves and no resume-log growth: its canonical bytes
                # are identical by construction — reuse the digest
                # without re-encoding.
                record = prev
            else:
                comp_digest, nbytes = walker.encode_component(
                    name, value, prev.lens if prev is not None else None)
                self.stats["bytes"] += nbytes
                record = _Record(value, comp_digest, walker.counters,
                                 walker.new_lens, walker.had_time,
                                 walker.slices_empty)
            records[name] = record
            counters.update(record.counters)
            digest.update(record.digest)
        return _Boundary(now, mtf, digest.digest(), records, counters,
                         state, len(sim.trace))

    # -- template construction ---------------------------------------- #

    def _build_template(self, a: _Boundary, b: _Boundary, c: _Boundary,
                        entries_ab: List[Tuple[str, str, Any, Any]],
                        entries_bc: List[Tuple[str, str, Any, Any]],
                        ) -> Optional[_Template]:
        mtf = c.mtf
        # 1. Uniform counter advancement across both frames.
        if a.counters.keys() != b.counters.keys() \
                or b.counters.keys() != c.counters.keys():
            return None
        deltas: Dict[str, int] = {}
        for path, value_b in b.counters.items():
            delta = value_b - a.counters[path]
            if c.counters[path] - value_b != delta:
                return None
            deltas[path] = delta
        # 2. Field-exact trace delta, rebased by one MTF.
        trace_events = self._sim.trace._events
        if b.trace_len - a.trace_len != c.trace_len - b.trace_len:
            return None
        events_ab = list(islice(trace_events, a.trace_len, b.trace_len))
        events_bc = list(islice(trace_events, b.trace_len, c.trace_len))
        for first, second in zip(events_ab, events_bc):
            if type(first) is not type(second) \
                    or rebase_event(first, mtf) != second:
                return None
        # 3. Identical generator-resume sequences in both frames.
        if entries_ab != entries_bc:
            return None
        # 4. Resume-log growth must be explained exactly by the observed
        #    resumes: a send that faulted or completed the body appends to
        #    the log without reaching the probe, and must block replay.
        slices: Dict[Tuple[str, str], Tuple[Any, ...]] = {}
        observed: Dict[Tuple[str, str], List[Any]] = {}
        for partition, process, send, _effect in entries_bc:
            observed.setdefault((partition, process), []).append(send)
        for name, partition_state in c.state["partitions"].items():
            for process, tcb_state in partition_state["pos"]["tcbs"].items():
                key = (name, process)
                length_c = len(tcb_state["resume_log"])
                record_b = b.records.get("partition:" + name)
                if record_b is None or key not in record_b.lens:
                    return None
                length_b = record_b.lens[key]
                grown = tcb_state["resume_log"][length_b:length_c]
                if grown != observed.get(key, []):
                    return None
                if grown:
                    slices[key] = tuple(grown)
        if set(observed) - set(slices):
            return None
        # 5. Pre-resolve the send targets against the live POSs.
        pmk = self._sim.pmk
        sends: List[Tuple[Any, Any, Any]] = []
        for partition, process, send, effect in entries_bc:
            sends.append((pmk.runtime(partition).pos.tcb(process), send,
                          effect))
        # 6. Dry-run the advancement walk so a classification mismatch
        #    between the fingerprint and advance traversals rejects the
        #    template instead of corrupting a resynchronization.
        advancer = _Advancer(shift=0, cycles=0, deltas=deltas,
                             slices=slices)
        try:
            for name, value in _components(c.state, {}):
                if name != "time":
                    advancer.advance_component(name, value)
        except _Unsupported:
            return None
        if advancer.consumed != set(deltas):
            return None
        return _Template(c.fp, mtf, b.now, sends, tuple(events_bc),
                         deltas, slices)

    # -- replay -------------------------------------------------------- #

    def _replay(self, boundary: _Boundary, template: _Template,
                now: Ticks, target: Ticks) -> int:
        mtf = template.mtf
        want = (target - now) // mtf
        if want <= 0:
            return 0
        sim = self._sim
        trace = sim.trace
        # With no live observers the rebased delta can be appended to the
        # event deque directly (record() would do exactly that); bounded
        # traces never reach here — the cache is disabled for them.
        emit = (trace._events.append if not trace._observers
                else trace.record)
        skip = sim.time.skip
        compiled = template.compiled
        base_offset = now - template.recorded_start
        committed = 0
        diverged = False
        # Nothing but this loop runs during the batch, so the generator
        # objects cannot be swapped out mid-replay: bind their ``send``
        # methods once.  A completed generator raises StopIteration into
        # the divergence path like any other body fault.
        resumes: List[Tuple[Any, Any, Any]] = []
        for tcb, send, expected in template.sends:
            generator = tcb.generator
            if generator is None:
                return 0
            resumes.append((generator.send, send, expected))
        for _cycle in range(want):
            for resume, send, expected in resumes:
                try:
                    effect = resume(send)
                except Exception:
                    diverged = True
                    break
                if effect != expected:
                    diverged = True
                    break
            if diverged:
                break
            offset = base_offset + committed * mtf
            for event_type, args, indices in compiled:
                rebased = list(args)
                for index in indices:
                    rebased[index] += offset
                emit(event_type(*rebased))
            skip(mtf)
            committed += 1
        if committed == 0 and not diverged:
            return 0
        # Resynchronize every live component from the advanced boundary
        # state.  On divergence the partially-resumed generators are
        # discarded and rebuilt from the committed resume logs (the same
        # mechanism snapshot restore uses); on clean exit the live
        # generators *are* the advanced state and are kept.  The time
        # source needs no overlay: replay advanced it via ``skip`` and
        # the tamper history is raw-compared by the fingerprint.
        advancer = _Advancer(shift=committed * mtf, cycles=committed,
                             deltas=template.deltas,
                             slices=template.slices)
        state = boundary.state
        advanced: Dict[str, Any] = {"rng": state["rng"],
                                    "partitions": {}}
        for name, value in _components(state, {}):
            if name in ("time", "rng"):
                continue
            result = advancer.advance_component(name, value)
            if name == "core":
                advanced.update(result)
            elif name.startswith("partition:"):
                advanced["partitions"][name[len("partition:"):]] = result
            else:
                advanced[name] = result
        try:
            sim.pmk.overlay(advanced, rebuild_bodies=diverged)
        except Exception as exc:
            raise SimulationError(
                f"cycle cache failed to resynchronize after {committed} "
                f"replayed frame(s): {exc}") from exc
        if diverged:
            self.stats["invalidations"] += 1
            self._template = None
        self.stats["hits"] += committed
        # Replay advanced every gated counter by the uniform cycle delta,
        # so the gate stays open at the next boundary instead of needing
        # two live frames to re-learn the steady delta.
        self._gate_last = (now + committed * mtf, self._gate_absolute())
        # The overlay handed snapshot subtrees to live components; drop
        # every stored reference so later dirty-reuse comparisons can
        # never alias live state.
        self._reset_pipeline()
        self._arm_hook()
        return committed


# --------------------------------------------------------------------- #
# test/diagnostic helper
# --------------------------------------------------------------------- #

def state_fingerprint(simulator: Any) -> str:
    """Hex fingerprint of *simulator*'s full deterministic state.

    The regression-test entry point: uses the cycle cache's canonical
    encoding with full resume-log content (no growth slicing, no digest
    reuse), so two simulators in genuinely different states — divergent
    rng streams, FDIR escalation rungs, queued port payloads, pending
    schedule switches — produce different digests, and identical states
    produce identical digests across processes and interpreters.
    """
    pmk_state = simulator.pmk.snapshot()
    time_state = simulator.time.snapshot()
    scheduler = simulator.pmk.scheduler
    walker = _Fingerprinter(origin=simulator.time.now,
                            mtf=scheduler.current.mtf, full_logs=True)
    digest = hashlib.sha256()
    for name, value in _components(pmk_state, time_state):
        comp_digest, _ = walker.encode_component(name, value)
        digest.update(comp_digest)
    return digest.hexdigest()
