"""The simulated platform: clock loop driving the PMK (Sect. 6 substrate).

The paper's prototype ran four RTEMS partitions on QEMU/IA-32; this module
is the reproduction's equivalent substrate.  A :class:`Simulator` owns the
time source, trace, interrupt controller and the PMK; :meth:`step` delivers
one clock interrupt (whose ISR is the PMK's
:meth:`~repro.core.pmk.Pmk.clock_tick`) and advances time, and the ``run``
helpers drive whole spans, MTFs, or predicates.

Determinism: no wall-clock, threads or global randomness — a configuration
plus a seed fully determines every trace event.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config.schema import SystemConfig
from ..core.pmk import Pmk
from ..core.runtime import PartitionRuntime
from ..exceptions import SimulationError
from ..types import Ticks
from .interrupts import InterruptController, Vector
from .time import TimeSource
from .trace import Trace

__all__ = ["Simulator"]


class Simulator:
    """Deterministic tick-driven execution of one AIR module."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.time = TimeSource()
        self.trace = Trace(capacity=config.trace_capacity)
        self.interrupts = InterruptController()
        self.pmk = Pmk(config, time=self.time, trace=self.trace)
        self.interrupts.install(Vector.CLOCK, self.pmk.clock_tick,
                                owner=InterruptController.PMK_OWNER)

    # -------------------------------------------------------------- #
    # time control
    # -------------------------------------------------------------- #

    @property
    def now(self) -> Ticks:
        """Current simulated time."""
        return self.time.now

    @property
    def stopped(self) -> bool:
        """True after a module-stop recovery action (Sect. 2.4)."""
        return self.pmk.stopped

    def step(self) -> None:
        """Execute exactly one clock tick."""
        self.interrupts.raise_interrupt(Vector.CLOCK)
        self.time.advance()

    def run(self, ticks: Ticks) -> None:
        """Execute *ticks* clock ticks (stopping early on module stop)."""
        if ticks < 0:
            raise SimulationError(f"cannot run {ticks} ticks")
        for _ in range(ticks):
            if self.pmk.stopped:
                break
            self.step()

    def run_fast(self, ticks: Ticks) -> None:
        """Execute *ticks* clock ticks, skipping provably inert stretches.

        DESIGN.md design-decision 4: during an *idle* window (no partition
        holds the processor) with no interpartition message in flight, the
        only per-tick work is Algorithm 1's fast path — nothing observable
        can happen until the next partition preemption point.  This mode
        jumps straight there, keeping the trace bit-identical to
        :meth:`run` (asserted by the equivalence tests); only the
        instrumentation counters are batch-updated.

        Schedule switches cannot be missed: an MTF boundary always carries
        a dispatch-table entry (offset 0), i.e. it *is* a preemption point.
        """
        if ticks < 0:
            raise SimulationError(f"cannot run {ticks} ticks")
        target = self.time.now + ticks
        while self.time.now < target:
            if self.pmk.stopped:
                return
            if (self.pmk.active_partition is None
                    and self.pmk.router.in_flight == 0):
                skip = min(self._ticks_to_next_preemption_point(),
                           target - self.time.now)
                if skip > 0:
                    self._skip_inert(skip)
                    continue
            self.step()

    def _ticks_to_next_preemption_point(self) -> Ticks:
        """Distance from *now* to the next Algorithm 1 table-entry match."""
        scheduler = self.pmk.scheduler
        schedule = scheduler.current
        entry = schedule.table[scheduler.table_iterator]
        offset = (self.time.now - scheduler.last_schedule_switch) \
            % schedule.mtf
        return (entry.tick - offset) % schedule.mtf

    def _skip_inert(self, count: Ticks) -> None:
        """Batch-account *count* inert idle ticks."""
        self.time.skip(count)
        stats = self.pmk.scheduler.stats
        stats.ticks += count
        stats.fast_path += count
        self.pmk.ticks_executed += count
        self.pmk.idle_ticks += count

    def run_until(self, tick: Ticks) -> None:
        """Run until simulated time reaches *tick*."""
        if tick < self.time.now:
            raise SimulationError(
                f"cannot run backwards: now={self.time.now}, target={tick}")
        self.run(tick - self.time.now)

    def run_mtf(self, count: int = 1) -> None:
        """Run *count* complete major time frames of the current schedule.

        Alignment is relative to the last schedule switch, matching
        Algorithm 1's modulo arithmetic.
        """
        for _ in range(count):
            scheduler = self.pmk.scheduler
            mtf = scheduler.current.mtf
            offset = (self.time.now - scheduler.last_schedule_switch) % mtf
            self.run(mtf - offset if offset else mtf)

    def run_while(self, predicate: Callable[["Simulator"], bool], *,
                  limit: Ticks = 1_000_000) -> None:
        """Run while *predicate(self)* holds, bounded by *limit* ticks."""
        for _ in range(limit):
            if self.pmk.stopped or not predicate(self):
                return
            self.step()
        raise SimulationError(
            f"run_while exceeded the {limit}-tick safety bound")

    # -------------------------------------------------------------- #
    # convenience accessors
    # -------------------------------------------------------------- #

    def runtime(self, partition: str) -> PartitionRuntime:
        """The runtime of *partition*."""
        return self.pmk.runtime(partition)

    def apex(self, partition: str):
        """The APEX instance of *partition*."""
        return self.pmk.apex(partition)

    @property
    def active_partition(self) -> Optional[str]:
        """Partition currently holding the processor."""
        return self.pmk.active_partition
