"""The simulated platform: clock loop driving the PMK (Sect. 6 substrate).

The paper's prototype ran four RTEMS partitions on QEMU/IA-32; this module
is the reproduction's equivalent substrate.  A :class:`Simulator` owns the
time source, trace, interrupt controller and the PMK; :meth:`step` delivers
one clock interrupt (whose ISR is the PMK's
:meth:`~repro.core.pmk.Pmk.clock_tick`) and advances time, and the ``run``
helpers drive whole spans, MTFs, or predicates.

Determinism: no wall-clock, threads or global randomness — a configuration
plus a seed fully determines every trace event.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config.schema import SystemConfig
from ..core.pmk import Pmk
from ..core.runtime import PartitionRuntime
from ..exceptions import SimulationError
from ..types import Ticks
from .interrupts import InterruptController, Vector
from .time import TimeSource
from .trace import Trace

__all__ = ["Simulator"]


#: Execution backends selectable at construction time.
BACKENDS = ("reference", "fast")


class Simulator:
    """Deterministic tick-driven execution of one AIR module.

    ``backend`` selects the execution engine behind :meth:`run_fast`:

    * ``"reference"`` (default) — the PR 1 event-driven loop, every
      stepped tick through the full interrupt-vector ISR;
    * ``"fast"`` — the profile-guided engine (DESIGN decision 9):
      memoized per-layer horizons, a dispatch-memoizing ISR mirror and
      an interrupt-controller bypass for the default clock wiring.  The
      contract is bit-identity: same trace, same deterministic counters,
      same digests as the reference backend, asserted by the equivalence
      matrices.

    ``run`` and ``step`` always use the per-tick reference ISR — the
    backend only changes how provably uniform spans are driven.

    ``cycle_cache`` (opt-in, orthogonal to the backend) enables
    steady-state MTF cycle memoization (DESIGN decision 13): the
    ``run_fast`` loops probe MTF boundaries for a fingerprint fixed
    point and replay verified whole-frame templates instead of stepping,
    under the same bit-identity contract.
    """

    def __init__(self, config: SystemConfig, *,
                 backend: str = "reference",
                 cycle_cache: bool = False) -> None:
        if backend not in BACKENDS:
            raise SimulationError(
                f"unknown backend {backend!r} (choose from {BACKENDS})")
        self.backend = backend
        self.config = config
        self.time = TimeSource()
        self.trace = Trace(capacity=config.trace_capacity)
        self.interrupts = InterruptController()
        self.pmk = Pmk(config, time=self.time, trace=self.trace)
        self.interrupts.install(Vector.CLOCK, self.pmk.clock_tick,
                                owner=InterruptController.PMK_OWNER)
        # Event-core efficiency counters.  Host-side bookkeeping only:
        # they differ between run() and run_fast() by design, so they are
        # reported through the self-profiling channel, never through the
        # deterministic metrics registry.
        self._spans_batched = 0
        self._ticks_batched = 0
        self._ticks_stepped = 0
        self._cycle_cache = None
        if cycle_cache:
            from .cycle_cache import CycleCache

            self._cycle_cache = CycleCache(self)

    # -------------------------------------------------------------- #
    # time control
    # -------------------------------------------------------------- #

    @property
    def now(self) -> Ticks:
        """Current simulated time."""
        return self.time.now

    @property
    def stopped(self) -> bool:
        """True after a module-stop recovery action (Sect. 2.4)."""
        return self.pmk.stopped

    def step(self) -> None:
        """Execute exactly one clock tick."""
        self._ticks_stepped += 1
        self.interrupts.raise_interrupt(Vector.CLOCK)
        self.time.advance()

    def run(self, ticks: Ticks) -> None:
        """Execute *ticks* clock ticks (stopping early on module stop)."""
        if ticks < 0:
            raise SimulationError(f"cannot run {ticks} ticks")
        for _ in range(ticks):
            if self.pmk.stopped:
                break
            self.step()

    def run_fast(self, ticks: Ticks) -> None:
        """Execute *ticks* clock ticks on the event-driven execution core.

        DESIGN.md design-decision 4: instead of raising one clock
        interrupt per tick, ask every layer for its ``next_event_tick``
        horizon — the scheduler's next preemption point, the router's next
        in-flight delivery, the active partition's next timer wake-up,
        policy preemption, deadline expiry, and the running process's
        remaining ``Compute`` budget (see
        :meth:`~repro.core.pmk.Pmk.next_event_tick`).  Every tick strictly
        before the minimum of those horizons is provably uniform — idle
        *or* actively computing — and is executed as one batched span;
        only the interesting ticks go through the full ISR.

        The trace (and every instrumentation counter) stays bit-identical
        to :meth:`run`, asserted by the equivalence tests across active
        windows, mode switches, deadline misses and HM restarts.  With
        ``backend="fast"`` the stepped ticks additionally go through the
        profile-guided ISR mirror (:meth:`_run_fast_optimized`) under the
        same bit-identity contract.
        """
        if ticks < 0:
            raise SimulationError(f"cannot run {ticks} ticks")
        if self.backend == "fast":
            self._run_fast_optimized(ticks)
        else:
            self._run_fast_reference(ticks)

    def _run_fast_reference(self, ticks: Ticks) -> None:
        """The PR 1 event-driven loop: full ISR on every stepped tick."""
        time = self.time
        pmk = self.pmk
        step = self.step
        cache = self._cycle_cache
        now = time.now
        target = now + ticks
        while now < target:
            if pmk.stopped:
                return
            if cache is not None and cache.on_boundary(now, target):
                now = time.now
                continue
            event = pmk.next_event_tick(now)
            if event > now:
                span = min(event, target) - now
                pmk.execute_span(now, span)
                time.skip(span)
                self._spans_batched += 1
                self._ticks_batched += span
                now += span
                if event >= target:
                    continue
                # Spans typically land exactly on the MTF boundary (the
                # schedule switch is an event tick), so the cache must be
                # consulted again before the boundary tick is stepped.
                if cache is not None and cache.on_boundary(now, target):
                    now = time.now
                    continue
            # The event tick itself always goes through the full ISR —
            # no need to recompute the horizon to discover that.
            step()
            now += 1

    def _run_fast_optimized(self, ticks: Ticks) -> None:
        """Profile-guided event loop (``backend="fast"``).

        The PR 3 self-profiler put ~86% of ``run_fast`` host time in the
        stepped-tick ISR path; this loop attacks exactly that:

        * the interrupt-vector machinery is bypassed for the clock tick —
          legal only under the default wiring (a single unmasked PMK
          handler on ``Vector.CLOCK``), checked up front and falling back
          to the reference loop otherwise; the controller's dispatch
          count is settled in aggregate so post-run introspection is
          indistinguishable from the reference backend;
        * each stepped tick runs :meth:`~repro.core.pmk.Pmk.clock_tick_fast`,
          the ISR mirror that leans on the memoized per-layer horizons
          (scheduler fast path without re-deriving the table offset,
          POS dispatch memo, router pump skip).

        Everything observable — trace, deterministic counters, digests,
        oracle verdicts — stays bit-identical to the reference backend.
        """
        interrupts = self.interrupts
        chain = interrupts.handlers_on(Vector.CLOCK)
        if (len(chain) != 1 or chain[0].handler != self.pmk.clock_tick
                or interrupts.is_masked(Vector.CLOCK)):
            # Non-default clock wiring (extra ISRs, masking, replaced
            # handler): the bypass would skip user handlers, so degrade
            # to the reference loop, which honours the full vector.
            self._run_fast_reference(ticks)
            return
        time = self.time
        pmk = self.pmk
        tick_fast = pmk.clock_tick_fast
        next_event = pmk.next_event_tick
        execute_span = pmk.execute_span
        skip = time.skip
        advance = time.advance
        cache = self._cycle_cache
        now = time.now
        target = now + ticks
        stepped = 0
        try:
            while now < target:
                if pmk.stopped:
                    return
                if cache is not None and cache.on_boundary(now, target):
                    now = time.now
                    continue
                event = next_event(now)
                if event > now:
                    span = min(event, target) - now
                    execute_span(now, span)
                    skip(span)
                    self._spans_batched += 1
                    self._ticks_batched += span
                    now += span
                    if event >= target:
                        continue
                    if cache is not None and cache.on_boundary(now, target):
                        now = time.now
                        continue
                tick_fast(now)
                advance()
                now += 1
                stepped += 1
        finally:
            self._ticks_stepped += stepped
            interrupts.account_bypassed(Vector.CLOCK, stepped)

    def run_until(self, tick: Ticks) -> None:
        """Run until simulated time reaches *tick*."""
        if tick < self.time.now:
            raise SimulationError(
                f"cannot run backwards: now={self.time.now}, target={tick}")
        self.run(tick - self.time.now)

    def run_mtf(self, count: int = 1) -> None:
        """Run *count* complete major time frames of the current schedule.

        Alignment is relative to the last schedule switch, matching
        Algorithm 1's modulo arithmetic.
        """
        for _ in range(count):
            scheduler = self.pmk.scheduler
            mtf = scheduler.current.mtf
            offset = (self.time.now - scheduler.last_schedule_switch) % mtf
            self.run(mtf - offset if offset else mtf)

    def run_while(self, predicate: Callable[["Simulator"], bool], *,
                  limit: Ticks = 1_000_000) -> None:
        """Run while *predicate(self)* holds, bounded by *limit* ticks."""
        for _ in range(limit):
            if self.pmk.stopped or not predicate(self):
                return
            self.step()
        raise SimulationError(
            f"run_while exceeded the {limit}-tick safety bound")

    # -------------------------------------------------------------- #
    # snapshot / fork (DESIGN decision 8)
    # -------------------------------------------------------------- #

    def snapshot(self):
        """Checkpoint the full deterministic state at the current tick.

        Returns a :class:`~repro.kernel.snapshot.SimulatorSnapshot` that
        can be pickled, cached, and forked into any number of independent
        continuations — each bit-identical to a cold run reaching the
        same tick.  The host-side event-core counters are *not* captured
        (they are nondeterministic across execution modes by design).
        """
        from .snapshot import SimulatorSnapshot

        return SimulatorSnapshot.capture(self)

    # -------------------------------------------------------------- #
    # self-profiling (DESIGN decision 6)
    # -------------------------------------------------------------- #

    @property
    def event_core_stats(self) -> dict:
        """Event-core efficiency counters (host-side, nondeterministic
        across execution modes): spans batched and the split of executed
        ticks between batched spans and full stepped ISRs."""
        return {
            "spans_batched": self._spans_batched,
            "ticks_batched": self._ticks_batched,
            "ticks_stepped": self._ticks_stepped,
        }

    @property
    def cycle_cache_stats(self) -> Optional[dict]:
        """Cycle-cache counters (DESIGN decision 13), or None when the
        cache is off.  Host-side, nondeterministic material — governed
        under the ``timing.execution`` telemetry sidecar, never part of
        the deterministic report."""
        if self._cycle_cache is None:
            return None
        return dict(self._cycle_cache.stats)

    def enable_profiling(self):
        """Opt into host-time self-profiling; returns the profiler.

        The PMK's ISR body then times each subsystem with
        ``perf_counter``.  Simulated behaviour is unchanged (asserted by
        the profiling equivalence test); host throughput drops by the
        probe overhead.  Read ``profiler.report(self)`` afterwards.
        """
        from ..obs.profiling import SelfProfiler

        profiler = SelfProfiler()
        profiler.start()
        self.pmk.profiler = profiler
        return profiler

    # -------------------------------------------------------------- #
    # convenience accessors
    # -------------------------------------------------------------- #

    def runtime(self, partition: str) -> PartitionRuntime:
        """The runtime of *partition*."""
        return self.pmk.runtime(partition)

    def apex(self, partition: str):
        """The APEX instance of *partition*."""
        return self.pmk.apex(partition)

    @property
    def active_partition(self) -> Optional[str]:
        """Partition currently holding the processor."""
        return self.pmk.active_partition
