"""Deterministic randomness for workload generation.

Experiments must be reproducible run-to-run (the paper's verification story
depends on determinism); all stochastic workload parameters flow through a
:class:`SeededRng` so a seed fully determines a simulation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, List, Optional, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["SeededRng"]


class SeededRng:
    """Thin, explicitly-seeded wrapper over :class:`random.Random`.

    Exists so that simulation components never touch the global
    :mod:`random` state, and so test code can assert a component received
    (and only used) its own stream.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """Uniformly pick one element of *options*."""
        return self._random.choice(options)

    def sample(self, options: Sequence[T], count: int) -> List[T]:
        """Sample *count* distinct elements of *options*."""
        return self._random.sample(options, count)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def chance(self, probability: float) -> bool:
        """True with the given *probability* in ``[0, 1]``."""
        return self._random.random() < probability

    def state_dict(self) -> Dict[str, Any]:
        """Serializable stream position: seed plus the Mersenne state.

        The returned value is pure data (ints and tuples) — picklable and
        JSON-encodable after a tuple→list conversion — so simulator
        snapshots can freeze a stream mid-sequence and
        :meth:`load_state_dict` can resume it bit-exactly, in this process
        or another.
        """
        return {"seed": self._seed, "state": self._random.getstate()}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a position captured by :meth:`state_dict`.

        After loading, the stream produces exactly the draws the captured
        stream would have produced next, and :meth:`fork` children are
        identical (forking depends only on the seed, never on the
        position).
        """
        self._seed = state["seed"]
        raw = state["state"]
        # Tolerate a JSON round-trip: getstate() is nested tuples, which
        # JSON flattens to lists.
        self._random.setstate(
            (raw[0], tuple(raw[1]), raw[2]) if not isinstance(raw, tuple)
            else raw)

    def fork(self, label: str) -> "SeededRng":
        """Derive an independent child stream, stable for a given label.

        Components forked with distinct labels get decorrelated streams
        while remaining fully determined by the parent seed.  Child seeds
        are derived with sha256 over a canonical encoding — *not*
        :func:`hash`, whose str hashing is randomized per interpreter
        process and would silently decorrelate campaign workers from the
        coordinator (and every run from every other run).
        """
        encoded = f"{self._seed}:{label}".encode("utf-8")
        child_seed = int.from_bytes(
            hashlib.sha256(encoded).digest()[:4], "big") & 0x7FFFFFFF
        return SeededRng(child_seed)
