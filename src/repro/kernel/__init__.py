"""Simulated platform substrate: clock, interrupts, contexts, trace,
simulator (the reproduction's stand-in for RTEMS/QEMU/IA-32 — DESIGN.md)."""

from .time import GuestClock, TamperAttempt, TimeSource
from .context import ContextBank, PartitionContext
from .interrupts import InterruptController, IsrRegistration, Vector
from .rng import SeededRng
from .trace import Trace


def __getattr__(name):
    # Imported lazily: the simulator depends on repro.core (the PMK), which
    # in turn imports kernel submodules — an eager import here would cycle.
    if name == "Simulator":
        from .simulator import Simulator

        return Simulator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "GuestClock", "TamperAttempt", "TimeSource", "ContextBank",
    "PartitionContext", "InterruptController", "IsrRegistration", "Vector",
    "SeededRng", "Trace", "Simulator",
]
