"""System clock abstraction for the simulated platform.

The AIR Partition Scheduler runs "at every system clock tick" (Sect. 2.1);
everything in the paper's model is expressed in ticks.  :class:`TimeSource`
is the single authority over simulated time.  Only the kernel (PMK) may
advance it; guest operating systems get a read-only view
(:class:`GuestClock`) and any attempt to disable or divert the tick source —
the hazard Sect. 2.5 paravirtualizes against for non-real-time guests — is
trapped and reported instead of honoured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..exceptions import ClockTamperingError, SimulationError
from ..types import Ticks

__all__ = ["TimeSource", "GuestClock", "TamperAttempt"]


@dataclass(frozen=True)
class TamperAttempt:
    """Record of one trapped attempt to interfere with the system clock."""

    tick: Ticks
    partition: str
    operation: str


class TimeSource:
    """Monotonic tick counter owned by the PMK.

    ``ticks`` mirrors Algorithm 1's global clock tick counter.  The counter
    only moves forward, one tick at a time, via :meth:`advance` — this keeps
    the simulation deterministic and makes off-by-one errors loud.
    """

    def __init__(self) -> None:
        self._ticks: Ticks = 0
        self._tamper_attempts: List[TamperAttempt] = []

    @property
    def now(self) -> Ticks:
        """Current simulated time in ticks."""
        return self._ticks

    def read(self) -> Ticks:
        """Current simulated time, as a plain method.

        ``time.read`` is the shared clock callable handed to every
        component that needs to stamp events (Health Monitor, router, PAL,
        runtimes): one bound method instead of one closure per consumer,
        and one attribute load instead of a property dispatch on the
        per-tick hot path.
        """
        return self._ticks

    def advance(self) -> Ticks:
        """Advance time by exactly one tick; returns the new time.

        Mirrors Algorithm 1 line 1 (``ticks <- ticks + 1``).
        """
        self._ticks += 1
        return self._ticks

    def skip(self, count: Ticks) -> Ticks:
        """Advance time by *count* ticks at once.

        Reserved for the simulator's event-driven execution core, which
        batches provably uniform tick spans (idle stretches *and* active
        compute windows) between interesting ticks; the per-tick clock ISR
        is the normal path.
        """
        if count < 0:
            raise SimulationError(f"cannot skip {count} ticks")
        self._ticks += count
        return self._ticks

    # -------------------------------------------------------------- #
    # paravirtualization trap surface (Sect. 2.5)
    # -------------------------------------------------------------- #

    def record_tamper_attempt(self, partition: str, operation: str) -> TamperAttempt:
        """Record a trapped guest attempt to disable/divert the clock.

        The PMK wraps the privileged clock instructions of non-real-time
        guests (paravirtualization, Sect. 2.5); when a guest executes one,
        the wrapper lands here.  The attempt is logged — never honoured —
        and returned so the caller can raise it to Health Monitoring.
        """
        attempt = TamperAttempt(tick=self._ticks, partition=partition,
                                operation=operation)
        self._tamper_attempts.append(attempt)
        return attempt

    @property
    def tamper_attempts(self) -> tuple:
        """All trapped tampering attempts so far, in order."""
        return tuple(self._tamper_attempts)

    def guest_view(self, partition: str) -> "GuestClock":
        """A read-only clock handle for *partition*'s operating system."""
        return GuestClock(self, partition)

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture the tick counter and tamper log as pure data."""
        return {"ticks": self._ticks,
                "tamper_attempts": list(self._tamper_attempts)}

    def restore(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture onto this time source."""
        self._ticks = state["ticks"]
        self._tamper_attempts = list(state["tamper_attempts"])


class GuestClock:
    """Read-only clock exposed to a partition's operating system.

    Reading time is always allowed.  The mutating operations a bare-metal
    kernel would perform on a one-shot/periodic timer are represented here
    as explicit methods that *always* trap: this is the paravirtualization
    contract of Sect. 2.5 made executable.
    """

    def __init__(self, source: TimeSource, partition: str) -> None:
        self._source = source
        self._partition = partition

    @property
    def now(self) -> Ticks:
        """Current time, identical to the PMK's view."""
        return self._source.now

    @property
    def partition(self) -> str:
        """Partition this handle belongs to."""
        return self._partition

    def disable_interrupts(self) -> None:
        """Trap: a guest may not mask the system clock interrupt."""
        self._trap("disable_interrupts")

    def set_timer_frequency(self, hz: int) -> None:
        """Trap: a guest may not reprogram the tick source."""
        self._trap(f"set_timer_frequency({hz})")

    def divert_clock_vector(self, handler: Callable[[], None]) -> None:
        """Trap: a guest may not steal the clock interrupt vector."""
        self._trap("divert_clock_vector")

    def _trap(self, operation: str) -> None:
        self._source.record_tamper_attempt(self._partition, operation)
        raise ClockTamperingError(
            f"partition {self._partition!r} attempted {operation}; the PMK "
            f"paravirtualization layer trapped the instruction (Sect. 2.5)",
            partition=self._partition, operation=operation)
