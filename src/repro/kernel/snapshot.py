"""Deterministic simulator checkpoints: capture, pickle, fork, resume.

A :class:`SimulatorSnapshot` captures the *complete* deterministic state of
a :class:`~repro.kernel.simulator.Simulator` at a tick boundary — scheduler
iterator position, per-partition runtime/POS/process state, deadline
structures, port queues and in-flight router messages, Health Monitor and
FDIR supervision history, watchdog deadlines, every rng stream, and the
trace recorded so far — as *pure data*: no live object graph, no
``deepcopy``.  Each component contributes an explicit ``snapshot()`` /
``restore()`` pair, which keeps the capture honest (a new piece of mutable
state must be added to its component's snapshot or the fork-equivalence
tests fail loudly) and makes snapshots picklable across process boundaries.

The two deliberately non-data pieces of simulator state are encoded
symbolically and reconstructed on restore:

* **process generators** — Python generators cannot be pickled, so each
  TCB records the sequence of values its generator consumed
  (``Tcb.resume_log``); restore re-instantiates the body from its factory
  and replays that sequence, discarding the yielded effects (their side
  effects already live in the captured state, which is overlaid on top);
* **closures** — wait-condition resources and in-flight delivery callbacks
  are captured as ``(kind, name)`` / destination-port references and
  resolved against the freshly built simulator.

Restore is *structural re-init + state overlay*: build a fresh
``Simulator(config)`` from a configuration equal to the captured one
(configurations hold process bodies and init hooks — closures — so they
are intentionally **not** part of the snapshot; the caller supplies one),
replay each initialized partition's initialization sequence to rebuild
wiring, then overlay every component's captured state.  The contract,
enforced by the fork-equivalence test matrix, is bit-identical
continuation: a forked simulator's trace digest, metrics digest and oracle
verdict equal those of an uninterrupted run from tick 0.

One snapshot can be restored any number of times — each call builds an
independent continuation, which is what makes prefix-sharing campaign
scheduling (:mod:`repro.campaign.prefix`) possible.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..config.schema import SystemConfig
from ..exceptions import SimulationError
from ..types import Ticks
from .simulator import Simulator

__all__ = ["SNAPSHOT_VERSION", "SimulatorSnapshot", "config_identity"]

#: Bumped whenever the snapshot layout changes incompatibly.
#: v2: trace events are tuple-encoded (see :meth:`Trace.snapshot`).
#: v3: optional ``extras`` side-channel (e.g. the fault injector's
#: applied log for snapshot-after-applied-faults prefix sharing).
SNAPSHOT_VERSION = 3


def config_identity(config: SystemConfig) -> Dict[str, Any]:
    """Cheap structural fingerprint of *config* for restore validation.

    Restoring a snapshot onto a configuration that differs structurally
    from the captured one would silently corrupt the continuation; this
    identity check catches the obvious mismatches (it is a guard, not a
    cryptographic digest — the campaign layer keys its snapshot cache on
    the full scenario fingerprint).
    """
    model = config.model
    return {
        "seed": config.seed,
        "partitions": tuple(model.partition_names),
        "schedules": tuple(sorted(s.schedule_id for s in model.schedules)),
        "initial_schedule": model.initial_schedule,
    }


@dataclass(frozen=True)
class SimulatorSnapshot:
    """One checkpoint of a simulator, forkable into any number of runs."""

    version: int
    tick: Ticks
    identity: Dict[str, Any]
    time: Dict[str, Any]
    trace: Dict[str, Any]
    pmk: Dict[str, Any]
    #: Caller-owned side-channel riding along with the checkpoint — pure
    #: data, ignored by :meth:`restore`.  The campaign layer uses it to
    #: carry the fault injector's applied log for checkpoints taken
    #: *after* faults fired (interior divergence-trie nodes), so a forked
    #: continuation can seed its injector instead of re-applying.
    extras: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------ #
    # capture
    # ------------------------------------------------------------ #

    @classmethod
    def capture(cls, sim: Simulator, *,
                extras: Optional[Dict[str, Any]] = None
                ) -> "SimulatorSnapshot":
        """Checkpoint *sim* at its current tick (any tick boundary).

        *extras* attaches caller-owned pure data (it must pickle) to the
        checkpoint; the simulator state capture is unaffected by it.
        """
        return cls(version=SNAPSHOT_VERSION,
                   tick=sim.time.now,
                   identity=config_identity(sim.config),
                   time=sim.time.snapshot(),
                   trace=sim.trace.snapshot(),
                   pmk=sim.pmk.snapshot(),
                   extras=extras)

    def provenance(self) -> Dict[str, Any]:
        """JSON-ready identity of this checkpoint for post-mortem bundles.

        What a flight recorder needs to answer "what state did this run
        fork from": layout version, capture tick, the structural config
        identity, and whether an injector log rode along in ``extras`` —
        never the state payload itself (bundles must stay small and
        diffable).
        """
        identity = dict(self.identity)
        for key, value in identity.items():
            if isinstance(value, tuple):
                identity[key] = list(value)
        return {
            "version": self.version,
            "tick": self.tick,
            "identity": identity,
            "trace_events": len(self.trace.get("events", ()))
            if isinstance(self.trace, dict) else None,
            "carries_injector_state": bool(
                self.extras and "injector" in self.extras),
        }

    # ------------------------------------------------------------ #
    # fork / resume
    # ------------------------------------------------------------ #

    def restore(self, config: SystemConfig, *,
                backend: str = "reference",
                cycle_cache: bool = False) -> Simulator:
        """Build a fresh simulator continuing from this checkpoint.

        *config* must be structurally equal to the captured simulator's
        configuration (same seed, partitions and schedules) — it carries
        the process bodies and init hooks the snapshot intentionally
        excludes.  Overlay order matters: time first (replay runs under
        the checkpoint clock), then the PMK (initialization replay and
        body reconstruction happen inside), then the trace — wholesale,
        erasing any events the replays emitted.

        *backend* selects the continuation's execution backend; snapshots
        are backend-agnostic (they capture deterministic state only), so
        a checkpoint taken on one backend forks onto any other.
        *cycle_cache* likewise re-arms steady-state cycle memoization on
        the continuation — cache state is host-side and never captured.
        """
        if self.version != SNAPSHOT_VERSION:
            raise SimulationError(
                f"snapshot version {self.version} != supported "
                f"{SNAPSHOT_VERSION}")
        identity = config_identity(config)
        if identity != self.identity:
            raise SimulationError(
                f"snapshot/config mismatch: captured {self.identity}, "
                f"restoring onto {identity}")
        sim = Simulator(config, backend=backend, cycle_cache=cycle_cache)
        sim.time.restore(self.time)
        sim.pmk.restore(self.pmk)
        sim.trace.restore(self.trace)
        return sim

    def fork(self, config: SystemConfig, *,
             backend: str = "reference",
             cycle_cache: bool = False) -> Simulator:
        """Alias of :meth:`restore` — every call is an independent fork."""
        return self.restore(config, backend=backend,
                            cycle_cache=cycle_cache)

    # ------------------------------------------------------------ #
    # process-boundary transport
    # ------------------------------------------------------------ #

    def to_bytes(self, *, compress: Optional[int] = None) -> bytes:
        """Serialize for caching or shipping to a worker process.

        Pickle protocol 5.  With *compress* (a zlib level, 0-9) the
        payload is deflated; :meth:`from_bytes` transparently accepts
        either form by sniffing the leading magic byte.
        """
        payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        if compress is not None:
            return zlib.compress(payload, compress)
        return payload

    def to_buffers(self) -> Tuple[bytes, List[bytes]]:
        """Protocol-5 out-of-band form: ``(main stream, buffer list)``.

        Any :class:`pickle.PickleBuffer`-able payloads inside the
        snapshot state are carried as separate buffers instead of being
        copied into the pickle stream — the zero-copy transport for
        same-machine channels (shared memory, pipes with vectored I/O)
        that can ship the buffers without re-serializing them.  Inverse:
        :meth:`from_buffers`.
        """
        buffers: List[pickle.PickleBuffer] = []
        main = pickle.dumps(self, protocol=5,
                            buffer_callback=buffers.append)
        return main, [buffer.raw().tobytes() for buffer in buffers]

    @classmethod
    def from_buffers(cls, main: bytes,
                     buffers: List[bytes]) -> "SimulatorSnapshot":
        """Inverse of :meth:`to_buffers`."""
        snapshot = pickle.loads(main, buffers=buffers)
        if not isinstance(snapshot, cls):
            raise SimulationError(
                f"payload does not contain a {cls.__name__}")
        return snapshot

    @classmethod
    def from_bytes(cls, payload: bytes) -> "SimulatorSnapshot":
        """Inverse of :meth:`to_bytes`, plain or zlib-compressed.

        Sniffed by magic byte: a protocol-2+ pickle stream starts with
        ``\\x80``; a zlib stream starts with ``\\x78``.
        """
        if payload[:1] == b"\x78":
            payload = zlib.decompress(payload)
        snapshot = pickle.loads(payload)
        if not isinstance(snapshot, cls):
            raise SimulationError(
                f"payload does not contain a {cls.__name__}")
        return snapshot
