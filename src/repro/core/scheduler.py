"""AIR Partition Scheduler with mode-based schedules — Algorithm 1 (Sect. 4).

The scheduler runs at every system clock tick.  Its fast path — the best and
most frequent case the paper highlights in Sect. 4.3 — performs only two
computations: increment the tick counter and check whether a partition
preemption point has been reached.  Only at preemption points does it do
more: effect a pending schedule switch if the MTF boundary was crossed
(lines 3-7), pick the heir partition (line 8) and advance the table iterator
(line 9).

The implementation mirrors Algorithm 1 line by line (see the docstring of
:meth:`PartitionScheduler.tick`); instrumentation counters let benchmark E5
separate the fast path from the preemption-point and switch paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..exceptions import SchedulingError, UnknownScheduleError
from ..kernel.trace import ScheduleSwitched, ScheduleSwitchRequested, Trace
from ..types import ScheduleChangeAction, Ticks
from .model import DispatchEntry, ScheduleTable, SystemModel

__all__ = ["CompiledSchedule", "SchedulerStats", "PartitionScheduler"]


@dataclass(frozen=True)
class CompiledSchedule:
    """Run-time form of one PST, as consulted by Algorithm 1.

    ``table`` is the dispatch table (one entry per partition preemption
    point); ``mtf`` the major time frame; both are precomputed so the tick
    path does no model traversal.
    """

    schedule_id: str
    mtf: Ticks
    table: Tuple[DispatchEntry, ...]
    source: ScheduleTable

    @classmethod
    def compile(cls, schedule: ScheduleTable) -> "CompiledSchedule":
        """Precompute the dispatch table of *schedule*."""
        return cls(schedule_id=schedule.schedule_id,
                   mtf=schedule.major_time_frame,
                   table=schedule.dispatch_table(),
                   source=schedule)

    @property
    def number_partition_preemption_points(self) -> int:
        """Algorithm 1's ``numberPartitionPreemptionPoints``."""
        return len(self.table)


@dataclass
class SchedulerStats:
    """Instrumentation for experiment E5 (Sect. 4.3's efficiency claim)."""

    ticks: int = 0
    fast_path: int = 0
    preemption_points: int = 0
    schedule_switches: int = 0

    @property
    def fast_path_fraction(self) -> float:
        """Fraction of ticks that took the two-computation fast path."""
        return self.fast_path / self.ticks if self.ticks else 0.0


class PartitionScheduler:
    """First level of the two-level hierarchical scheduler (Fig. 2, Fig. 4).

    Parameters
    ----------
    system:
        The validated system model; every PST is compiled at construction.
    trace:
        Event sink for switch requests and effective switches.
    """

    def __init__(self, system: SystemModel,
                 trace: Optional[Trace] = None) -> None:
        self._schedules: Dict[str, CompiledSchedule] = {
            schedule.schedule_id: CompiledSchedule.compile(schedule)
            for schedule in system.schedules}
        self._trace = trace
        self.current_schedule: str = system.initial_schedule
        self.next_schedule: str = system.initial_schedule
        self.last_schedule_switch: Ticks = 0
        self.table_iterator: int = 0
        self.heir_partition: Optional[str] = None
        self.stats = SchedulerStats()
        #: Partitions owing a ScheduleChangeAction at their next dispatch
        #: (consumed by the Partition Dispatcher — Algorithm 2, line 9).
        self.pending_change_actions: Dict[str, ScheduleChangeAction] = {}
        #: Horizon-memo state generation: bumped whenever the table
        #: iterator, current schedule or epoch can move (the preemption
        #: point path of :meth:`tick`, and :meth:`restore`).
        self._horizon_generation = 0
        self._horizon_memo: Tuple[int, Ticks] = (-1, 0)

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def schedule_ids(self) -> Tuple[str, ...]:
        """All compiled schedule identifiers."""
        return tuple(self._schedules)

    def schedule(self, schedule_id: str) -> CompiledSchedule:
        """The compiled schedule *schedule_id*."""
        try:
            return self._schedules[schedule_id]
        except KeyError:
            raise UnknownScheduleError(
                f"no schedule named {schedule_id!r}") from None

    @property
    def current(self) -> CompiledSchedule:
        """The schedule currently in force."""
        return self._schedules[self.current_schedule]

    @property
    def switch_pending(self) -> bool:
        """True if a schedule change awaits the next MTF boundary."""
        return self.next_schedule != self.current_schedule

    # -------------------------------------------------------------- #
    # mode-based schedule service entry point (Sect. 4.2)
    # -------------------------------------------------------------- #

    def request_switch(self, schedule_id: str, *, now: Ticks,
                       requested_by: str = "") -> None:
        """SET_MODULE_SCHEDULE backend: store the next-schedule identifier.

        "The immediate result is only that of storing the identifier of
        the next schedule" — the switch takes effect at the start of the
        next MTF (Sect. 4.2).  A later request before the boundary simply
        overwrites the pending identifier; requesting the current schedule
        cancels a pending switch.
        """
        if schedule_id not in self._schedules:
            raise UnknownScheduleError(
                f"cannot switch to unknown schedule {schedule_id!r} "
                f"(available: {sorted(self._schedules)})")
        self.next_schedule = schedule_id
        if self._trace is not None:
            self._trace.record(ScheduleSwitchRequested(
                tick=now, requested_by=requested_by,
                from_schedule=self.current_schedule, to_schedule=schedule_id))

    # -------------------------------------------------------------- #
    # Algorithm 1
    # -------------------------------------------------------------- #

    def tick(self, ticks: Ticks) -> bool:
        """One clock tick of the AIR Partition Scheduler.

        *ticks* is the global clock tick counter value (the caller — the
        clock ISR — performs line 1's increment by advancing the
        :class:`~repro.kernel.time.TimeSource`; it is passed in rather
        than re-read for testability).

        Returns True when a partition preemption point was reached, i.e.
        the Partition Dispatcher must run (:attr:`heir_partition` holds
        the heir).

        Line-by-line correspondence with Algorithm 1::

            1: ticks <- ticks + 1                      (caller)
            2: if schedules[cs].table[it].tick ==
                  (ticks - lastScheduleSwitch) mod schedules[cs].mtf:
            3:   if cs != nextSchedule and
                    (ticks - lastScheduleSwitch) mod schedules[cs].mtf == 0:
            4:     cs <- nextSchedule
            5:     lastScheduleSwitch <- ticks
            6:     tableIterator <- 0
            7:   end if
            8:   heirPartition <- schedules[cs].table[it].partition
            9:   tableIterator <- (it + 1) mod
                    schedules[cs].numberPartitionPreemptionPoints
            10: end if
        """
        self.stats.ticks += 1
        schedule = self._schedules[self.current_schedule]
        offset = (ticks - self.last_schedule_switch) % schedule.mtf
        if schedule.table[self.table_iterator].tick != offset:          # l. 2
            self.stats.fast_path += 1
            return False
        if self.current_schedule != self.next_schedule and offset == 0:  # l. 3
            previous = self.current_schedule
            self.current_schedule = self.next_schedule                  # l. 4
            self.last_schedule_switch = ticks                           # l. 5
            self.table_iterator = 0                                     # l. 6
            schedule = self._schedules[self.current_schedule]
            self.stats.schedule_switches += 1
            self._arm_change_actions(schedule)
            if self._trace is not None:
                self._trace.record(ScheduleSwitched(
                    tick=ticks, from_schedule=previous,
                    to_schedule=self.current_schedule))
        entry = schedule.table[self.table_iterator]
        self.heir_partition = entry.partition                           # l. 8
        self.table_iterator = ((self.table_iterator + 1)                # l. 9
                               % schedule.number_partition_preemption_points)
        self.stats.preemption_points += 1
        self._horizon_generation += 1
        return True

    # -------------------------------------------------------------- #
    # event-driven execution support
    # -------------------------------------------------------------- #

    def next_preemption_tick(self, now: Ticks) -> Ticks:
        """Absolute tick of the next Algorithm 1 table-entry match.

        Returns *now* itself when the current tick is a partition
        preemption point (the ISR must run).  Every tick strictly before
        the returned one takes the two-computation fast path, so the
        event-driven core may batch them: this is the scheduler's
        ``next_event_tick`` horizon.

        Schedule switches cannot be missed by jumping here: a pending
        switch takes effect at an MTF boundary, and an MTF boundary always
        carries a dispatch-table entry (offset 0), i.e. it *is* a
        preemption point of the current schedule.

        The absolute result is constant between preemption points (the
        iterator only advances inside :meth:`tick`'s match path, which
        bumps the generation counter), so it is memoized per generation —
        a ``request_switch`` does not move the horizon because the MTF
        boundary it targets is itself a table entry.
        """
        generation = self._horizon_generation
        memo_generation, memo_tick = self._horizon_memo
        if memo_generation == generation and memo_tick >= now:
            return memo_tick
        schedule = self._schedules[self.current_schedule]
        entry = schedule.table[self.table_iterator]
        offset = (now - self.last_schedule_switch) % schedule.mtf
        horizon = now + (entry.tick - offset) % schedule.mtf
        self._horizon_memo = (generation, horizon)
        return horizon

    def batch_account(self, ticks: Ticks) -> None:
        """Account *ticks* fast-path ticks executed as one batch.

        The event-driven core only batches spans strictly inside a
        preemption-point-free stretch, where :meth:`tick` would have taken
        the fast path every time; the instrumentation counters stay
        bit-identical to per-tick execution.
        """
        self.stats.ticks += ticks
        self.stats.fast_path += ticks

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture Algorithm 1's mutable state as pure data.

        Compiled schedules are structural (rebuilt from the system model
        at construction) and are *not* captured — only the iterator
        position, schedule identifiers, pending change actions and
        instrumentation counters.
        """
        return {
            "current_schedule": self.current_schedule,
            "next_schedule": self.next_schedule,
            "last_schedule_switch": self.last_schedule_switch,
            "table_iterator": self.table_iterator,
            "heir_partition": self.heir_partition,
            "pending_change_actions": dict(self.pending_change_actions),
            "stats": {"ticks": self.stats.ticks,
                      "fast_path": self.stats.fast_path,
                      "preemption_points": self.stats.preemption_points,
                      "schedule_switches": self.stats.schedule_switches},
        }

    def restore(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture onto this scheduler."""
        self.current_schedule = state["current_schedule"]
        self.next_schedule = state["next_schedule"]
        self.last_schedule_switch = state["last_schedule_switch"]
        self.table_iterator = state["table_iterator"]
        self.heir_partition = state["heir_partition"]
        self.pending_change_actions = dict(state["pending_change_actions"])
        stats = state["stats"]
        self.stats = SchedulerStats(**stats)
        self._horizon_generation += 1

    def _arm_change_actions(self, schedule: CompiledSchedule) -> None:
        """Arm each scheduled partition's ScheduleChangeAction.

        The actions are *performed* per partition at its first dispatch
        after the switch (Algorithm 2, line 9 — the paper's reading of
        ARINC 653 Part 2, Sect. 4.3); here they are only recorded as
        pending.
        """
        self.pending_change_actions.clear()
        for requirement in schedule.source.requirements:
            action = schedule.source.change_action_for(requirement.partition)
            if action is not ScheduleChangeAction.IGNORE:
                self.pending_change_actions[requirement.partition] = action

    def take_pending_action(
            self, partition: str) -> Optional[ScheduleChangeAction]:
        """Pop the pending change action for *partition*, if any
        (PENDINGSCHEDULECHANGEACTION — Algorithm 2, line 9)."""
        return self.pending_change_actions.pop(partition, None)
