"""Formal system model of an AIR / ARINC 653 based TSP system (Sect. 3, 4.1, 5.1).

This module encodes, as immutable dataclasses, the entities of the paper's
formal model in its final (mode-based) formulation:

* :class:`ProcessModel` — a process ``tau_m,q = <T, D, p, C>`` (eq. (11);
  the runtime status ``S_m,q(t)`` of eq. (12) lives in :mod:`repro.pos.tcb`);
* :class:`Partition` — a partition ``P_m = <tau_m, M_m(t)>`` (eq. (16);
  the runtime mode is tracked by the runtime, not the model);
* :class:`TimeWindow` — a window ``omega_i,j = <P, O, c>`` (eq. (20));
* :class:`PartitionRequirement` — per-schedule timing requirements
  ``Q_i,m = <P, eta, d>`` (eq. (19));
* :class:`ScheduleTable` — a partition scheduling table
  ``chi_i = <MTF_i, Q_i, omega_i>`` (eq. (18));
* :class:`SystemModel` — the whole system ``<P, chi>`` (eqs. (1), (17)).

The classes validate *local* well-formedness eagerly in ``__post_init__``
(non-negative durations, window containment in the MTF — eq. (21), windows
referring only to partitions present in ``Q_i`` — eq. (20)).  The *global*
integration-time conditions — MTF as a multiple of the lcm of cycles
(eq. (22)) and the per-cycle duration guarantee (eq. (23)) — are checked by
:mod:`repro.core.validation`, which produces a structured report instead of
failing fast, because an integrator wants to see *all* configuration problems
at once.

The original single-schedule model of Sect. 3 (eqs. (2), (4)-(9)) is the
special case ``n(chi) = 1`` (the paper makes this observation at the end of
Sect. 4.1); :func:`single_schedule_system` builds exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from ..exceptions import (
    ConfigurationError,
    UnknownPartitionError,
    UnknownProcessError,
    UnknownScheduleError,
)
from ..types import (
    INFINITE_TIME,
    PartitionMode,
    ScheduleChangeAction,
    Ticks,
    is_infinite,
)

__all__ = [
    "ProcessModel",
    "Partition",
    "TimeWindow",
    "PartitionRequirement",
    "ScheduleTable",
    "SystemModel",
    "DispatchEntry",
    "single_schedule_system",
    "lcm_of_cycles",
]


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with *message* unless *condition*."""
    if not condition:
        raise ConfigurationError(message)


def lcm_of_cycles(cycles: Iterable[Ticks]) -> Ticks:
    """Least common multiple of partition activation cycles — used by eq. (22)."""
    result = 1
    seen = False
    for cycle in cycles:
        _require(cycle > 0, f"partition cycle must be positive, got {cycle}")
        result = math.lcm(result, cycle)
        seen = True
    _require(seen, "cannot take the lcm of an empty set of cycles")
    return result


@dataclass(frozen=True)
class ProcessModel:
    """Static attributes of a process ``tau_m,q`` — eq. (11).

    Attributes
    ----------
    name:
        Process identifier, unique within its partition.
    period:
        ``T_m,q``.  For a periodic process, the activation period; for an
        aperiodic or sporadic process, the lower bound between consecutive
        activations.  ``INFINITE_TIME`` marks a purely aperiodic process
        with no minimum separation.
    deadline:
        ``D_m,q`` — relative deadline (time capacity in ARINC 653 terms).
        ``INFINITE_TIME`` means the process has no deadline (eq. (24)
        excludes it from deadline violation monitoring).
    priority:
        ``p_m,q`` — base priority.  Lower numerical value = greater
        priority (the paper's convention, Sect. 3.3).
    wcet:
        ``C_m,q`` — worst case execution time.  Not an ARINC 653 attribute;
        added by the paper's model for schedulability analysis.
        ``INFINITE_TIME`` if unknown.
    periodic:
        True for strictly periodic processes (release points separated by
        exactly ``period``).
    """

    name: str
    period: Ticks = INFINITE_TIME
    deadline: Ticks = INFINITE_TIME
    priority: int = 0
    wcet: Ticks = INFINITE_TIME
    periodic: bool = True

    def __post_init__(self) -> None:
        _require(bool(self.name), "process name must be non-empty")
        for label, value in (("period", self.period), ("deadline", self.deadline),
                             ("wcet", self.wcet)):
            _require(value > 0 or is_infinite(value),
                     f"process {self.name!r}: {label} must be positive or "
                     f"INFINITE_TIME, got {value}")
        _require(self.priority >= 0,
                 f"process {self.name!r}: priority must be >= 0, got {self.priority}")
        if self.periodic:
            _require(not is_infinite(self.period),
                     f"process {self.name!r}: a periodic process needs a finite period")
        if not is_infinite(self.wcet) and not is_infinite(self.deadline):
            _require(self.wcet <= self.deadline,
                     f"process {self.name!r}: WCET {self.wcet} exceeds its own "
                     f"deadline {self.deadline}; it can never meet it")

    @property
    def has_deadline(self) -> bool:
        """True if deadline violation monitoring applies — the ``D != inf``
        condition of eq. (24)."""
        return not is_infinite(self.deadline)

    @property
    def is_sporadic(self) -> bool:
        """True for sporadic processes: not periodic, but with a finite
        ``T`` — "the lower bound for the time between consecutive
        activations" (Sect. 3.3)."""
        return not self.periodic and not is_infinite(self.period)

    def utilization(self) -> float:
        """CPU utilization ``C/T`` of this process, or 0.0 if unknown/aperiodic."""
        if is_infinite(self.wcet) or is_infinite(self.period):
            return 0.0
        return self.wcet / self.period


@dataclass(frozen=True)
class Partition:
    """A partition ``P_m = <tau_m, M_m(t)>`` — eq. (16).

    Timing requirements (cycle, duration) are *not* attributes of the
    partition: since Sect. 4.1 they belong to the partition *within a given
    schedule* (:class:`PartitionRequirement`).  The runtime operating mode
    ``M_m(t)`` is tracked by the runtime layer; here only the *initial* mode
    is recorded.

    Attributes
    ----------
    name:
        Partition identifier ``P_m``, unique system-wide.
    processes:
        The taskset ``tau_m`` — eq. (10).
    system_partition:
        True for ARINC 653 *system partitions*, which may bypass APEX and
        invoke privileged services (e.g. the mode-based schedule switch of
        Sect. 4.2 requires an *authorized* partition).
    initial_mode:
        Mode entered at module start (typically ``COLD_START``).
    criticality:
        Free-form integration label (e.g. "A".."E"), carried for reporting.
    """

    name: str
    processes: Tuple[ProcessModel, ...] = ()
    system_partition: bool = False
    initial_mode: PartitionMode = PartitionMode.COLD_START
    criticality: str = "C"

    def __post_init__(self) -> None:
        _require(bool(self.name), "partition name must be non-empty")
        names = [process.name for process in self.processes]
        _require(len(names) == len(set(names)),
                 f"partition {self.name!r}: duplicate process names {names}")

    def process(self, name: str) -> ProcessModel:
        """Return the process called *name*, or raise :class:`UnknownProcessError`."""
        for process in self.processes:
            if process.name == name:
                return process
        raise UnknownProcessError(
            f"partition {self.name!r} has no process named {name!r}")

    @property
    def process_names(self) -> Tuple[str, ...]:
        """Names of all processes in declaration order."""
        return tuple(process.name for process in self.processes)

    def utilization(self) -> float:
        """Aggregate ``sum(C/T)`` over processes with known WCET and period."""
        return sum(process.utilization() for process in self.processes)


@dataclass(frozen=True)
class TimeWindow:
    """A partition execution time window ``omega_i,j = <P, O, c>`` — eq. (20).

    Attributes
    ----------
    partition:
        Name of the partition active during the window (``P^omega_i,j``).
    offset:
        ``O_i,j`` — start, relative to the beginning of the MTF.
    duration:
        ``c_i,j`` — length of the window, in ticks.
    """

    partition: str
    offset: Ticks
    duration: Ticks

    def __post_init__(self) -> None:
        _require(bool(self.partition), "time window must name a partition")
        _require(self.offset >= 0,
                 f"window for {self.partition!r}: offset must be >= 0, "
                 f"got {self.offset}")
        _require(self.duration > 0,
                 f"window for {self.partition!r}: duration must be > 0, "
                 f"got {self.duration}")

    @property
    def end(self) -> Ticks:
        """First tick after the window (``O + c``)."""
        return self.offset + self.duration

    def contains(self, tick_in_mtf: Ticks) -> bool:
        """True if *tick_in_mtf* (already reduced mod MTF) falls inside."""
        return self.offset <= tick_in_mtf < self.end

    def overlaps(self, other: "TimeWindow") -> bool:
        """True if this window and *other* intersect in time."""
        return self.offset < other.end and other.offset < self.end


@dataclass(frozen=True)
class PartitionRequirement:
    """Timing requirements of a partition under one schedule — eq. (19).

    ``Q_i,m = <P^chi_i,m, eta_i,m, d_i,m>``: the partition, its activation
    cycle under this schedule, and the duration (execution time) it must
    receive per cycle.

    Partitions without strict time requirements (e.g. those running
    non-real-time operating systems) have ``duration == 0`` (Sect. 3.1).
    A partition that is not inherently periodic is modeled with a cycle
    equal to the MTF.
    """

    partition: str
    cycle: Ticks
    duration: Ticks

    def __post_init__(self) -> None:
        _require(bool(self.partition), "requirement must name a partition")
        _require(self.cycle > 0,
                 f"requirement for {self.partition!r}: cycle must be > 0, "
                 f"got {self.cycle}")
        _require(self.duration >= 0,
                 f"requirement for {self.partition!r}: duration must be >= 0, "
                 f"got {self.duration}")
        _require(self.duration <= self.cycle,
                 f"requirement for {self.partition!r}: duration {self.duration} "
                 f"exceeds cycle {self.cycle}")

    def utilization(self) -> float:
        """Fraction of the processor demanded: ``d / eta``."""
        return self.duration / self.cycle


@dataclass(frozen=True)
class DispatchEntry:
    """One partition preemption point in a schedule's dispatch table.

    ``tick`` is the offset within the MTF at which the preemption point
    occurs; ``partition`` is the heir partition, or ``None`` when the point
    opens an idle gap (no partition scheduled).  This is the run-time
    representation consulted by the AIR Partition Scheduler (Algorithm 1,
    line 2: ``schedules[cs].table[it].tick``).
    """

    tick: Ticks
    partition: Optional[str]


@dataclass(frozen=True)
class ScheduleTable:
    """A partition scheduling table ``chi_i = <MTF_i, Q_i, omega_i>`` — eq. (18).

    Local well-formedness enforced here:

    * windows are sorted, non-overlapping and contained in one MTF
      (eq. (21));
    * every window names a partition present in ``Q_i`` (eq. (20):
      ``P^omega in Q_i``), and every requirement has at least one window;
    * requirements name distinct partitions.

    Global conditions (eqs. (22)-(23)) are checked by
    :func:`repro.core.validation.validate_schedule`.

    Attributes
    ----------
    schedule_id:
        Identifier used by the mode-based schedule services (Sect. 4.2).
    major_time_frame:
        ``MTF_i`` — the interval over which the table repeats.
    requirements:
        ``Q_i`` — per-partition timing requirements under this schedule.
    windows:
        ``omega_i`` — the execution time windows, in ascending offset order
        (unordered input is accepted and sorted).
    change_actions:
        Per-partition ``ScheduleChangeAction`` applied on the first dispatch
        after a switch *to* this schedule (Sect. 4; default ``IGNORE``).
    """

    schedule_id: str
    major_time_frame: Ticks
    requirements: Tuple[PartitionRequirement, ...]
    windows: Tuple[TimeWindow, ...]
    change_actions: Mapping[str, ScheduleChangeAction] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(bool(self.schedule_id), "schedule id must be non-empty")
        _require(self.major_time_frame > 0,
                 f"schedule {self.schedule_id!r}: MTF must be > 0, "
                 f"got {self.major_time_frame}")
        _require(len(self.requirements) > 0,
                 f"schedule {self.schedule_id!r}: needs at least one partition "
                 f"requirement")
        req_names = [req.partition for req in self.requirements]
        _require(len(req_names) == len(set(req_names)),
                 f"schedule {self.schedule_id!r}: duplicate requirements for "
                 f"partitions {req_names}")

        ordered = tuple(sorted(self.windows, key=lambda w: w.offset))
        object.__setattr__(self, "windows", ordered)
        _require(len(ordered) > 0,
                 f"schedule {self.schedule_id!r}: needs at least one time window")

        # eq. (21): O_j + c_j <= O_{j+1}, and the last window ends within the MTF.
        for first, second in zip(ordered, ordered[1:]):
            _require(first.end <= second.offset,
                     f"schedule {self.schedule_id!r}: windows overlap — "
                     f"{first.partition!r}@[{first.offset},{first.end}) and "
                     f"{second.partition!r}@[{second.offset},{second.end})")
        _require(ordered[-1].end <= self.major_time_frame,
                 f"schedule {self.schedule_id!r}: last window ends at "
                 f"{ordered[-1].end}, beyond MTF {self.major_time_frame}")

        # eq. (20): every window's partition must appear in Q_i ...
        partitions_in_q = set(req_names)
        for window in ordered:
            _require(window.partition in partitions_in_q,
                     f"schedule {self.schedule_id!r}: window at offset "
                     f"{window.offset} names partition {window.partition!r} "
                     f"absent from the schedule's requirements Q")
        # ... and every partition in Q_i has at least one window (Sect. 3.2's
        # assumption, carried over per-schedule).
        partitions_in_omega = {window.partition for window in ordered}
        for req in self.requirements:
            _require(req.partition in partitions_in_omega,
                     f"schedule {self.schedule_id!r}: partition "
                     f"{req.partition!r} has a requirement but no time window")

        for partition in self.change_actions:
            _require(partition in partitions_in_q,
                     f"schedule {self.schedule_id!r}: change action for unknown "
                     f"partition {partition!r}")

    # ------------------------------------------------------------------ #
    # lookup helpers
    # ------------------------------------------------------------------ #

    @property
    def partitions(self) -> Tuple[str, ...]:
        """Names of partitions scheduled by this table, in requirement order."""
        return tuple(req.partition for req in self.requirements)

    def requirement_for(self, partition: str) -> PartitionRequirement:
        """Return ``Q_i,m`` for *partition*, or raise :class:`UnknownPartitionError`."""
        for req in self.requirements:
            if req.partition == partition:
                return req
        raise UnknownPartitionError(
            f"schedule {self.schedule_id!r} has no requirement for "
            f"partition {partition!r}")

    def windows_for(self, partition: str) -> Tuple[TimeWindow, ...]:
        """All time windows assigned to *partition*, in offset order."""
        return tuple(w for w in self.windows if w.partition == partition)

    def change_action_for(self, partition: str) -> ScheduleChangeAction:
        """The ``ScheduleChangeAction`` for *partition* (default ``IGNORE``)."""
        return self.change_actions.get(partition, ScheduleChangeAction.IGNORE)

    def window_at(self, tick_in_mtf: Ticks) -> Optional[TimeWindow]:
        """The window covering *tick_in_mtf* (reduced mod MTF), if any."""
        tick = tick_in_mtf % self.major_time_frame
        for window in self.windows:
            if window.contains(tick):
                return window
            if window.offset > tick:
                break
        return None

    def active_partition_at(self, tick_in_mtf: Ticks) -> Optional[str]:
        """Partition holding the processor at *tick_in_mtf*, or None (idle)."""
        window = self.window_at(tick_in_mtf)
        return window.partition if window is not None else None

    # ------------------------------------------------------------------ #
    # derived run-time structures
    # ------------------------------------------------------------------ #

    def dispatch_table(self) -> Tuple[DispatchEntry, ...]:
        """Partition preemption points, as consulted by Algorithm 1.

        One entry per window start; an extra ``partition=None`` entry opens
        each idle gap (between non-contiguous windows, or between the last
        window's end and the MTF boundary).
        """
        entries: list[DispatchEntry] = []
        cursor: Ticks = 0
        for window in self.windows:
            if window.offset > cursor:
                entries.append(DispatchEntry(tick=cursor, partition=None))
            entries.append(DispatchEntry(tick=window.offset,
                                         partition=window.partition))
            cursor = window.end
        if cursor < self.major_time_frame:
            entries.append(DispatchEntry(tick=cursor, partition=None))
        return tuple(entries)

    def preemption_points(self) -> Tuple[Ticks, ...]:
        """Offsets (within the MTF) at which a context switch may occur."""
        return tuple(entry.tick for entry in self.dispatch_table())

    def idle_time(self) -> Ticks:
        """Ticks per MTF during which no partition is scheduled."""
        return self.major_time_frame - sum(w.duration for w in self.windows)

    def allocated_time(self, partition: str) -> Ticks:
        """Total window time given to *partition* per MTF (left side of eq. (8))."""
        return sum(w.duration for w in self.windows_for(partition))

    def utilization(self) -> float:
        """Fraction of the MTF covered by windows (1.0 = no idle gap)."""
        return 1.0 - self.idle_time() / self.major_time_frame

    def cycles_of(self, partition: str) -> int:
        """Number of activation cycles *partition* completes per MTF
        (``MTF_i / eta_m`` in eqs. (8)-(9), (23))."""
        req = self.requirement_for(partition)
        return self.major_time_frame // req.cycle


@dataclass(frozen=True)
class SystemModel:
    """A complete AIR system: ``<P, chi>`` — eqs. (1) and (17).

    Attributes
    ----------
    partitions:
        The system's set of partitions ``P``.
    schedules:
        The set of partition scheduling tables ``chi``.  Every partition
        named by any schedule must exist in ``partitions``; the converse is
        *not* required (Sect. 4.1: not all partitions appear in every
        schedule — nor, indeed, in any).
    initial_schedule:
        Identifier of the PST in force at module start.
    """

    partitions: Tuple[Partition, ...]
    schedules: Tuple[ScheduleTable, ...]
    initial_schedule: str

    def __post_init__(self) -> None:
        _require(len(self.partitions) > 0, "system must define at least one partition")
        _require(len(self.schedules) > 0, "system must define at least one schedule")

        partition_names = [p.name for p in self.partitions]
        _require(len(partition_names) == len(set(partition_names)),
                 f"duplicate partition names: {partition_names}")
        schedule_ids = [s.schedule_id for s in self.schedules]
        _require(len(schedule_ids) == len(set(schedule_ids)),
                 f"duplicate schedule ids: {schedule_ids}")
        _require(self.initial_schedule in schedule_ids,
                 f"initial schedule {self.initial_schedule!r} is not one of "
                 f"{schedule_ids}")

        known = set(partition_names)
        for schedule in self.schedules:
            for req in schedule.requirements:
                _require(req.partition in known,
                         f"schedule {schedule.schedule_id!r} schedules unknown "
                         f"partition {req.partition!r}")

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    @property
    def partition_names(self) -> Tuple[str, ...]:
        """Names of all partitions, in declaration order."""
        return tuple(p.name for p in self.partitions)

    @property
    def schedule_ids(self) -> Tuple[str, ...]:
        """Identifiers of all schedules, in declaration order."""
        return tuple(s.schedule_id for s in self.schedules)

    def partition(self, name: str) -> Partition:
        """Return partition *name*, or raise :class:`UnknownPartitionError`."""
        for partition in self.partitions:
            if partition.name == name:
                return partition
        raise UnknownPartitionError(f"no partition named {name!r}")

    def schedule(self, schedule_id: str) -> ScheduleTable:
        """Return schedule *schedule_id*, or raise :class:`UnknownScheduleError`."""
        for schedule in self.schedules:
            if schedule.schedule_id == schedule_id:
                return schedule
        raise UnknownScheduleError(f"no schedule named {schedule_id!r}")

    def processes(self) -> Iterator[Tuple[Partition, ProcessModel]]:
        """Iterate ``(partition, process)`` over the whole system —
        the union in eq. (24)."""
        for partition in self.partitions:
            for process in partition.processes:
                yield partition, process

    @property
    def single_schedule(self) -> bool:
        """True for the original Sect. 3 model (``n(chi) == 1``)."""
        return len(self.schedules) == 1

    def validate(self) -> "ValidationReport":  # noqa: F821 - forward ref
        """Run the full offline verification (eqs. (20)-(23)) and return the
        structured report.  Convenience wrapper over
        :func:`repro.core.validation.validate_system`."""
        from .validation import validate_system

        return validate_system(self)


def single_schedule_system(
    partitions: Sequence[Partition],
    major_time_frame: Ticks,
    requirements: Sequence[PartitionRequirement],
    windows: Sequence[TimeWindow],
    schedule_id: str = "default",
) -> SystemModel:
    """Build the original Sect. 3 single-PST system (eqs. (2), (4)).

    The paper notes (end of Sect. 4.1) that the initially described system
    with one statically defined PST is the special case ``n(chi) = 1`` of the
    mode-based model; this helper constructs exactly that special case.
    """
    schedule = ScheduleTable(
        schedule_id=schedule_id,
        major_time_frame=major_time_frame,
        requirements=tuple(requirements),
        windows=tuple(windows),
    )
    return SystemModel(partitions=tuple(partitions), schedules=(schedule,),
                       initial_schedule=schedule_id)
