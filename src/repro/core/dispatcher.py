"""AIR Partition Dispatcher with mode-based schedules — Algorithm 2 (Sect. 4.3).

Executed after the Partition Scheduler whenever a partition preemption point
is reached.  If the heir partition is the one already active, the elapsed
time is a single tick (line 2).  Otherwise the dispatcher saves the active
partition's execution context, stamps its ``lastTick`` (lines 4-5), computes
the heir's elapsed ticks since it last held the processor (line 6), restores
its context (line 8), and invokes any pending schedule change action for the
heir (line 9) — the paper's chosen point for applying
``ScheduleChangeAction``, so the restart "will only affect its own execution
time window".

The dispatcher also switches the active MMU context (spatial partitioning
follows the processor): this is the run-time half of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..kernel.context import ContextBank
from ..kernel.trace import PartitionDispatched, Trace
from ..spatial.mmu import Mmu
from ..types import ScheduleChangeAction, Ticks
from .scheduler import PartitionScheduler

__all__ = ["DispatchOutcome", "DispatcherStats", "PartitionDispatcher"]

#: Hook applying a ScheduleChangeAction to a partition (runtime-provided).
ChangeActionApplier = Callable[[str, ScheduleChangeAction], None]


@dataclass(frozen=True, slots=True)
class DispatchOutcome:
    """Result of one dispatcher run.

    ``elapsed_ticks`` is Algorithm 2's ``elapsedTicks``: how much simulated
    time the (possibly new) active partition must be told has passed —
    consumed by the PAL's surrogate tick announcement (Fig. 7).
    ``switched`` is True when a context switch occurred.
    """

    active_partition: Optional[str]
    elapsed_ticks: Ticks
    switched: bool


@dataclass
class DispatcherStats:
    """Instrumentation: same-partition vs context-switch dispatches."""

    runs: int = 0
    context_switches: int = 0
    change_actions_applied: int = 0


class PartitionDispatcher:
    """Second half of the PMK's first-level scheduling (Figs. 4-5).

    Parameters
    ----------
    contexts:
        The context bank performing SAVECONTEXT/RESTORECONTEXT.
    scheduler:
        The partition scheduler (source of pending change actions).
    mmu:
        Optional MMU whose active context tracks the active partition.
    apply_change_action:
        Runtime hook that executes a partition's ScheduleChangeAction.
    trace:
        Event sink.
    change_action_policy:
        ``"first_dispatch"`` (the paper's choice: apply when the partition
        is first dispatched after the switch) or ``"mtf_start"`` (the
        alternative reading of ARINC 653 Part 2: apply to all partitions
        at the beginning of the first MTF under the new schedule) —
        the design-decision ablation of DESIGN.md item 2.
    """

    def __init__(self, contexts: ContextBank, scheduler: PartitionScheduler,
                 *, mmu: Optional[Mmu] = None,
                 apply_change_action: Optional[ChangeActionApplier] = None,
                 trace: Optional[Trace] = None,
                 change_action_policy: str = "first_dispatch") -> None:
        if change_action_policy not in ("first_dispatch", "mtf_start"):
            raise ValueError(
                f"unknown change_action_policy {change_action_policy!r}")
        self.contexts = contexts
        self.scheduler = scheduler
        self.mmu = mmu
        self.apply_change_action = apply_change_action
        self._trace = trace
        self.change_action_policy = change_action_policy
        self.active_partition: Optional[str] = None
        self.stats = DispatcherStats()

    def run(self, ticks: Ticks, *,
            running_process: Optional[str] = None) -> DispatchOutcome:
        """One dispatcher execution — Algorithm 2.

        *ticks* is the current global tick; *running_process* is the name
        of the process currently holding the CPU in the active partition
        (saved into its context on a switch).

        Line-by-line correspondence::

            1: if heirPartition == activePartition:
            2:   elapsedTicks <- 1
            3: else
            4:   SAVECONTEXT(activePartition.context)
            5:   activePartition.lastTick <- ticks - 1
            6:   elapsedTicks <- ticks - heirPartition.lastTick
            7:   activePartition <- heirPartition
            8:   RESTORECONTEXT(heirPartition.context)
            9:   PENDINGSCHEDULECHANGEACTION(heirPartition)
            10: end if
        """
        self.stats.runs += 1
        heir = self.scheduler.heir_partition
        if heir == self.active_partition:                            # l. 1
            outcome = DispatchOutcome(active_partition=self.active_partition,
                                      elapsed_ticks=1, switched=False)  # l. 2
            if self.change_action_policy == "mtf_start":
                self._apply_all_pending(ticks)
            return outcome

        previous = self.active_partition
        if previous is not None:
            self.contexts.save(previous, tick=ticks,                 # l. 4-5
                               running_process=running_process)
        if heir is not None:
            context = self.contexts.restore(heir)                    # l. 8
            elapsed = ticks - context.last_tick                      # l. 6
        else:
            self.contexts.release()
            elapsed = 0
        self.active_partition = heir                                 # l. 7
        self.stats.context_switches += 1
        if self.mmu is not None:
            self.mmu.switch_context(heir)
        if self._trace is not None:
            self._trace.record(PartitionDispatched(
                tick=ticks, previous=previous, heir=heir))

        if self.change_action_policy == "mtf_start":
            self._apply_all_pending(ticks)
        elif heir is not None:                                       # l. 9
            action = self.scheduler.take_pending_action(heir)
            if action is not None:
                self._apply(heir, action)

        return DispatchOutcome(active_partition=heir, elapsed_ticks=elapsed,
                               switched=True)

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture the dispatcher's mutable state as pure data."""
        return {"active_partition": self.active_partition,
                "stats": {"runs": self.stats.runs,
                          "context_switches": self.stats.context_switches,
                          "change_actions_applied":
                              self.stats.change_actions_applied}}

    def restore(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture onto this dispatcher."""
        self.active_partition = state["active_partition"]
        self.stats = DispatcherStats(**state["stats"])

    def _apply_all_pending(self, ticks: Ticks) -> None:
        """``mtf_start`` policy: drain every pending action immediately."""
        for partition in list(self.scheduler.pending_change_actions):
            action = self.scheduler.take_pending_action(partition)
            if action is not None:
                self._apply(partition, action)

    def _apply(self, partition: str, action: ScheduleChangeAction) -> None:
        self.stats.change_actions_applied += 1
        if self.apply_change_action is not None:
            self.apply_change_action(partition, action)
