"""The paper's primary contribution: formal model, validation, and the AIR
PMK's partition scheduler/dispatcher (Sects. 2-4)."""

from .model import (
    DispatchEntry,
    Partition,
    PartitionRequirement,
    ProcessModel,
    ScheduleTable,
    SystemModel,
    TimeWindow,
    lcm_of_cycles,
    single_schedule_system,
)
from .validation import (
    Finding,
    Severity,
    ValidationReport,
    validate_schedule,
    validate_system,
)
from .scheduler import CompiledSchedule, PartitionScheduler, SchedulerStats
from .dispatcher import DispatchOutcome, DispatcherStats, PartitionDispatcher
from .runtime import PartitionRuntime
from .pmk import Pmk

__all__ = [
    "DispatchEntry", "Partition", "PartitionRequirement", "ProcessModel",
    "ScheduleTable", "SystemModel", "TimeWindow", "lcm_of_cycles",
    "single_schedule_system", "Finding", "Severity", "ValidationReport",
    "validate_schedule", "validate_system", "CompiledSchedule",
    "PartitionScheduler", "SchedulerStats", "DispatchOutcome",
    "DispatcherStats", "PartitionDispatcher", "PartitionRuntime", "Pmk",
]
