"""Offline verification of integrator-defined system parameters (Sects. 3-4).

The paper's formal model exists "to allow for formal verification of
properties and requirements" and to lay "the ground for schedulability
analysis and automated aids to the definition of system parameters"
(Sect. 1).  This module is that verification tool: it checks a
:class:`~repro.core.model.SystemModel` against the model's conditions and
returns a structured :class:`ValidationReport` listing *every* finding
(errors, warnings and informative notes) instead of stopping at the first,
because an integrator fixing a configuration wants the complete picture.

Conditions checked per schedule ``chi_i``:

* **window ordering / containment** — eq. (21) (also enforced eagerly by the
  model constructors; revalidated here so reports are self-contained);
* **MTF multiplicity** — eq. (22): ``MTF_i = k * lcm(eta_m)`` over the
  partitions in ``Q_i``;
* **aggregate duration** — eq. (8), adapted per-schedule: each partition's
  windows must sum to at least ``d * MTF/eta``;
* **per-cycle duration** — eq. (23): within *every* activation cycle
  ``[k*eta, (k+1)*eta)`` the partition's windows must sum to at least ``d``.
  The paper proves eq. (23) implies eq. (8); we still evaluate both so a
  report can show which (weaker or stronger) condition failed.

Window accounting across cycle boundaries
-----------------------------------------
Eq. (23) indexes windows by their *offset*: a window belongs to the cycle
containing ``O_i,j``.  A window straddling a cycle boundary therefore counts
wholly toward the cycle it starts in.  The validator follows the equation
literally (that is what the paper verifies), but emits a *warning* when a
window crosses a cycle boundary, since the literal sum may then overstate
the time actually available inside the cycle.

System-wide checks:

* every partition referenced by any schedule exists (also eager);
* process-level sanity inside each partition: WCET vs deadline vs period,
  and an advisory utilization bound per partition vs its best-case supply.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..types import Ticks, is_infinite
from .model import (
    Partition,
    PartitionRequirement,
    ScheduleTable,
    SystemModel,
    TimeWindow,
    lcm_of_cycles,
)

__all__ = [
    "Severity",
    "Finding",
    "ValidationReport",
    "validate_schedule",
    "validate_system",
]


class Severity(enum.Enum):
    """Weight of a validation finding."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One validation result.

    Attributes
    ----------
    severity:
        ERROR findings make the configuration unfit for deployment; WARNING
        findings deserve integrator attention; INFO findings are advisory
        metrics (utilization, idle time).
    code:
        Stable machine-readable identifier (e.g. ``"EQ23_VIOLATED"``).
    message:
        Human-readable explanation naming the offending entities.
    schedule:
        Schedule id the finding concerns, if any.
    partition:
        Partition name the finding concerns, if any.
    """

    severity: Severity
    code: str
    message: str
    schedule: Optional[str] = None
    partition: Optional[str] = None


@dataclass
class ValidationReport:
    """Aggregation of findings from one validation run."""

    findings: List[Finding] = field(default_factory=list)

    def add(self, severity: Severity, code: str, message: str, *,
            schedule: Optional[str] = None,
            partition: Optional[str] = None) -> None:
        """Record one finding."""
        self.findings.append(Finding(severity=severity, code=code,
                                     message=message, schedule=schedule,
                                     partition=partition))

    def extend(self, other: "ValidationReport") -> None:
        """Absorb all findings of *other*."""
        self.findings.extend(other.findings)

    @property
    def errors(self) -> Tuple[Finding, ...]:
        """All ERROR findings."""
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Finding, ...]:
        """All WARNING findings."""
        return tuple(f for f in self.findings if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True if no ERROR finding was recorded (warnings allowed)."""
        return not self.errors

    def by_code(self, code: str) -> Tuple[Finding, ...]:
        """All findings with machine code *code*."""
        return tuple(f for f in self.findings if f.code == code)

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.exceptions.ValidationError` if any error exists."""
        from ..exceptions import ValidationError

        if not self.ok:
            lines = [f"[{f.code}] {f.message}" for f in self.errors]
            raise ValidationError(
                "system model failed offline verification:\n" + "\n".join(lines))

    def render(self) -> str:
        """Multi-line human-readable report."""
        if not self.findings:
            return "validation: no findings (model is well-formed)"
        lines = []
        for finding in self.findings:
            scope = ""
            if finding.schedule:
                scope += f" schedule={finding.schedule}"
            if finding.partition:
                scope += f" partition={finding.partition}"
            lines.append(f"{finding.severity.value.upper():7s} "
                         f"{finding.code}{scope}: {finding.message}")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)


# ---------------------------------------------------------------------- #
# schedule-level checks
# ---------------------------------------------------------------------- #


def _check_window_layout(schedule: ScheduleTable,
                         report: ValidationReport) -> None:
    """Re-verify eq. (21) so reports are self-contained."""
    windows = schedule.windows
    for first, second in zip(windows, windows[1:]):
        if first.end > second.offset:
            report.add(Severity.ERROR, "EQ21_OVERLAP",
                       f"windows overlap: {first.partition!r}"
                       f"@[{first.offset},{first.end}) and {second.partition!r}"
                       f"@[{second.offset},{second.end})",
                       schedule=schedule.schedule_id)
    if windows and windows[-1].end > schedule.major_time_frame:
        report.add(Severity.ERROR, "EQ21_MTF_OVERRUN",
                   f"last window ends at {windows[-1].end}, beyond "
                   f"MTF {schedule.major_time_frame}",
                   schedule=schedule.schedule_id)


def _check_mtf_multiplicity(schedule: ScheduleTable,
                            report: ValidationReport) -> None:
    """eq. (22): MTF_i must be a positive multiple of lcm of cycles in Q_i."""
    lcm = lcm_of_cycles(req.cycle for req in schedule.requirements)
    if schedule.major_time_frame % lcm != 0:
        report.add(Severity.ERROR, "EQ22_MTF_NOT_MULTIPLE",
                   f"MTF {schedule.major_time_frame} is not a multiple of "
                   f"lcm of partition cycles ({lcm})",
                   schedule=schedule.schedule_id)


def _windows_by_cycle(schedule: ScheduleTable, partition: str,
                      cycle: Ticks) -> List[List[TimeWindow]]:
    """Group *partition*'s windows by the activation cycle containing their
    offset — the index set of eq. (23)."""
    cycles = schedule.major_time_frame // cycle
    buckets: List[List[TimeWindow]] = [[] for _ in range(max(cycles, 1))]
    for window in schedule.windows_for(partition):
        index = window.offset // cycle
        if index < len(buckets):
            buckets[index].append(window)
    return buckets


def _check_durations(schedule: ScheduleTable, report: ValidationReport) -> None:
    """eqs. (8) and (23): aggregate and per-cycle duration guarantees."""
    for req in schedule.requirements:
        if schedule.major_time_frame % req.cycle != 0:
            report.add(Severity.ERROR, "CYCLE_NOT_DIVIDING_MTF",
                       f"cycle {req.cycle} of partition {req.partition!r} does "
                       f"not divide MTF {schedule.major_time_frame}; eq. (23) "
                       f"cannot be evaluated on whole cycles",
                       schedule=schedule.schedule_id, partition=req.partition)
            continue

        cycles = schedule.major_time_frame // req.cycle
        allocated = schedule.allocated_time(req.partition)
        needed_total = req.duration * cycles

        # eq. (8) (necessary, weaker)
        if allocated < needed_total:
            report.add(Severity.ERROR, "EQ8_TOTAL_DURATION",
                       f"partition {req.partition!r} receives {allocated} ticks "
                       f"per MTF but requires d*MTF/eta = {req.duration}*"
                       f"{cycles} = {needed_total}",
                       schedule=schedule.schedule_id, partition=req.partition)

        # eq. (23) (sufficient for the timing requirement, stronger)
        for k, bucket in enumerate(_windows_by_cycle(schedule, req.partition,
                                                     req.cycle)):
            supplied = sum(w.duration for w in bucket)
            if supplied < req.duration:
                report.add(Severity.ERROR, "EQ23_VIOLATED",
                           f"partition {req.partition!r}, cycle k={k} "
                           f"[{k * req.cycle},{(k + 1) * req.cycle}): windows "
                           f"supply {supplied} < required duration "
                           f"{req.duration}",
                           schedule=schedule.schedule_id,
                           partition=req.partition)
            for window in bucket:
                if window.end > (k + 1) * req.cycle:
                    report.add(Severity.WARNING, "WINDOW_CROSSES_CYCLE",
                               f"window of {req.partition!r}@[{window.offset},"
                               f"{window.end}) crosses the cycle boundary at "
                               f"{(k + 1) * req.cycle}; eq. (23) counts it "
                               f"wholly in cycle k={k}",
                               schedule=schedule.schedule_id,
                               partition=req.partition)


def _check_schedule_metrics(schedule: ScheduleTable,
                            report: ValidationReport) -> None:
    """Advisory metrics: idle time, utilization, zero-duration partitions."""
    idle = schedule.idle_time()
    report.add(Severity.INFO, "SCHEDULE_METRICS",
               f"MTF={schedule.major_time_frame}, windows={len(schedule.windows)}, "
               f"idle={idle} ticks ({idle / schedule.major_time_frame:.1%}), "
               f"utilization={schedule.utilization():.1%}",
               schedule=schedule.schedule_id)
    for req in schedule.requirements:
        if req.duration == 0:
            report.add(Severity.INFO, "NON_REALTIME_PARTITION",
                       f"partition {req.partition!r} has d=0 (no strict time "
                       f"requirement — Sect. 3.1 non-real-time case)",
                       schedule=schedule.schedule_id, partition=req.partition)


def validate_schedule(schedule: ScheduleTable) -> ValidationReport:
    """Check one PST against eqs. (21), (22), (8) and (23).

    Returns a report; use :meth:`ValidationReport.ok` or
    :meth:`ValidationReport.raise_if_invalid` to act on it.
    """
    report = ValidationReport()
    _check_window_layout(schedule, report)
    _check_mtf_multiplicity(schedule, report)
    _check_durations(schedule, report)
    _check_schedule_metrics(schedule, report)
    return report


# ---------------------------------------------------------------------- #
# process-level and system-wide checks
# ---------------------------------------------------------------------- #


def _check_partition_processes(partition: Partition,
                               report: ValidationReport) -> None:
    """Per-process sanity: deadline vs period, WCET presence."""
    for process in partition.processes:
        if (process.periodic and not is_infinite(process.deadline)
                and process.deadline > process.period):
            report.add(Severity.WARNING, "DEADLINE_EXCEEDS_PERIOD",
                       f"process {process.name!r}: deadline {process.deadline} "
                       f"> period {process.period}; multiple jobs may be "
                       f"simultaneously pending",
                       partition=partition.name)
        if is_infinite(process.wcet) and process.has_deadline:
            report.add(Severity.WARNING, "WCET_UNKNOWN",
                       f"process {process.name!r} has a deadline but no WCET; "
                       f"schedulability analysis is impossible for it "
                       f"(the paper adds C to the model for exactly this)",
                       partition=partition.name)


def _check_partition_supply(system: SystemModel, schedule: ScheduleTable,
                            report: ValidationReport) -> None:
    """Advisory: taskset utilization vs fraction of CPU supplied.

    A partition whose processes demand more CPU than its requirement
    supplies (``sum(C/T) > d/eta``) cannot be process-schedulable under
    this PST regardless of the intra-partition policy — a necessary
    condition, flagged as an error.
    """
    for req in schedule.requirements:
        partition = system.partition(req.partition)
        demand = partition.utilization()
        supply = req.utilization()
        if demand > supply:
            if req.duration == 0:
                # Sect. 3.1: d = 0 partitions have no strict time
                # requirements; their processes run best-effort in whatever
                # windows the schedule grants.  Worth flagging, not fatal.
                report.add(Severity.WARNING, "BEST_EFFORT_UNDER_SUPPLIED",
                           f"partition {req.partition!r} declares taskset "
                           f"utilization {demand:.3f} but has no guaranteed "
                           f"duration (d=0) under this schedule; its "
                           f"deadlines (if any) rely on run-time monitoring",
                           schedule=schedule.schedule_id,
                           partition=req.partition)
                continue
            report.add(Severity.ERROR, "UTILIZATION_EXCEEDS_SUPPLY",
                       f"partition {req.partition!r}: taskset utilization "
                       f"{demand:.3f} exceeds supplied fraction d/eta = "
                       f"{supply:.3f}",
                       schedule=schedule.schedule_id, partition=req.partition)


def validate_system(system: SystemModel) -> ValidationReport:
    """Full offline verification of a system model.

    Runs :func:`validate_schedule` on every PST, process-level checks on
    every partition, and the cross-cutting utilization-vs-supply check.
    """
    report = ValidationReport()
    for schedule in system.schedules:
        report.extend(validate_schedule(schedule))
        _check_partition_supply(system, schedule, report)
    for partition in system.partitions:
        _check_partition_processes(partition, report)

    scheduled = {req.partition
                 for schedule in system.schedules
                 for req in schedule.requirements}
    for partition in system.partitions:
        if partition.name not in scheduled:
            report.add(Severity.WARNING, "PARTITION_NEVER_SCHEDULED",
                       f"partition {partition.name!r} appears in no schedule; "
                       f"it will never execute",
                       partition=partition.name)
    return report
