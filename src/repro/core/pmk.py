"""AIR Partition Management Kernel (PMK) — Sect. 2.1.

"The AIR Partition Management Kernel component, transversal to the whole
system, could be seen as a hypervisor, playing nevertheless a major role in
achieving dependability, by ensuring robust TSP."

:class:`Pmk` composes, from a validated
:class:`~repro.config.schema.SystemConfig`:

* **temporal partitioning** — the Partition Scheduler (Algorithm 1) and
  Partition Dispatcher (Algorithm 2), executed in the clock-tick ISR;
* **spatial partitioning** — the automatic memory layout, compiled MMU
  contexts, and the fault-to-Health-Monitor routing (Fig. 3);
* **interpartition communication** — the channel router (local
  memory-to-memory copies and simulated remote links);
* one **containment domain per partition** — POS + PAL + APEX +
  :class:`~repro.core.runtime.PartitionRuntime`;
* the **Health Monitor** with the PMK as recovery-action executor.

It also implements the module-level service surface used by APEX
(:class:`~repro.apex.interface.ModuleControl`: schedule switching per
Sect. 4.2) and exposes :meth:`clock_tick`, the ISR body the simulator binds
to the clock interrupt vector.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..apex.interface import ApexInterface, ModuleControl
from ..apex.types import ScheduleStatus
from ..comm.router import CommRouter
from ..config.schema import SystemConfig
from ..exceptions import SimulationError, SpatialViolationError
from ..fdir.supervisor import FdirSupervisor
from ..fdir.watchdog import WatchdogService
from ..hm.monitor import ActionExecutor, HealthMonitor
from ..kernel.context import ContextBank
from ..kernel.rng import SeededRng
from ..kernel.time import TimeSource
from ..kernel.trace import ClockTamperTrapped, MemoryFault, Trace
from ..pos.base import PartitionOs
from ..pos.generic import GenericPos
from ..pos.pal import PosAdaptationLayer
from ..pos.rtems import RtemsPos
from ..pos.tcb import Tcb
from ..spatial.descriptors import (
    MemoryDescriptor,
    MemorySection,
    ModuleMemoryLayout,
    PartitionMemoryMap,
)
from ..spatial.memory import MemoryBus, PhysicalMemory
from ..spatial.mmu import Mmu
from ..types import (
    AccessKind,
    ErrorCode,
    PartitionMode,
    PrivilegeLevel,
    ScheduleChangeAction,
    StartCondition,
    Ticks,
)
from .dispatcher import PartitionDispatcher
from .runtime import PartitionRuntime
from .scheduler import PartitionScheduler

__all__ = ["Pmk"]

#: Alignment of per-partition memory areas in the automatic layout.
_AREA_ALIGN = 64 * 1024


def _keep_live_generator(tcb, resume_log) -> None:
    """``rebuild_body`` stand-in for :meth:`Pmk.overlay`: keep the TCB's
    live generator instead of replaying the resume log."""


class Pmk(ModuleControl, ActionExecutor):
    """The Partition Management Kernel instance for one module."""

    def __init__(self, config: SystemConfig, *, time: TimeSource,
                 trace: Trace) -> None:
        config.validate().raise_if_invalid()
        self.config = config
        self.time = time
        self.trace = trace
        self.stopped = False
        self.module_restarts = 0
        self._rng = SeededRng(config.seed)
        # One shared clock callable for every component (HM, router, PALs,
        # runtimes): a single bound method instead of a closure per
        # consumer — these sit on the per-tick hot path.
        self._clock = time.read

        # --- spatial partitioning -------------------------------------- #
        self.layout = ModuleMemoryLayout()
        self.mmu = Mmu(fault_handler=self._on_memory_fault)
        area_base = _AREA_ALIGN  # area 0 is PMK-reserved
        for partition in config.model.partitions:
            runtime_config = config.runtime_for(partition.name)
            memory_map = self._build_memory_map(
                partition.name, area_base, runtime_config.memory_size)
            self.layout.add_partition(memory_map)
            self.mmu.add_context(memory_map)
            area_base += self._aligned(runtime_config.memory_size)
        self.memory = PhysicalMemory(area_base)
        self.bus = MemoryBus(self.memory, self.mmu)

        # --- health monitoring ------------------------------------------ #
        self.health_monitor = HealthMonitor(
            config.hm_tables, self, clock=self._clock, trace=trace)

        # --- interpartition communication -------------------------------- #
        self.router = CommRouter(clock=self._clock, trace=trace)
        for channel in config.channels:
            self.router.add_channel(channel)

        # --- temporal partitioning --------------------------------------- #
        self.scheduler = PartitionScheduler(config.model, trace)
        self.contexts = ContextBank()
        self.dispatcher = PartitionDispatcher(
            self.contexts, self.scheduler, mmu=self.mmu,
            apply_change_action=self._apply_change_action, trace=trace,
            change_action_policy=config.change_action_policy)

        # --- per-partition containment domains --------------------------- #
        self.runtimes: Dict[str, PartitionRuntime] = {}
        for partition in config.model.partitions:
            self.runtimes[partition.name] = self._build_partition(partition.name)

        # --- FDIR supervision (escalation, parking, watchdogs) ----------- #
        self.watchdog: Optional[WatchdogService] = None
        self.fdir: Optional[FdirSupervisor] = None
        if config.fdir is not None:
            if config.fdir.watchdogs:
                self.watchdog = WatchdogService(
                    config.fdir.watchdogs,
                    on_expired=self._on_watchdog_expired, trace=trace)
            self.fdir = FdirSupervisor(
                config.fdir, module=self, watchdog=self.watchdog,
                trace=trace)
            self.health_monitor.supervisor = self.fdir

        #: Optional host-time profiler (``Simulator.enable_profiling``).
        self.profiler = None
        self.ticks_executed = 0
        self.idle_ticks = 0
        #: Ticks each partition held the processor (window occupancy).
        self.partition_ticks: Dict[str, int] = {
            name: 0 for name in config.model.partition_names}
        # Per-partition (data, stack) probe regions for memory emulation.
        self._memory_probes: Dict[str, Tuple[MemoryDescriptor,
                                             MemoryDescriptor]] = {}
        if config.memory_emulation:
            for name in config.model.partition_names:
                memory_map = self.layout.map_of(name)
                data = memory_map.section(MemorySection.DATA)[0]
                stack = memory_map.section(MemorySection.STACK)[0]
                self._memory_probes[name] = (data, stack)

    # -------------------------------------------------------------- #
    # construction helpers
    # -------------------------------------------------------------- #

    @staticmethod
    def _aligned(size: int) -> int:
        return ((size + _AREA_ALIGN - 1) // _AREA_ALIGN) * _AREA_ALIGN

    def _build_memory_map(self, partition: str, base: int,
                          size: int) -> PartitionMemoryMap:
        """Automatic spatial layout: code (R+X), data (RW), stack (RW) at
        application level, plus a POS-level control block area (Fig. 3's
        per-level descriptors)."""
        code_size = max(size // 4, 4096)
        data_size = max(size // 2, 4096)
        stack_size = max(size // 8, 4096)
        pos_size = max(size - code_size - data_size - stack_size, 4096)
        cursor = base
        descriptors = []
        for section, section_size, level in (
                (MemorySection.CODE, code_size, PrivilegeLevel.APPLICATION),
                (MemorySection.DATA, data_size, PrivilegeLevel.APPLICATION),
                (MemorySection.STACK, stack_size, PrivilegeLevel.APPLICATION),
                (MemorySection.DATA, pos_size, PrivilegeLevel.POS)):
            descriptors.append(MemoryDescriptor(
                partition=partition, level=level, section=section,
                base=cursor, size=section_size))
            cursor += section_size
        return PartitionMemoryMap(partition, descriptors)

    def _build_partition(self, name: str) -> PartitionRuntime:
        partition = self.config.model.partition(name)
        runtime_config = self.config.runtime_for(name)
        pos: PartitionOs
        if runtime_config.pos_kind == "generic":
            generic = GenericPos(partition, quantum=runtime_config.quantum)
            generic.attach_guest_clock(self.time.guest_view(name))
            pos = generic
        else:
            pos = RtemsPos(partition)
        pal = PosAdaptationLayer(
            pos, clock=self._clock, trace=self.trace,
            store_kind=self.config.store_kind_for(name),
            on_violation=lambda violation, p=name: self.health_monitor.report(
                ErrorCode.DEADLINE_MISSED, partition=p,
                process=violation.process,
                detail=f"deadline {violation.deadline_time} missed, detected "
                       f"at {violation.detected_at}"),
            on_fault=lambda tcb, exc, p=name: self._on_process_fault(
                p, tcb, exc))
        runtime = PartitionRuntime(pos=pos, pal=pal, config=runtime_config,
                                   clock=self._clock,
                                   trace=self.trace)
        apex = ApexInterface(
            pal=pal, partition_control=runtime, module_control=self,
            health_monitor=self.health_monitor, router=self.router,
            trace=self.trace, system_partition=partition.system_partition,
            rng=self._rng.fork(name))
        runtime.attach_apex(apex)
        self.contexts.register(name)
        return runtime

    # -------------------------------------------------------------- #
    # accessors
    # -------------------------------------------------------------- #

    def runtime(self, partition: str) -> PartitionRuntime:
        """The runtime of *partition*."""
        try:
            return self.runtimes[partition]
        except KeyError:
            raise SimulationError(
                f"no runtime for partition {partition!r}") from None

    def apex(self, partition: str) -> ApexInterface:
        """The APEX instance of *partition*."""
        apex = self.runtime(partition).apex
        assert apex is not None
        return apex

    @property
    def active_partition(self) -> Optional[str]:
        """Partition currently holding the processor."""
        return self.dispatcher.active_partition

    def occupancy(self) -> Dict[str, float]:
        """Fraction of executed ticks each partition held the processor.

        The run-time counterpart of the PST's allocation — temporal
        isolation tests assert these fractions match the table exactly.
        """
        total = max(self.ticks_executed, 1)
        return {name: ticks / total
                for name, ticks in self.partition_ticks.items()}

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture the full deterministic PMK state as pure data.

        Every sub-component contributes its own :meth:`snapshot`; the
        result contains no live objects (generators are encoded as resume
        logs, wait resources and delivery closures as symbolic
        references), so it pickles and survives process boundaries.
        """
        partitions = {}
        for name, runtime in self.runtimes.items():
            apex = runtime.apex
            assert apex is not None
            partitions[name] = {
                "runtime": runtime.snapshot(),
                "pal": runtime.pal.snapshot(),
                "pos": runtime.pos.snapshot(apex.resource_ref),
                "apex": apex.snapshot(),
            }
        return {
            "stopped": self.stopped,
            "module_restarts": self.module_restarts,
            "rng": self._rng.state_dict(),
            "ticks_executed": self.ticks_executed,
            "idle_ticks": self.idle_ticks,
            "partition_ticks": dict(self.partition_ticks),
            "scheduler": self.scheduler.snapshot(),
            "contexts": self.contexts.snapshot(),
            "dispatcher": self.dispatcher.snapshot(),
            "mmu": self.mmu.snapshot(),
            "router": self.router.snapshot(),
            "health_monitor": self.health_monitor.snapshot(),
            "fdir": self.fdir.snapshot() if self.fdir is not None else None,
            "partitions": partitions,
        }

    def restore(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture onto this freshly built PMK.

        Restore protocol (order matters):

        1. replay each previously-initialized partition's initialization
           sequence — rebuilds *structural* wiring (registered bodies,
           error handlers, resources, ports, router handlers) exactly as
           the original run did;
        2. per partition, rebuild process generators by replaying their
           resume logs, then overlay POS/TCB, runtime, PAL and APEX state
           (the overlays win over any state side effects of steps 1-2);
        3. overlay module-level components wholesale.

        The caller (:class:`~repro.kernel.snapshot.SimulatorSnapshot`)
        overlays the trace and time source afterwards, erasing the trace
        events steps 1-2 emitted.
        """
        self.stopped = state["stopped"]
        self.module_restarts = state["module_restarts"]
        self._rng.load_state_dict(state["rng"])
        self.ticks_executed = state["ticks_executed"]
        self.idle_ticks = state["idle_ticks"]
        self.partition_ticks = dict(state["partition_ticks"])
        for name, partition_state in state["partitions"].items():
            if partition_state["runtime"]["init_count"] > 0:
                self.runtime(name).replay_initialization()
        for name, partition_state in state["partitions"].items():
            runtime = self.runtime(name)
            apex = runtime.apex
            assert apex is not None
            runtime.pos.restore(partition_state["pos"],
                                resolve_resource=apex.resolve_resource,
                                rebuild_body=apex.rebuild_body)
            runtime.restore(partition_state["runtime"])
            runtime.pal.restore(partition_state["pal"])
            apex.restore(partition_state["apex"])
        self.scheduler.restore(state["scheduler"])
        self.contexts.restore_state(state["contexts"])
        self.dispatcher.restore(state["dispatcher"])
        self.mmu.restore(state["mmu"])
        self.router.restore(state["router"])
        self.health_monitor.restore(state["health_monitor"])
        if state["fdir"] is not None and self.fdir is not None:
            self.fdir.restore(state["fdir"])

    def overlay(self, state: dict, *, rebuild_bodies: bool = False) -> None:
        """Overlay a :meth:`snapshot`-shaped *state* onto this *live* PMK.

        The cycle cache's resynchronization path (DESIGN decision 13):
        unlike :meth:`restore` this never replays initialization sequences
        (the PMK is mid-run, structural wiring is already live) and, by
        default, keeps the partitions' live process generators instead of
        rebuilding them from resume logs — the caller asserts the
        generators already correspond to *state* (the cache verified every
        generator yield it replayed).  ``rebuild_bodies=True`` is the
        rollback form: generators are discarded and rebuilt by resume-log
        replay exactly as :meth:`restore` would.
        """
        self.stopped = state["stopped"]
        self.module_restarts = state["module_restarts"]
        self._rng.load_state_dict(state["rng"])
        self.ticks_executed = state["ticks_executed"]
        self.idle_ticks = state["idle_ticks"]
        self.partition_ticks = dict(state["partition_ticks"])
        for name, partition_state in state["partitions"].items():
            runtime = self.runtime(name)
            apex = runtime.apex
            assert apex is not None
            rebuild_body = (apex.rebuild_body if rebuild_bodies
                            else _keep_live_generator)
            runtime.pos.restore(partition_state["pos"],
                                resolve_resource=apex.resolve_resource,
                                rebuild_body=rebuild_body)
            runtime.restore(partition_state["runtime"])
            runtime.pal.restore(partition_state["pal"])
            apex.restore(partition_state["apex"])
        self.scheduler.restore(state["scheduler"])
        self.contexts.restore_state(state["contexts"])
        self.dispatcher.restore(state["dispatcher"])
        self.mmu.restore(state["mmu"])
        self.router.restore(state["router"])
        self.health_monitor.restore(state["health_monitor"])
        if state["fdir"] is not None and self.fdir is not None:
            self.fdir.restore(state["fdir"])

    # -------------------------------------------------------------- #
    # the clock-tick ISR body
    # -------------------------------------------------------------- #

    def clock_tick(self) -> None:
        """One system clock tick (installed on the clock interrupt vector).

        Sequence per tick (Figs. 2, 4, 5, 7):

        1. AIR Partition Scheduler (Algorithm 1);
        2. at preemption points, AIR Partition Dispatcher (Algorithm 2) —
           yielding ``elapsedTicks``; otherwise ``elapsedTicks = 1``;
        3. the active partition's PAL surrogate tick announcement
           (Fig. 7): native POS timer bookkeeping, then Algorithm 3
           deadline verification;
        4. one tick of process execution in the active partition
           (the second scheduling level, eq. (14));
        5. pump of in-flight remote interpartition messages.
        """
        if self.stopped:
            return
        if self.profiler is not None:
            self._profiled_tick()
            return
        now = self.time.now
        self.ticks_executed += 1
        if self.fdir is not None:
            self.fdir.poll(now)
        elapsed: Ticks = 1
        if self.scheduler.tick(now):
            active = self.dispatcher.active_partition
            running = (self.runtimes[active].pos.running
                       if active is not None else None)
            outcome = self.dispatcher.run(
                now, running_process=running.name if running else None)
            elapsed = outcome.elapsed_ticks
        active = self.dispatcher.active_partition
        if active is None:
            self.idle_ticks += 1
        else:
            self.partition_ticks[active] += 1
            runtime = self.runtimes[active]
            runtime.pal.announce_ticks(elapsed)
            if not self.stopped:
                executed = runtime.execute_tick(now)
                if executed is not None and self._memory_probes:
                    self._emulate_memory_traffic(active, now)
        self.router.pump(now)

    def clock_tick_fast(self, now: Ticks) -> None:
        """:meth:`clock_tick` mirror for the fast execution backend.

        Behaviourally identical to the reference ISR (asserted by the
        backend equivalence matrices), with the profile-guided shortcuts:

        * *now* is passed in by the driving loop instead of re-read from
          the time source;
        * Algorithm 1 runs only at preemption points — the memoized
          scheduler horizon already knows whether this tick matches a
          table entry, so off-match ticks settle the statistics without
          re-deriving the table offset;
        * partition execution goes through the POS dispatch memo
          (:meth:`~repro.pos.base.PartitionOs.execute_tick_fast`);
        * the router pump is skipped while the memoized delivery horizon
          lies in the future (the pump would be a no-op).

        Kept as a mirror rather than inline conditionals in
        :meth:`clock_tick` so the reference ISR stays untouched.
        """
        if self.stopped:
            return
        if self.profiler is not None:
            self._profiled_tick()
            return
        self.ticks_executed += 1
        if self.fdir is not None:
            self.fdir.poll(now)
        elapsed: Ticks = 1
        scheduler = self.scheduler
        if scheduler.next_preemption_tick(now) > now:
            # Off-match tick: Algorithm 1 would take its fast path and
            # return False — settle its statistics directly.
            stats = scheduler.stats
            stats.ticks += 1
            stats.fast_path += 1
        elif scheduler.tick(now):
            active = self.dispatcher.active_partition
            running = (self.runtimes[active].pos.running
                       if active is not None else None)
            outcome = self.dispatcher.run(
                now, running_process=running.name if running else None)
            elapsed = outcome.elapsed_ticks
        active = self.dispatcher.active_partition
        if active is None:
            self.idle_ticks += 1
        else:
            self.partition_ticks[active] += 1
            runtime = self.runtimes[active]
            # Inlined pal.announce_ticks_fast: native POS announcement,
            # then the Algorithm 3 verification (whose check/comparison
            # counters are deterministic state — it must run on every
            # stepped announcement to stay bit-identical).
            pal = runtime.pal
            pal.pos.announce_ticks(now, elapsed)
            pal.monitor.verify(now)
            if not self.stopped:
                executed = runtime.execute_tick_fast(now)
                if executed is not None and self._memory_probes:
                    self._emulate_memory_traffic(active, now)
        router = self.router
        delivery = router.next_delivery_tick()
        if delivery is not None and delivery <= now:
            router.pump(now)

    def _profiled_tick(self) -> None:
        """`clock_tick` with ``perf_counter`` probes around each subsystem.

        Behaviourally identical to the unprofiled body (asserted by the
        profiling equivalence test); kept as a mirror rather than inline
        conditionals so the unprofiled hot path stays probe-free.
        """
        from time import perf_counter

        profiler = self.profiler
        now = self.time.now
        self.ticks_executed += 1
        if self.fdir is not None:
            t0 = perf_counter()
            self.fdir.poll(now)
            profiler.record("fdir", perf_counter() - t0)
        elapsed: Ticks = 1
        t0 = perf_counter()
        preempt = self.scheduler.tick(now)
        profiler.record("scheduler", perf_counter() - t0)
        if preempt:
            active = self.dispatcher.active_partition
            running = (self.runtimes[active].pos.running
                       if active is not None else None)
            t0 = perf_counter()
            outcome = self.dispatcher.run(
                now, running_process=running.name if running else None)
            profiler.record("dispatcher", perf_counter() - t0)
            elapsed = outcome.elapsed_ticks
        active = self.dispatcher.active_partition
        if active is None:
            self.idle_ticks += 1
        else:
            self.partition_ticks[active] += 1
            runtime = self.runtimes[active]
            t0 = perf_counter()
            runtime.pal.announce_ticks(elapsed)
            profiler.record("pal", perf_counter() - t0)
            if not self.stopped:
                t0 = perf_counter()
                executed = runtime.execute_tick(now)
                profiler.record("runtime", perf_counter() - t0)
                if executed is not None and self._memory_probes:
                    t0 = perf_counter()
                    self._emulate_memory_traffic(active, now)
                    profiler.record("memory", perf_counter() - t0)
        t0 = perf_counter()
        self.router.pump(now)
        profiler.record("router", perf_counter() - t0)

    # -------------------------------------------------------------- #
    # event-driven execution core
    # -------------------------------------------------------------- #

    def next_event_tick(self, now: Ticks) -> Ticks:
        """First tick ≥ *now* that must execute through the full clock ISR.

        The module-wide event horizon: the minimum of every layer's
        ``next_event_tick`` —

        * the Partition Scheduler's next preemption point (Algorithm 1's
          next table-entry match; also covers pending schedule switches,
          which only take effect at MTF boundaries);
        * the router's next in-flight remote delivery;
        * the active partition's horizon (POS timers, policy preemption,
          Algorithm 3 deadline expiry, remaining ``Compute`` budget,
          pending restarts/initialization).

        Every tick strictly before the returned one is provably uniform:
        its whole ISR reduces to counter updates and (at most) one
        ``Compute`` decrement, which :meth:`execute_span` applies as a
        batch.  Returning *now* means the current tick must be stepped.
        """
        if self.stopped:
            return now
        # The active partition most often pins the horizon to *now* (an
        # exhausted compute budget, a dispatchable ready process): ask it
        # first and skip the scheduler/router horizons when it does.
        partition_event = None
        active = self.dispatcher.active_partition
        if active is not None:
            partition_event = self.runtimes[active].next_event_tick(now)
            if partition_event is not None and partition_event <= now:
                return now
        event = self.scheduler.next_preemption_tick(now)
        delivery = self.router.next_delivery_tick()
        if delivery is not None and delivery < event:
            event = delivery
        if partition_event is not None and partition_event < event:
            event = partition_event
        if self.fdir is not None:
            fdir_event = self.fdir.next_event_tick(now)
            if fdir_event is not None and fdir_event < event:
                event = fdir_event
        return event

    def execute_span(self, now: Ticks, ticks: Ticks) -> None:
        """Batch-execute *ticks* uniform clock ticks starting at *now*.

        The caller guarantees ``now + ticks <= next_event_tick(now)``.
        All per-tick effects of :meth:`clock_tick` over the span are
        applied at once: scheduler fast-path accounting, occupancy
        counters, the active partition's announcement bookkeeping and the
        running process's ``Compute`` budget.  Memory-emulation probes are
        inherently per-tick (addresses walk with the clock), so they are
        batch-sampled in a tight loop — still far cheaper than full ISRs.
        """
        if self.profiler is not None:
            from time import perf_counter
            t0 = perf_counter()
            self._execute_span(now, ticks)
            self.profiler.record("execute_span", perf_counter() - t0)
            return
        self._execute_span(now, ticks)

    def _execute_span(self, now: Ticks, ticks: Ticks) -> None:
        self.ticks_executed += ticks
        self.scheduler.batch_account(ticks)
        active = self.dispatcher.active_partition
        if active is None:
            self.idle_ticks += ticks
            return
        self.partition_ticks[active] += ticks
        executed = self.runtimes[active].execute_span(ticks)
        if executed is not None and self._memory_probes:
            for tick in range(now, now + ticks):
                self._emulate_memory_traffic(active, tick)

    def _emulate_memory_traffic(self, partition: str, now: Ticks) -> None:
        """One data read + one stack write through the MMU (Fig. 3's
        protection path exercised on every executed tick).

        Addresses walk the partition's own regions, so a fault here would
        indicate a broken layout or MMU — exactly what the emulation is
        meant to surface.
        """
        data, stack = self._memory_probes[partition]
        self.bus.read(data.base + (now % max(data.size - 4, 1)), 4,
                      level=PrivilegeLevel.APPLICATION, partition=partition)
        self.bus.write(stack.base + (now % max(stack.size - 4, 1)),
                       b"\x00\x00\x00\x00",
                       level=PrivilegeLevel.APPLICATION, partition=partition)

    # -------------------------------------------------------------- #
    # ModuleControl (APEX mode-based schedule services — Sect. 4.2)
    # -------------------------------------------------------------- #

    def set_module_schedule(self, schedule_id: str, *,
                            requested_by: str) -> None:
        """Store the next-schedule identifier (effective at MTF end)."""
        self.scheduler.request_switch(schedule_id, now=self.time.now,
                                      requested_by=requested_by)

    def schedule_status(self) -> ScheduleStatus:
        """Current schedule status (ARINC 653 Part 2 fields)."""
        return ScheduleStatus(
            last_switch_tick=self.scheduler.last_schedule_switch,
            current_schedule=self.scheduler.current_schedule,
            next_schedule=self.scheduler.next_schedule)

    def kick_watchdog(self, partition: str) -> bool:
        """Record a heartbeat for *partition* (APEX KICK_WATCHDOG).

        Returns False when no watchdog service is configured, or none
        watches this partition.
        """
        if self.watchdog is None:
            return False
        return self.watchdog.kick(partition, self.time.now)

    # -------------------------------------------------------------- #
    # ActionExecutor (Health Monitor recovery actions — Sect. 5)
    # -------------------------------------------------------------- #

    def stop_process(self, partition: str, process: str) -> None:
        """Stop the faulty process."""
        self.apex(partition).stop(process)

    def restart_process(self, partition: str, process: str) -> None:
        """Stop and reinitialize the process from its entry address."""
        apex = self.apex(partition)
        apex.stop(process)
        apex.start(process)

    def restart_partition(self, partition: str) -> None:
        """Warm-restart the partition (a Health Monitor recovery action)."""
        if self.watchdog is not None:
            # A deliberately restarted partition is not "hung": its stale
            # heartbeat deadline is dropped; the restarted application
            # re-arms the watchdog with its first kick.
            self.watchdog.disarm(partition)
        self.runtime(partition).request_restart(
            PartitionMode.WARM_START,
            condition=StartCondition.HM_PARTITION_RESTART)

    def stop_partition(self, partition: str) -> None:
        """Shut the partition down (idle)."""
        if self.watchdog is not None:
            self.watchdog.disarm(partition)
        self.runtime(partition).shutdown()

    def module_stop(self) -> None:
        """System-level halt (Sect. 2.4)."""
        self.stopped = True

    def module_restart(self) -> None:
        """System-level reinitialization: every partition cold-starts."""
        self.module_restarts += 1
        for runtime in self.runtimes.values():
            runtime.request_restart(
                PartitionMode.COLD_START,
                condition=StartCondition.HM_MODULE_RESTART)

    # -------------------------------------------------------------- #
    # fault routing
    # -------------------------------------------------------------- #

    def _apply_change_action(self, partition: str,
                             action: ScheduleChangeAction) -> None:
        from ..kernel.trace import ScheduleChangeActionApplied

        self.trace.record(ScheduleChangeActionApplied(
            tick=self.time.now, partition=partition, action=action.value,
            schedule=self.scheduler.current_schedule))
        self.runtime(partition).apply_change_action(action)

    def _on_memory_fault(self, partition: str, address: int,
                         access: AccessKind, detail: str) -> None:
        self.trace.record(MemoryFault(
            tick=self.time.now, partition=partition, address=address,
            access=access.value, detail=detail))
        if partition in self.runtimes:
            self.health_monitor.report(
                ErrorCode.MEMORY_VIOLATION, partition=partition,
                detail=f"{access.value}@{address:#x}: {detail}")

    def _on_watchdog_expired(self, partition: str, last_kick: Ticks,
                             now: Ticks) -> None:
        self.health_monitor.report(
            ErrorCode.WATCHDOG_EXPIRED, partition=partition,
            detail=f"no heartbeat since tick {last_kick}")

    def _on_process_fault(self, partition: str, tcb: Tcb,
                          exc: BaseException) -> None:
        if isinstance(exc, SpatialViolationError):
            # Already routed by the MMU fault handler.
            return
        from ..exceptions import ClockTamperingError

        if isinstance(exc, ClockTamperingError):
            self.trace.record(ClockTamperTrapped(
                tick=self.time.now, partition=partition,
                operation=exc.operation))
            self.health_monitor.report(
                ErrorCode.CLOCK_TAMPERING, partition=partition,
                process=tcb.name, detail=exc.operation)
            return
        self.health_monitor.report(
            ErrorCode.APPLICATION_ERROR, partition=partition,
            process=tcb.name, detail=repr(exc))
