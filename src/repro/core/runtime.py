"""Per-partition runtime: operating mode, initialization, restart.

A :class:`PartitionRuntime` is the containment domain of Sect. 2: "a
(system) application, and the given APEX interface, POS and AIR PAL
instances compose the containment domain of each partition".  It tracks the
partition's operating mode ``M_m(t)`` (eq. (3)), drives initialization
(cold/warm start → NORMAL), executes window ticks, and implements the
restart semantics used by both Health Monitoring recovery actions (Sect. 5)
and mode-based ScheduleChangeActions (Sect. 4).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..apex.interface import ApexInterface, PartitionControl
from ..config.schema import PartitionRuntimeConfig
from ..exceptions import SimulationError
from ..kernel.trace import PartitionModeChanged, Trace
from ..pos.base import PartitionOs
from ..pos.pal import PosAdaptationLayer
from ..types import PartitionMode, ScheduleChangeAction, StartCondition, Ticks

__all__ = ["PartitionRuntime"]


class PartitionRuntime(PartitionControl):
    """Mode and lifecycle management for one partition."""

    def __init__(self, *, pos: PartitionOs, pal: PosAdaptationLayer,
                 config: PartitionRuntimeConfig,
                 clock: Callable[[], Ticks],
                 trace: Optional[Trace] = None) -> None:
        self.pos = pos
        self.pal = pal
        self.config = config
        self._clock = clock
        self._trace = trace
        self._mode = pos.partition.initial_mode
        self._start_condition = StartCondition.NORMAL_START
        self._initialized = False
        self._pending_restart: Optional[PartitionMode] = None
        self.apex: Optional[ApexInterface] = None
        self.init_count = 0
        self.restart_count = 0

    @property
    def name(self) -> str:
        """Partition name."""
        return self.pos.name

    # -------------------------------------------------------------- #
    # PartitionControl (used by APEX SET_PARTITION_MODE)
    # -------------------------------------------------------------- #

    @property
    def mode(self) -> PartitionMode:
        """``M_m(t)`` — eq. (3)."""
        return self._mode

    @property
    def start_condition(self) -> StartCondition:
        """Why the partition last entered a start mode (ARINC 653 status)."""
        return self._start_condition

    def enter_normal(self) -> None:
        """End of initialization: the process scheduler becomes active."""
        self._set_mode(PartitionMode.NORMAL)
        self._initialized = True

    def shutdown(self) -> None:
        """IDLE: shut down, executing no processes (eq. (3))."""
        self._stop_all_processes(reason="partition shutdown")
        self._set_mode(PartitionMode.IDLE)
        self._initialized = False

    def request_restart(self, mode: PartitionMode, *,
                        condition: StartCondition =
                        StartCondition.PARTITION_RESTART) -> None:
        """Queue a restart into COLD_START or WARM_START.

        Effective before the partition's next executed tick — a restart
        requested from inside one of its own processes tears the partition
        down immediately (no further process runs) and re-initializes on
        the same or next window tick.  *condition* records who ordered it
        (self/HM/module) for GET_PARTITION_STATUS.
        """
        if not mode.is_starting:
            raise SimulationError(
                f"restart mode must be coldStart/warmStart, got {mode.value}")
        self._pending_restart = mode
        self._start_condition = condition
        self._stop_all_processes(reason=f"restart into {mode.value}")
        self._set_mode(mode)

    # -------------------------------------------------------------- #
    # lifecycle driven by the PMK
    # -------------------------------------------------------------- #

    def attach_apex(self, apex: ApexInterface) -> None:
        """Late wiring of the APEX instance (PMK construction order)."""
        self.apex = apex

    def apply_change_action(self, action: ScheduleChangeAction) -> None:
        """Perform a mode-based ScheduleChangeAction (Sect. 4).

        Invoked by the Partition Dispatcher at the partition's first
        dispatch after a schedule switch (Algorithm 2, line 9).  Only
        partitions in NORMAL mode are restarted (Sect. 4.2).
        """
        if action is ScheduleChangeAction.IGNORE:
            return
        if self._mode is not PartitionMode.NORMAL:
            return
        target = (PartitionMode.COLD_START
                  if action is ScheduleChangeAction.COLD_START
                  else PartitionMode.WARM_START)
        self.restart_count += 1
        self.request_restart(target)

    def execute_tick(self, now: Ticks) -> Optional[str]:
        """Run one tick of the partition's execution window.

        Initialization (when in a start mode) happens here, consuming the
        tick — a real partition's init code also runs inside its windows.
        Returns the name of the process that consumed the tick, or None.
        """
        if self._pending_restart is not None:
            self._pending_restart = None
            self._initialized = False
        if self._mode.is_starting and not self._initialized:
            self._initialize()
            return None  # the initialization consumed this tick
        if self._mode is not PartitionMode.NORMAL:
            return None  # idle / still starting: no process execution
        return self.pos.execute_tick(now)

    def execute_tick_fast(self, now: Ticks) -> Optional[str]:
        """:meth:`execute_tick` through the POS dispatch memo.

        NORMAL mode implies no pending restart (a restart request moves
        the mode to coldStart/warmStart immediately), so the restart and
        initialization ladder only matters off the NORMAL path — those
        rare ticks are delegated to the reference method wholesale.
        """
        if self._mode is PartitionMode.NORMAL:
            return self.pos.execute_tick_fast(now)
        return self.execute_tick(now)

    # -------------------------------------------------------------- #
    # event-driven execution support
    # -------------------------------------------------------------- #

    def next_event_tick(self, now: Ticks) -> Optional[Ticks]:
        """First tick ≥ *now* whose execution this partition cannot batch.

        Returns *now* itself when the current tick must run through the
        full per-tick path: a pending restart, an initialization tick, a
        running process whose ``Compute`` budget is exhausted (its body
        will advance), or a dispatchable ready process.  Otherwise the
        bound is the earliest of the PAL horizon (timers, policy
        preemption, deadline expiry) and the running process's remaining
        compute budget; None means this partition imposes no bound.
        """
        mode = self._mode
        if mode is PartitionMode.NORMAL:
            # NORMAL implies no pending restart (a restart request moves
            # the mode to coldStart/warmStart immediately).  Resolve the
            # "this very tick is interesting" cases before paying for the
            # PAL horizon — exhausted compute budgets dominate the stepped
            # ticks on packed schedules.
            budget_end = None
            running = self.pos.running
            if running is not None:
                if running.compute_remaining <= 0:
                    return now
                budget_end = now + running.compute_remaining
            elif self.pos.has_schedulable():
                return now
            event = self.pal.next_event_tick(now)
            if budget_end is not None and (event is None or budget_end < event):
                return budget_end
            return event
        if self._pending_restart is not None:
            return now
        if mode.is_starting and not self._initialized:
            return now
        return self.pal.next_event_tick(now)

    def execute_span(self, ticks: Ticks) -> Optional[str]:
        """Batch-execute *ticks* window ticks of a proven-uniform span.

        The caller guarantees the span ends at or before
        :meth:`next_event_tick`, so the per-tick sequence (surrogate
        announcement, then process execution) reduces to batch
        bookkeeping.  The PAL's :meth:`~repro.pos.pal.PosAdaptationLayer.
        announce_span` is inlined here (POS elapsed-time bookkeeping plus
        the Algorithm 3 batch accounting) — this runs on every batched
        span of the event core.  Returns the process charged, or None.
        """
        pos = self.pos
        pos.announce_span(ticks)
        self.pal.monitor.batch_account(ticks)
        if self._mode is not PartitionMode.NORMAL:
            return None
        return pos.execute_span(ticks)

    # -------------------------------------------------------------- #
    # snapshot / restore (simulator checkpointing)
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Capture mode/lifecycle state as pure data.

        ``init_count`` doubles as the restore-side signal for whether the
        structural initialization replay must run (see
        :mod:`repro.kernel.snapshot`).
        """
        return {"mode": self._mode,
                "start_condition": self._start_condition,
                "initialized": self._initialized,
                "pending_restart": self._pending_restart,
                "init_count": self.init_count,
                "restart_count": self.restart_count}

    def restore(self, state: dict) -> None:
        """Overlay a :meth:`snapshot` capture (no trace events emitted)."""
        self._mode = state["mode"]
        self._start_condition = state["start_condition"]
        self._initialized = state["initialized"]
        self._pending_restart = state["pending_restart"]
        self.init_count = state["init_count"]
        self.restart_count = state["restart_count"]

    def replay_initialization(self) -> None:
        """Re-run the structural half of initialization during restore.

        Rebuilds everything :meth:`_initialize` wires up — bodies, error
        handler, ports, resources, started processes — on a freshly
        constructed simulator.  The *state* it sets as a side effect
        (process fields, partition mode, trace events) is overwritten by
        the component overlays applied afterwards; the APEX ``create_*``
        services are idempotent (NO_ACTION on duplicates), so this is safe
        even if initialization partially completed before the checkpoint.
        """
        self._initialize()
        self.init_count -= 1  # the overlaid count is authoritative

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #

    def _initialize(self) -> None:
        """Run the partition's initialization sequence.

        Bodies and the error handler are always wired first.  With an
        ``init_hook`` configured, the hook then does the rest (create
        ports/resources, START processes, SET_PARTITION_MODE(NORMAL));
        otherwise the default sequence STARTs the auto-start processes and
        enters NORMAL mode.
        """
        if self.apex is None:
            raise SimulationError(
                f"partition {self.name!r}: APEX not attached before init")
        self.init_count += 1
        self._initialized = True
        if self.config.error_handler is not None:
            self.apex.create_error_handler(self.config.error_handler)
        for process, factory in self.config.bodies.items():
            self.apex.register_body(process, factory)
        if self.config.init_hook is not None:
            self.config.init_hook(self.apex)
            return
        to_start = (self.config.auto_start
                    if self.config.auto_start is not None
                    else tuple(self.config.bodies))
        for process in to_start:
            result = self.apex.start(process)
            if not result.is_ok:
                raise SimulationError(
                    f"partition {self.name!r}: auto-start of {process!r} "
                    f"failed with {result.code.value}")
        self.apex.set_partition_mode(PartitionMode.NORMAL)

    def _stop_all_processes(self, *, reason: str) -> None:
        for tcb in self.pos.tcbs():
            self.pal.unregister_deadline(tcb.name)
            if tcb.state is not tcb.state.DORMANT:
                self.pos.stop_process(tcb, reason=reason)
            else:
                tcb.reset_runtime()

    def _set_mode(self, mode: PartitionMode) -> None:
        if mode is self._mode:
            return
        previous = self._mode
        self._mode = mode
        if self._trace is not None:
            self._trace.record(PartitionModeChanged(
                tick=self._clock(), partition=self.name,
                previous_mode=previous.value, new_mode=mode.value))
