#!/usr/bin/env python3
"""Mission phases with mode-based partition schedules (Sect. 4).

Models the paper's motivating use case: "adaptation of partition scheduling
to different modes/phases (initialization, operation, etc.)".  A small
spacecraft flies through three phases, each with its own PST:

* **launch** — AOCS dominates (attitude acquisition), payload gets nothing;
* **science** — payload gets the bulk of the frame; AOCS ticks over;
* **safe mode** — triggered by an FDIR-style decision: AOCS and TTC only,
  payload partition absent from the schedule entirely (Sect. 4.1's
  "not all partitions will be present in every schedule"), with a
  WARM_START ScheduleChangeAction restarting the AOCS partition.

Run:  python examples/mode_based_schedules.py
"""

from repro import Call, Compute, Simulator, SystemBuilder
from repro.kernel.trace import (
    ScheduleChangeActionApplied,
    ScheduleSwitched,
)
from repro.types import ScheduleChangeAction


def worker(work):
    def body(ctx):
        while True:
            yield Compute(work)
            yield Call(ctx.apex.periodic_wait)
    return body


def payload_pipeline(ctx):
    frames = 0
    while True:
        yield Compute(120)
        frames += 1
        ctx.log(f"science frame {frames} processed")
        yield Call(ctx.apex.periodic_wait)


def build():
    builder = SystemBuilder()

    aocs = builder.partition("AOCS").system_partition()
    aocs.process("attitude", period=500, deadline=500, priority=1, wcet=60)
    aocs.body("attitude", worker(60))

    ttc = builder.partition("TTC")
    ttc.process("comms", period=1000, deadline=1000, priority=1, wcet=50)
    ttc.body("comms", worker(50))

    payload = builder.partition("PAYLOAD")
    payload.process("science", period=1000, deadline=1000, priority=1,
                    wcet=120)
    payload.body("science", payload_pipeline)

    # launch: AOCS-heavy; payload present but with a token best-effort slot.
    builder.schedule("launch", mtf=1000) \
        .require("AOCS", cycle=500, duration=200) \
        .window("AOCS", offset=0, duration=200) \
        .window("AOCS", offset=500, duration=200) \
        .require("TTC", cycle=1000, duration=100) \
        .window("TTC", offset=250, duration=100) \
        .require("PAYLOAD", cycle=1000, duration=0) \
        .window("PAYLOAD", offset=800, duration=50)

    # science: payload-dominant.
    builder.schedule("science", mtf=1000) \
        .require("AOCS", cycle=500, duration=80) \
        .window("AOCS", offset=0, duration=80) \
        .window("AOCS", offset=500, duration=80) \
        .require("TTC", cycle=1000, duration=100) \
        .window("TTC", offset=100, duration=100) \
        .require("PAYLOAD", cycle=1000, duration=400) \
        .window("PAYLOAD", offset=220, duration=280) \
        .window("PAYLOAD", offset=650, duration=120)

    # safe mode: payload absent; AOCS warm-restarted on entry.
    builder.schedule("safe", mtf=1000) \
        .require("AOCS", cycle=500, duration=300) \
        .window("AOCS", offset=0, duration=300) \
        .window("AOCS", offset=500, duration=300) \
        .require("TTC", cycle=1000, duration=150) \
        .window("TTC", offset=320, duration=150) \
        .on_switch("AOCS", ScheduleChangeAction.WARM_START)

    builder.initial_schedule("launch")
    return Simulator(builder.build())


def main():
    simulator = build()
    apex = simulator.apex("AOCS")  # the authorized (system) partition

    print("phase: launch (2 MTFs)")
    simulator.run_mtf(2)

    print("requesting science schedule via SET_MODULE_SCHEDULE...")
    apex.set_module_schedule("science").expect()
    simulator.run_mtf(3)

    print("anomaly detected -> requesting safe mode...")
    apex.set_module_schedule("safe").expect()
    simulator.run_mtf(3)

    print("\nschedule switches (always at MTF boundaries):")
    for switch in simulator.trace.of_type(ScheduleSwitched):
        print(f"  t={switch.tick}: {switch.from_schedule} -> "
              f"{switch.to_schedule}")

    print("\nschedule change actions applied:")
    for action in simulator.trace.of_type(ScheduleChangeActionApplied):
        print(f"  t={action.tick}: {action.partition} {action.action} "
              f"(first dispatch under {action.schedule})")

    status = apex.get_module_schedule_status().expect()
    print(f"\nfinal schedule: {status.current_schedule} "
          f"(last switch at t={status.last_switch_tick})")
    print(f"AOCS restarts: {simulator.runtime('AOCS').init_count - 1}")
    print(f"PAYLOAD science frames: see trace "
          f"({sum(1 for e in simulator.trace.events if getattr(e, 'text', '').startswith('science'))} logged)")


if __name__ == "__main__":
    main()
