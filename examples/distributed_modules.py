#!/usr/bin/env python3
"""Physically separated partitions over the communication infrastructure
(Sect. 2.1).

"For physically separated partitions, this implies data transmission
through a communication infrastructure" — and the PMK remains "obliged to
message delivery guarantees".  This example places a platform module and a
remote instrument "module" (modelled as partitions joined by high-latency,
lossy links) and shows:

1. the APEX port API is identical for local and remote channels (location
   transparency);
2. a lossy link *without* the reliability layer drops telemetry;
3. the reliable (retransmitting) link restores the delivery guarantee.

Run:  python examples/distributed_modules.py
"""

from repro import Call, Compute, Simulator, SystemBuilder
from repro.comm.network import NetworkLink, ReliableLink
from repro.kernel.rng import SeededRng
from repro.types import PartitionMode, PortDirection


def build(reliable: bool, loss: float = 0.35, seed: int = 11):
    builder = SystemBuilder()

    instrument = builder.partition("INSTRUMENT")
    instrument.process("science", period=400, deadline=400, priority=1,
                       wcet=20)

    def science(ctx):
        sample = 0
        while True:
            yield Compute(20)
            sample += 1
            yield Call(ctx.apex.queuing_port("sci_out").send,
                       (b"sample-%03d" % sample,))
            yield Call(ctx.apex.periodic_wait)

    instrument.body("science", science)

    def instrument_init(apex):
        apex.create_queuing_port("sci_out", PortDirection.SOURCE)
        apex.start("science")
        apex.set_partition_mode(PartitionMode.NORMAL)

    instrument.init_hook(instrument_init)

    platform = builder.partition("PLATFORM")
    platform.process("recorder", period=400, deadline=400, priority=1,
                     wcet=10)
    received = []

    def recorder(ctx):
        while True:
            for _ in range(8):
                result = yield Call(
                    ctx.apex.queuing_port("sci_in").receive)
                if not result.is_ok:
                    break
                received.append(bytes(result.value))
            yield Compute(5)
            yield Call(ctx.apex.periodic_wait)

    platform.body("recorder", recorder)

    def platform_init(apex):
        apex.create_queuing_port("sci_in", PortDirection.DESTINATION)
        apex.start("recorder")
        apex.set_partition_mode(PartitionMode.NORMAL)

    platform.init_hook(platform_init)

    builder.queuing_channel("science-link", source=("INSTRUMENT", "sci_out"),
                            destination=("PLATFORM", "sci_in"),
                            max_nb_messages=64, latency=90)
    builder.schedule("ops", mtf=400) \
        .require("INSTRUMENT", cycle=400, duration=80) \
        .window("INSTRUMENT", offset=0, duration=80) \
        .require("PLATFORM", cycle=400, duration=80) \
        .window("PLATFORM", offset=200, duration=80)

    simulator = Simulator(builder.build())

    # Swap the default (loss-free) link for a lossy one, optionally wrapped
    # in the retransmitting reliability layer.
    lossy = NetworkLink(latency=90, loss_probability=loss,
                        rng=SeededRng(seed))
    link = ReliableLink(lossy, max_retries=32) if reliable else lossy
    channel = simulator.pmk.router._channels["science-link"]
    channel.link = link
    return simulator, received, link


def main():
    mtfs = 25
    print(f"running {mtfs} MTFs with a 90-tick, 35%-loss space link\n")

    raw_sim, raw_received, raw_link = build(reliable=False)
    raw_sim.run_mtf(mtfs)
    print("bare lossy link:")
    print(f"  sent {raw_link.stats.sent}, dropped {raw_link.stats.dropped}, "
          f"delivered to PLATFORM: {len(raw_received)}")

    rel_sim, rel_received, rel_link = build(reliable=True)
    rel_sim.run_mtf(mtfs)
    print("\nreliable (ARQ) link — the PMK's delivery obligation:")
    print(f"  sent {rel_link.stats.sent} "
          f"(incl. {rel_link.stats.retransmissions} retransmissions), "
          f"delivered: {len(rel_received)}")
    print(f"  in order: "
          f"{rel_received == sorted(rel_received)}")

    assert len(rel_received) > len(raw_received)
    print("\nsamples received (reliable):",
          b", ".join(rel_received[:5]).decode(), "...")


if __name__ == "__main__":
    main()
