#!/usr/bin/env python3
"""Process deadline violation monitoring with application-level recovery
(Sect. 5).

A control partition runs a well-behaved task plus a task whose execution
time degrades over its life (a drifting sensor filter): its WCET estimate,
fine at integration time, is eventually exceeded — the exact failure mode
Sect. 5 targets.  The partition installs an *error handler* implementing a
staged policy (Sect. 5's recovery actions):

* first two misses: log only (IGNORE);
* further misses: stop the faulty process and reinitialize it from its
  entry address, which resets its drift.

Run:  python examples/deadline_monitoring.py
"""

from repro import Call, Compute, Simulator, SystemBuilder
from repro.kernel.trace import DeadlineMissed, HealthMonitorEvent
from repro.types import ErrorCode, RecoveryAction


def steady_task(ctx):
    """The well-behaved neighbour — must never be disturbed."""
    while True:
        yield Compute(10)
        yield Call(ctx.apex.periodic_wait)


def degrading_filter(ctx):
    """Starts within budget, degrades 6 ticks per job until it overruns."""
    cost = 20
    while True:
        yield Compute(cost)
        cost += 6
        yield Call(ctx.apex.periodic_wait)


def make_error_handler(log):
    """Sect. 5: 'the actual action to be performed is defined by the
    application programmer, through an appropriate error handler'."""
    strikes = {"count": 0}

    def handler(report):
        if report.code is not ErrorCode.DEADLINE_MISSED:
            return None                      # defer to the HM tables
        strikes["count"] += 1
        if strikes["count"] <= 2:
            log.append(f"strike {strikes['count']} for {report.process}: "
                       f"logged only")
            return RecoveryAction.IGNORE
        log.append(f"strike {strikes['count']}: restarting {report.process}")
        strikes["count"] = 0
        return RecoveryAction.STOP_AND_RESTART_PROCESS

    return handler


def main():
    decisions = []
    builder = SystemBuilder()
    ctrl = builder.partition("CTRL")
    ctrl.process("steady", period=100, deadline=100, priority=1, wcet=10)
    ctrl.process("filter", period=100, deadline=60, priority=2, wcet=25)
    ctrl.body("steady", steady_task)
    ctrl.body("filter", degrading_filter)
    ctrl.error_handler(make_error_handler(decisions))
    builder.schedule("main", mtf=100) \
        .require("CTRL", cycle=100, duration=60) \
        .window("CTRL", offset=0, duration=60)

    simulator = Simulator(builder.build())
    simulator.run_mtf(30)

    print("deadline misses detected by Algorithm 3:")
    for miss in simulator.trace.of_type(DeadlineMissed):
        print(f"  t={miss.tick:5d}: {miss.process} missed "
              f"D'={miss.deadline_time} (latency {miss.detection_latency})")

    print("\nerror handler decisions:")
    for line in decisions:
        print(f"  {line}")

    print("\nHealth Monitor dispositions:")
    for event in simulator.trace.of_type(HealthMonitorEvent):
        print(f"  t={event.tick:5d}: {event.code} -> {event.action}")

    steady_misses = [m for m in simulator.trace.of_type(DeadlineMissed)
                     if m.process == "steady"]
    print(f"\nsteady task misses (must be zero): {len(steady_misses)}")


if __name__ == "__main__":
    main()
