#!/usr/bin/env python3
"""Multicore model extension (Sect. 8, future work iv): synthesis and
verification of per-core partition schedules.

The paper lists "parallelism between partition time windows on a multicore
platform" as a planned model extension; this example exercises the
reproduction's implementation: spread a six-partition payload-heavy system
over two cores, verify the multicore conditions (per-core eqs. (20)-(22),
no self-parallelism, aggregate per-cycle duration), then deliberately
create a self-parallel layout and watch the validator refuse it.

Run:  python examples/multicore_analysis.py
"""

from repro.analysis.multicore import (
    MulticoreSchedule,
    generate_multicore_pst,
    validate_multicore,
)
from repro.core.model import PartitionRequirement


def main():
    requirements = [
        PartitionRequirement("AOCS", cycle=500, duration=150),
        PartitionRequirement("OBDH", cycle=500, duration=120),
        PartitionRequirement("TTC", cycle=1000, duration=180),
        PartitionRequirement("FDIR", cycle=1000, duration=120),
        PartitionRequirement("CAM", cycle=1000, duration=400),
        PartitionRequirement("SAR", cycle=1000, duration=500),
    ]
    total = sum(r.utilization() for r in requirements)
    print(f"module load: {total:.2f} processor(s) across "
          f"{len(requirements)} partitions")

    schedule = generate_multicore_pst(requirements, cores=2,
                                      schedule_id="dual")
    assert schedule is not None, "2 cores should suffice"
    print(f"\nsynthesized {schedule.schedule_id!r} over "
          f"{len(schedule.core_names)} cores, MTF={schedule.major_time_frame}")
    for core in schedule.core_names:
        table = schedule.cores[core]
        print(f"  {core}: utilization {table.utilization():.0%}")
        for window in table.windows:
            print(f"    {window.partition:5s} [{window.offset:5d}, "
                  f"{window.end:5d})")

    report = validate_multicore(schedule)
    print(f"\nmulticore validation: {'PASS' if report.ok else 'FAIL'}")

    # Now a deliberately broken layout: AOCS on both cores simultaneously.
    from repro.core.model import ScheduleTable, TimeWindow

    overlapping = MulticoreSchedule(
        schedule_id="broken", major_time_frame=500,
        requirements=(PartitionRequirement("AOCS", 500, 200),),
        cores={
            "core0": ScheduleTable(
                schedule_id="c0", major_time_frame=500,
                requirements=(PartitionRequirement("AOCS", 500, 100),),
                windows=(TimeWindow("AOCS", 0, 100),)),
            "core1": ScheduleTable(
                schedule_id="c1", major_time_frame=500,
                requirements=(PartitionRequirement("AOCS", 500, 100),),
                windows=(TimeWindow("AOCS", 50, 100),)),
        })
    broken_report = validate_multicore(overlapping)
    print("\nself-parallel layout (AOCS on both cores at t=50..100):")
    for finding in broken_report.errors:
        print(f"  {finding.code}: {finding.message}")

    # Declaring the partition parallel-capable legalizes the same layout.
    blessed = MulticoreSchedule(
        schedule_id="blessed", major_time_frame=500,
        requirements=overlapping.requirements,
        cores=dict(overlapping.cores),
        parallel_capable=frozenset({"AOCS"}))
    print(f"\nsame layout with AOCS declared parallel-capable: "
          f"{'PASS' if validate_multicore(blessed).ok else 'FAIL'}")


if __name__ == "__main__":
    main()
