#!/usr/bin/env python3
"""The Sect. 6 prototype demonstration, VITRAL included (Fig. 9 / E13).

Four partitions (AOCS, OBDH, TTC, FDIR) under the Fig. 8 scheduling
tables.  The script replays the paper's demo storyline:

1. healthy operation under chi1 — attitude samples flow AOCS -> OBDH/FDIR,
   telemetry OBDH -> TTC;
2. the faulty process is injected on P1 (the "keyboard" action) — its
   deadline violation is detected at every subsequent P1 dispatch and
   handled by the configured HM recovery action;
3. a ground telecommand switches the module to chi2 at an MTF boundary;
4. the final VITRAL frame (one window per partition + the two AIR
   component windows) is printed.

Run:  python examples/satellite_demo.py
"""

from repro.apps.prototype import (
    MTF,
    build_prototype,
    inject_faulty_process,
    make_simulator,
)
from repro.analysis.timeline import render_schedule, render_timeline
from repro.kernel.trace import DeadlineMissed, ScheduleSwitched
from repro.vitral.windows import VitralScreen


def main():
    handles = build_prototype()
    simulator = make_simulator(handles)
    screen = VitralScreen(simulator, columns=2, window_width=44,
                          window_height=7)
    screen.bind("1", "schedule chi1", lambda s: (
        s.pmk.set_module_schedule("chi1", requested_by="vitral"), "queued")[1])
    screen.bind("2", "schedule chi2", lambda s: (
        s.pmk.set_module_schedule("chi2", requested_by="vitral"), "queued")[1])
    screen.bind("f", "inject faulty process", lambda s: (
        inject_faulty_process(s), "injected")[1])

    print("phase 1 — healthy operation under chi1 (3 MTFs)")
    simulator.run_mtf(3)
    print(f"  telemetry frames downlinked: {handles.ttc_stats.frames}")
    print(f"  attitude samples monitored by FDIR: "
          f"{handles.fdir_stats.samples_ok}")
    print(f"  deadline misses: {simulator.trace.count(DeadlineMissed)}")

    print("\nphase 2 — pressing [f]: inject the faulty process on P1")
    screen.press("f")
    simulator.run_mtf(4)
    misses = simulator.trace.of_type(DeadlineMissed)
    print(f"  violations detected (one per P1 dispatch, except the first):")
    for miss in misses:
        print(f"    t={miss.tick}: {miss.process} missed deadline "
              f"{miss.deadline_time} (latency {miss.detection_latency})")

    print("\nphase 3 — pressing [2]: switch to chi2 at the next MTF end")
    screen.press("2")
    simulator.run_mtf(3)
    for switch in simulator.trace.of_type(ScheduleSwitched):
        print(f"  t={switch.tick}: schedule {switch.from_schedule} -> "
              f"{switch.to_schedule} (MTF boundary: "
              f"{switch.tick % MTF == 0})")

    print("\nFig. 8 — the two scheduling tables (static):")
    for schedule_id in ("chi1", "chi2"):
        print(render_schedule(
            simulator.config.model.schedule(schedule_id), resolution=50))
        print()

    print("measured execution timeline (last two MTFs; "
          "! = deadline miss, | = schedule switch):")
    print(render_timeline(simulator, start=simulator.now - 2 * MTF,
                          end=simulator.now, resolution=50))

    print("\nfinal VITRAL frame " + "=" * 50)
    print(screen.render(with_status=True))


if __name__ == "__main__":
    main()
