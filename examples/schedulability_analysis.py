#!/usr/bin/env python3
"""Offline integration tooling: synthesis, verification, schedulability.

The system-integrator workflow the paper's formal model enables (Sects. 1,
3): start from bare partition timing requirements, let the tool synthesize
a PST satisfying eqs. (20)-(23), verify it, run process-level
response-time analysis against the exact window layout, and compare with
the literature baselines of Sect. 7.

Run:  python examples/schedulability_analysis.py
"""

from repro.analysis.baselines import (
    analyze_partition_reservation,
    analyze_partition_single_window,
)
from repro.analysis.generator import generate_pst
from repro.analysis.schedulability import analyze_partition
from repro.analysis.supply import linear_supply_bound, supply_bound_function
from repro.core.model import Partition, PartitionRequirement, ProcessModel
from repro.core.validation import validate_schedule


def main():
    # 1. The integrator's inputs: per-partition timing requirements...
    requirements = [
        PartitionRequirement("AOCS", cycle=650, duration=130),
        PartitionRequirement("OBDH", cycle=650, duration=90),
        PartitionRequirement("TTC", cycle=1300, duration=160),
        PartitionRequirement("FDIR", cycle=1300, duration=100),
    ]
    # ... and the tasksets each partition will host.
    partitions = {
        "AOCS": Partition(name="AOCS", processes=(
            ProcessModel(name="sense", period=650, deadline=650,
                         priority=1, wcet=45),
            ProcessModel(name="control", period=650, deadline=650,
                         priority=2, wcet=55),
            ProcessModel(name="momentum", period=1300, deadline=1300,
                         priority=3, wcet=30))),
        "OBDH": Partition(name="OBDH", processes=(
            ProcessModel(name="housekeeping", period=650, deadline=650,
                         priority=1, wcet=40),
            ProcessModel(name="storage", period=1300, deadline=1300,
                         priority=2, wcet=50))),
        "TTC": Partition(name="TTC", processes=(
            ProcessModel(name="downlink", period=1300, deadline=1300,
                         priority=1, wcet=70),)),
        "FDIR": Partition(name="FDIR", processes=(
            ProcessModel(name="monitor", period=1300, deadline=900,
                         priority=1, wcet=40),)),
    }

    # 2. Synthesize a PST (eq. (22) picks MTF = lcm of cycles = 1300).
    schedule = generate_pst(requirements, schedule_id="ops")
    assert schedule is not None, "requirements are not packable"
    print(f"synthesized PST {schedule.schedule_id!r}: "
          f"MTF={schedule.major_time_frame}, "
          f"{len(schedule.windows)} windows")
    for window in schedule.windows:
        print(f"  {window.partition:5s} [{window.offset:5d}, "
              f"{window.end:5d})  ({window.duration} ticks)")

    # 3. Offline verification (eqs. (20)-(23)).
    report = validate_schedule(schedule)
    print("\nvalidation:", "PASS" if report.ok else "FAIL")

    # 4. Supply characterization per partition.
    print("\npartition supply (worst-case over any interval):")
    for requirement in requirements:
        alpha, delay = linear_supply_bound(schedule, requirement.partition)
        sbf_mtf = supply_bound_function(schedule, requirement.partition,
                                        schedule.major_time_frame)
        print(f"  {requirement.partition:5s}: rate={alpha:.3f}, "
              f"service delay<={delay}, sbf(MTF)={sbf_mtf}")

    # 5. Response-time analysis per process, against three abstractions.
    print("\nschedulability (R = worst-case response time):")
    header = (f"  {'partition/process':24s} {'D':>6s} {'AIR exact':>10s} "
              f"{'single-window':>14s} {'reservation':>12s}")
    print(header)
    for requirement in requirements:
        partition = partitions[requirement.partition]
        exact = analyze_partition(partition, schedule)
        single = analyze_partition_single_window(partition, schedule)
        reservation = analyze_partition_reservation(partition, requirement,
                                                    schedule)
        for verdict in exact.verdicts:
            single_r = ("n/a (fragmented)" if single is None else
                        single.verdict_for(verdict.process).response_time)
            reservation_r = reservation.verdict_for(
                verdict.process).response_time
            flag = "OK " if verdict.schedulable else "MISS"
            print(f"  {partition.name + '/' + verdict.process:24s} "
                  f"{verdict.deadline:6d} {str(verdict.response_time):>10s} "
                  f"{str(single_r):>14s} {str(reservation_r):>12s}  {flag}")


if __name__ == "__main__":
    main()
