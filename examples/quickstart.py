#!/usr/bin/env python3
"""Quickstart: a two-partition TSP system in ~40 lines.

Builds a module with a flight-control partition and a housekeeping
partition sharing one processor under a cyclic partition schedule (the
AIR two-level scheduling of Fig. 2), runs ten major time frames, and
prints what happened.

Run:  python examples/quickstart.py
"""

from repro import Call, Compute, Simulator, SystemBuilder
from repro.kernel.trace import ApplicationMessage, DeadlineMissed


def control_loop(ctx):
    """A 50 Hz-style control task: compute, log occasionally, wait."""
    job = 0
    while True:
        yield Compute(8)                       # sensor fusion + control law
        job += 1
        if job % 5 == 0:
            ctx.log(f"control job {job} done at t={ctx.apex.now()}")
        yield Call(ctx.apex.periodic_wait)     # until the next release point


def housekeeping(ctx):
    """Slow housekeeping task in the second partition."""
    while True:
        yield Compute(20)
        yield Call(ctx.apex.periodic_wait)


def main():
    builder = SystemBuilder()

    flight = builder.partition("FLIGHT")
    flight.process("control", period=100, deadline=100, priority=1, wcet=8)
    flight.body("control", control_loop)

    platform = builder.partition("PLATFORM")
    platform.process("housekeeping", period=200, deadline=200, priority=1,
                     wcet=20)
    platform.body("housekeeping", housekeeping)

    # The partition scheduling table (chi): MTF 200, FLIGHT gets 30 ticks
    # every 100-tick cycle, PLATFORM 40 per 200-tick cycle — eq. (23) holds.
    builder.schedule("cruise", mtf=200) \
        .require("FLIGHT", cycle=100, duration=30) \
        .window("FLIGHT", offset=0, duration=30) \
        .window("FLIGHT", offset=100, duration=30) \
        .require("PLATFORM", cycle=200, duration=40) \
        .window("PLATFORM", offset=40, duration=40)

    config = builder.build()                   # validates eqs. (20)-(23)
    print("offline validation:")
    print(config.validate().render())

    simulator = Simulator(config)
    simulator.run_mtf(10)

    print(f"\nran {simulator.now} ticks "
          f"({simulator.now // 200} major time frames)")
    print(f"deadline misses: {simulator.trace.count(DeadlineMissed)}")
    print("\napplication output:")
    for event in simulator.trace.of_type(ApplicationMessage):
        print(f"  [{event.tick:5d}] {event.partition}: {event.text}")


if __name__ == "__main__":
    main()
