"""Shim for editable installs on environments without the `wheel` package.

`pip install -e .` falls back to this via --no-use-pep517; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
